//! The assembled data component of Figure 2: payload + metadata +
//! adaptability-rule references + version list.
//!
//! The component stores *references* to its adaptability rules (the rule
//! ids the Session Manager's `RuleSet` holds) rather than the rules
//! themselves — "a copy of the switching rules relevant to it" travels with
//! the component, while evaluation stays in the session loop. This keeps
//! `datacomp` decoupled from the runtime crate.

use crate::codec::{by_name, Codec, CodecError};
use crate::metadata::Metadata;
use crate::payload::Payload;
use crate::version::{SelectionConstraints, Version, VersionKind, VersionList};
use std::fmt;

/// A reference to an adaptability rule held by the session's rule set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuleRef {
    /// The rule id (the paper's constraint numbers: 450, 455, 595...).
    pub id: u32,
    /// Human-readable description of the constraint.
    pub description: String,
}

/// Errors when materialising versions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VersionError {
    /// The codec named by a compressed version is unknown.
    UnknownCodec(String),
    /// Decoding failed.
    Codec(CodecError),
    /// The version's bytes are not materialised locally.
    NotLocal(u32),
    /// No such version id.
    NoSuchVersion(u32),
}

impl fmt::Display for VersionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VersionError::UnknownCodec(c) => write!(f, "unknown codec `{c}`"),
            VersionError::Codec(e) => write!(f, "decode failed: {e}"),
            VersionError::NotLocal(id) => write!(f, "version {id} is not materialised locally"),
            VersionError::NoSuchVersion(id) => write!(f, "no version {id}"),
        }
    }
}

impl std::error::Error for VersionError {}

impl From<CodecError> for VersionError {
    fn from(e: CodecError) -> Self {
        VersionError::Codec(e)
    }
}

/// A data component (Figure 2).
#[derive(Debug, Clone, PartialEq)]
pub struct DataComponent {
    /// Component name.
    pub name: String,
    /// The authoritative payload.
    pub payload: Payload,
    /// Metadata: statistics, triggers, staleness.
    pub metadata: Metadata,
    /// References to the adaptability rules that govern this component.
    pub rules: Vec<RuleRef>,
    /// Alternative versions.
    pub versions: VersionList,
    next_version_id: u32,
}

impl DataComponent {
    /// A component with the given payload and empty metadata/rules/versions.
    #[must_use]
    pub fn new(name: &str, payload: Payload) -> Self {
        Self {
            name: name.to_owned(),
            payload,
            metadata: Metadata::default(),
            rules: Vec::new(),
            versions: VersionList::new(),
            next_version_id: 1,
        }
    }

    /// Attach a rule reference (builder style).
    #[must_use]
    pub fn with_rule(mut self, id: u32, description: &str) -> Self {
        self.rules.push(RuleRef { id, description: description.to_owned() });
        self
    }

    /// Register a remote replica at `location`, `age` ticks stale.
    pub fn add_replica(&mut self, location: &str, age: u64) -> u32 {
        let id = self.alloc_id();
        self.versions.add(Version {
            id,
            location: location.to_owned(),
            kind: VersionKind::Replica,
            size_bytes: self.payload.size_bytes(),
            age,
            bytes: None,
        });
        id
    }

    /// Materialise a compressed version locally using the named codec —
    /// really compressing the payload bytes.
    ///
    /// # Errors
    /// [`VersionError::UnknownCodec`].
    pub fn add_compressed(
        &mut self,
        codec_name: &str,
        location: &str,
    ) -> Result<u32, VersionError> {
        let codec: Box<dyn Codec> =
            by_name(codec_name).ok_or_else(|| VersionError::UnknownCodec(codec_name.to_owned()))?;
        let encoded = codec.encode(&self.payload.to_bytes());
        let id = self.alloc_id();
        self.versions.add(Version {
            id,
            location: location.to_owned(),
            kind: VersionKind::Compressed { codec: codec.name().to_owned() },
            size_bytes: encoded.len() as u64,
            age: 0,
            bytes: Some(encoded),
        });
        Ok(id)
    }

    /// Register a summary version of the given size/fraction.
    pub fn add_summary(&mut self, location: &str, fraction: f64, size_bytes: u64) -> u32 {
        let id = self.alloc_id();
        self.versions.add(Version {
            id,
            location: location.to_owned(),
            kind: VersionKind::Summary { fraction },
            size_bytes,
            age: 0,
            bytes: None,
        });
        id
    }

    /// Decode a locally-materialised compressed version back to payload
    /// bytes — the "associated decompression code" path.
    ///
    /// # Errors
    /// [`VersionError`] when the version is missing, remote, or corrupt.
    pub fn materialise(&self, id: u32) -> Result<Vec<u8>, VersionError> {
        let v = self
            .versions
            .all()
            .iter()
            .find(|v| v.id == id)
            .ok_or(VersionError::NoSuchVersion(id))?;
        let bytes = v.bytes.as_ref().ok_or(VersionError::NotLocal(id))?;
        match &v.kind {
            VersionKind::Compressed { codec } => {
                let c = by_name(codec).ok_or_else(|| VersionError::UnknownCodec(codec.clone()))?;
                Ok(c.decode(bytes)?)
            }
            _ => Ok(bytes.clone()),
        }
    }

    /// `BEST` over this component's versions.
    ///
    /// # Errors
    /// [`crate::version::SelectError`] when nothing satisfies.
    pub fn best_version(
        &self,
        c: &SelectionConstraints,
    ) -> Result<&Version, crate::version::SelectError> {
        self.versions.best(c)
    }

    fn alloc_id(&mut self) -> u32 {
        let id = self.next_version_id;
        self.next_version_id += 1;
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnType, Schema, Table};
    use crate::value::Value;
    use crate::xml::sensor_reading;

    fn stream_component() -> DataComponent {
        let mut events = Vec::new();
        for t in 0..100 {
            events.extend(sensor_reading("temp", t, 20.0 + (t % 5) as f64));
        }
        DataComponent::new("sensor-feed", Payload::XmlStream(events))
            .with_rule(595, "if bandwidth > 30 < 100 Kbps then BEST(...)")
    }

    #[test]
    fn compressed_version_roundtrips() {
        let mut c = stream_component();
        let id = c.add_compressed("lz", "laptop").unwrap();
        let original = c.payload.to_bytes();
        let restored = c.materialise(id).unwrap();
        assert_eq!(restored, original);
        let v = c.versions.all().iter().find(|v| v.id == id).unwrap();
        assert!(v.size_bytes < original.len() as u64 / 2, "XML stream should compress well");
    }

    #[test]
    fn unknown_codec_rejected() {
        let mut c = stream_component();
        assert_eq!(c.add_compressed("gzip", "x"), Err(VersionError::UnknownCodec("gzip".into())));
    }

    #[test]
    fn remote_versions_cannot_materialise() {
        let mut c = stream_component();
        let id = c.add_replica("pda", 0);
        assert_eq!(c.materialise(id), Err(VersionError::NotLocal(id)));
        assert_eq!(c.materialise(999), Err(VersionError::NoSuchVersion(999)));
    }

    #[test]
    fn best_version_prefers_compressed_on_slow_links() {
        let mut c = stream_component();
        c.add_replica("laptop", 0);
        c.add_compressed("lz", "laptop").unwrap();
        let slow = SelectionConstraints { min_quality: 1.0, bandwidth: 1.0, ..Default::default() };
        let best = c.best_version(&slow).unwrap();
        assert!(matches!(best.kind, VersionKind::Compressed { .. }));
    }

    #[test]
    fn relational_component_with_metadata() {
        let schema = Schema::new(&[("id", ColumnType::Int)]).unwrap();
        let mut t = Table::new(schema);
        for i in 0..10 {
            t.insert(vec![Value::Int(i)]).unwrap();
        }
        let md = Metadata::fresh(&t);
        let mut c = DataComponent::new("orders", Payload::Relational(t));
        c.metadata = md;
        assert_eq!(c.metadata.stats.as_ref().unwrap().rows, 10);
        assert_eq!(c.rules.len(), 0);
    }

    #[test]
    fn version_ids_are_unique_and_monotonic() {
        let mut c = stream_component();
        let a = c.add_replica("n1", 0);
        let b = c.add_replica("n2", 0);
        let d = c.add_summary("n3", 0.25, 100);
        assert!(a < b && b < d);
        assert_eq!(c.versions.len(), 3);
    }
}
