//! The three payload shapes of Figure 2: "OO structured data concerned with
//! a person or a relational table used for transaction processing or an XML
//! stream".

use crate::schema::Table;
use crate::value::Value;
use crate::xml::{write_events, XmlEvent};
use std::collections::BTreeMap;

/// An object (OO) record: a field map with nested objects.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Object {
    /// Scalar fields.
    pub fields: BTreeMap<String, Value>,
    /// Nested objects.
    pub children: BTreeMap<String, Object>,
}

impl Object {
    /// An empty object.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Set a scalar field (builder style).
    #[must_use]
    pub fn with(mut self, key: &str, v: Value) -> Self {
        self.fields.insert(key.to_owned(), v);
        self
    }

    /// Set a nested object (builder style).
    #[must_use]
    pub fn with_child(mut self, key: &str, o: Object) -> Self {
        self.children.insert(key.to_owned(), o);
        self
    }

    /// Look up a scalar by dotted path (`"address.city"`).
    #[must_use]
    pub fn get(&self, path: &str) -> Option<&Value> {
        match path.split_once('.') {
            None => self.fields.get(path),
            Some((head, rest)) => self.children.get(head)?.get(rest),
        }
    }

    /// Approximate serialised size in bytes.
    #[must_use]
    pub fn size_bytes(&self) -> u64 {
        let own: u64 = self.fields.iter().map(|(k, v)| k.len() as u64 + v.size_bytes()).sum();
        own + self.children.iter().map(|(k, o)| k.len() as u64 + o.size_bytes()).sum::<u64>()
    }
}

/// A data component's payload.
#[derive(Debug, Clone, PartialEq)]
pub enum Payload {
    /// A relational table.
    Relational(Table),
    /// An OO record.
    Object(Object),
    /// An XML event stream.
    XmlStream(Vec<XmlEvent>),
}

impl Payload {
    /// Approximate serialised size in bytes — what shipping the payload over
    /// a link costs.
    #[must_use]
    pub fn size_bytes(&self) -> u64 {
        match self {
            Payload::Relational(t) => t.size_bytes(),
            Payload::Object(o) => o.size_bytes(),
            Payload::XmlStream(ev) => write_events(ev).len() as u64,
        }
    }

    /// Serialise the payload to bytes (for compression, shipping, hashing).
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        match self {
            Payload::Relational(t) => {
                let mut out = Vec::new();
                for row in t.rows() {
                    for v in row {
                        out.extend_from_slice(v.to_string().as_bytes());
                        out.push(b'\x1f');
                    }
                    out.push(b'\n');
                }
                out
            }
            Payload::Object(o) => format!("{o:?}").into_bytes(),
            Payload::XmlStream(ev) => write_events(ev).into_bytes(),
        }
    }

    /// A human label for the payload kind.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Payload::Relational(_) => "relational",
            Payload::Object(_) => "object",
            Payload::XmlStream(_) => "xml-stream",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnType, Schema};
    use crate::xml::sensor_reading;

    #[test]
    fn object_paths() {
        // The paper's "Personal data <id, name, address, age, metadata etc>".
        let person = Object::new()
            .with("id", Value::Int(7))
            .with("name", Value::str("Ada"))
            .with("age", Value::Int(36))
            .with_child("address", Object::new().with("city", Value::str("London")));
        assert_eq!(person.get("name"), Some(&Value::str("Ada")));
        assert_eq!(person.get("address.city"), Some(&Value::str("London")));
        assert_eq!(person.get("address.street"), None);
        assert_eq!(person.get("ghost.x"), None);
        assert!(person.size_bytes() > 0);
    }

    #[test]
    fn payload_kinds_and_sizes() {
        let schema = Schema::new(&[("id", ColumnType::Int)]).unwrap();
        let mut t = Table::new(schema);
        t.insert(vec![Value::Int(1)]).unwrap();
        let rel = Payload::Relational(t);
        assert_eq!(rel.kind(), "relational");
        assert_eq!(rel.size_bytes(), 8);

        let xml = Payload::XmlStream(sensor_reading("t", 0, 1.0));
        assert_eq!(xml.kind(), "xml-stream");
        assert_eq!(xml.size_bytes(), xml.to_bytes().len() as u64);
    }

    #[test]
    fn relational_bytes_are_row_separated() {
        let schema = Schema::new(&[("a", ColumnType::Int), ("b", ColumnType::Str)]).unwrap();
        let mut t = Table::new(schema);
        t.insert(vec![Value::Int(1), Value::str("x")]).unwrap();
        t.insert(vec![Value::Int(2), Value::str("y")]).unwrap();
        let bytes = Payload::Relational(t).to_bytes();
        assert_eq!(bytes.iter().filter(|&&b| b == b'\n').count(), 2);
    }
}
