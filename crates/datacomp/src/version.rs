//! The version list: "indications of where alternatives can be found.
//! Versions are not necessarily exact replicas; they could be compressed
//! versions of the data (perhaps with associated decompression code) or be
//! out-of-date. They also could be lower quality versions or summaries."
//!
//! [`VersionList::best`] is the machinery behind the paper's `Select BEST`
//! constraint: given the current link bandwidth and the query's tolerance
//! for staleness and quality loss, choose the version with the lowest
//! delivery cost among those that satisfy the constraints.

use std::fmt;

/// What kind of alternative a version is.
#[derive(Debug, Clone, PartialEq)]
pub enum VersionKind {
    /// An exact replica.
    Replica,
    /// A compressed replica, carrying the name of its decompression codec.
    Compressed {
        /// Codec wire name (see [`crate::codec::by_name`]).
        codec: String,
    },
    /// A summary retaining `fraction` of the information (e.g. a sample or
    /// an aggregate), in (0, 1].
    Summary {
        /// Information fraction retained.
        fraction: f64,
    },
    /// A lower-quality rendition (e.g. `videohalf`, `videosmall`).
    LowerQuality {
        /// Quality in (0, 1] relative to the original.
        quality: f64,
    },
}

impl VersionKind {
    /// Information quality of this kind: 1.0 for (compressed) replicas.
    #[must_use]
    pub fn quality(&self) -> f64 {
        match self {
            VersionKind::Replica | VersionKind::Compressed { .. } => 1.0,
            VersionKind::Summary { fraction } => *fraction,
            VersionKind::LowerQuality { quality } => *quality,
        }
    }
}

/// One version of a data component.
#[derive(Debug, Clone, PartialEq)]
pub struct Version {
    /// Stable id within the component.
    pub id: u32,
    /// Where it lives (node name — `node1.Page1.html` style).
    pub location: String,
    /// What kind of alternative it is.
    pub kind: VersionKind,
    /// Size on the wire, in bytes.
    pub size_bytes: u64,
    /// Staleness: ticks behind the authoritative copy (0 = current).
    pub age: u64,
    /// The bytes themselves when materialised locally; `None` for remote
    /// versions (the list is "indications of where alternatives can be
    /// found").
    pub bytes: Option<Vec<u8>>,
}

/// Constraints on version selection — the parameters of `BEST`.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectionConstraints {
    /// Maximum acceptable staleness (ticks); `None` = any.
    pub max_age: Option<u64>,
    /// Minimum acceptable quality in (0, 1].
    pub min_quality: f64,
    /// Current link bandwidth in bytes per tick (drives transfer cost).
    pub bandwidth: f64,
    /// CPU cost the receiver pays per byte to decode, by codec name; a
    /// codec missing from this table is assumed free.
    pub decode_cost_per_byte: Vec<(String, f64)>,
}

impl Default for SelectionConstraints {
    fn default() -> Self {
        Self { max_age: None, min_quality: 0.0, bandwidth: 1.0, decode_cost_per_byte: Vec::new() }
    }
}

impl SelectionConstraints {
    fn decode_cost(&self, kind: &VersionKind, size: u64) -> f64 {
        match kind {
            VersionKind::Compressed { codec } => self
                .decode_cost_per_byte
                .iter()
                .find(|(n, _)| n == codec)
                .map_or(0.0, |(_, c)| c * size as f64),
            _ => 0.0,
        }
    }

    /// Estimated delivery cost of a version: transfer + decode.
    #[must_use]
    pub fn delivery_cost(&self, v: &Version) -> f64 {
        v.size_bytes as f64 / self.bandwidth.max(f64::MIN_POSITIVE)
            + self.decode_cost(&v.kind, v.size_bytes)
    }
}

/// Selection errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SelectError {
    /// No version satisfies the constraints.
    NoneSatisfy,
}

impl fmt::Display for SelectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "no version satisfies the selection constraints")
    }
}

impl std::error::Error for SelectError {}

/// The list of alternative versions.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct VersionList {
    versions: Vec<Version>,
}

impl VersionList {
    /// An empty list.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a version; replaces any existing version with the same id.
    pub fn add(&mut self, v: Version) {
        self.versions.retain(|e| e.id != v.id);
        self.versions.push(v);
    }

    /// Remove by id; returns whether it existed.
    pub fn remove(&mut self, id: u32) -> bool {
        let n = self.versions.len();
        self.versions.retain(|v| v.id != id);
        self.versions.len() != n
    }

    /// All versions.
    #[must_use]
    pub fn all(&self) -> &[Version] {
        &self.versions
    }

    /// Number of versions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.versions.len()
    }

    /// Whether the list is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.versions.is_empty()
    }

    /// `BEST`: among versions meeting the constraints, the one with the
    /// lowest delivery cost; quality breaks ties (higher wins), then id.
    ///
    /// # Errors
    /// [`SelectError::NoneSatisfy`].
    pub fn best(&self, c: &SelectionConstraints) -> Result<&Version, SelectError> {
        self.versions
            .iter()
            .filter(|v| c.max_age.is_none_or(|a| v.age <= a))
            .filter(|v| v.kind.quality() >= c.min_quality)
            .min_by(|a, b| {
                c.delivery_cost(a)
                    .total_cmp(&c.delivery_cost(b))
                    .then(b.kind.quality().total_cmp(&a.kind.quality()))
                    .then(a.id.cmp(&b.id))
            })
            .ok_or(SelectError::NoneSatisfy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(id: u32, kind: VersionKind, size: u64, age: u64) -> Version {
        Version { id, location: format!("node{id}"), kind, size_bytes: size, age, bytes: None }
    }

    fn list() -> VersionList {
        let mut l = VersionList::new();
        l.add(v(1, VersionKind::Replica, 10_000, 0));
        l.add(v(2, VersionKind::Compressed { codec: "lz".into() }, 3_000, 0));
        l.add(v(3, VersionKind::Summary { fraction: 0.2 }, 500, 0));
        l.add(v(4, VersionKind::Replica, 10_000, 50));
        l
    }

    #[test]
    fn high_bandwidth_prefers_small_transfer() {
        // With decode modelled as free, the smallest acceptable version wins.
        let c = SelectionConstraints { min_quality: 1.0, bandwidth: 100.0, ..Default::default() };
        assert_eq!(list().best(&c).unwrap().id, 2, "compressed replica is smallest at q=1");
    }

    #[test]
    fn decode_cost_can_flip_the_choice() {
        // Expensive decode on a fast link: the raw replica wins.
        let c = SelectionConstraints {
            min_quality: 1.0,
            bandwidth: 10_000.0,
            decode_cost_per_byte: vec![("lz".into(), 1.0)],
            ..Default::default()
        };
        assert_eq!(list().best(&c).unwrap().id, 1);
        // Same decode cost on a slow link: compression pays for itself.
        let slow = SelectionConstraints {
            min_quality: 1.0,
            bandwidth: 1.0,
            decode_cost_per_byte: vec![("lz".into(), 1.0)],
            ..Default::default()
        };
        assert_eq!(list().best(&slow).unwrap().id, 2);
    }

    #[test]
    fn quality_floor_excludes_summaries() {
        let lax = SelectionConstraints { bandwidth: 1.0, ..Default::default() };
        assert_eq!(list().best(&lax).unwrap().id, 3, "summary is cheapest when allowed");
        let strict =
            SelectionConstraints { min_quality: 0.5, bandwidth: 1.0, ..Default::default() };
        assert_ne!(list().best(&strict).unwrap().id, 3);
    }

    #[test]
    fn staleness_bound_excludes_old_replicas() {
        let mut l = VersionList::new();
        l.add(v(4, VersionKind::Replica, 10_000, 50));
        let c = SelectionConstraints { max_age: Some(10), ..Default::default() };
        assert_eq!(l.best(&c), Err(SelectError::NoneSatisfy));
        let tolerant = SelectionConstraints { max_age: Some(100), ..Default::default() };
        assert_eq!(l.best(&tolerant).unwrap().id, 4);
    }

    #[test]
    fn empty_list_cannot_satisfy() {
        assert_eq!(
            VersionList::new().best(&SelectionConstraints::default()),
            Err(SelectError::NoneSatisfy)
        );
    }

    #[test]
    fn add_replaces_and_remove_removes() {
        let mut l = list();
        assert_eq!(l.len(), 4);
        l.add(v(2, VersionKind::Replica, 1, 0));
        assert_eq!(l.len(), 4);
        assert!(l.remove(2));
        assert!(!l.remove(2));
        assert_eq!(l.len(), 3);
    }

    #[test]
    fn kind_quality() {
        assert_eq!(VersionKind::Replica.quality(), 1.0);
        assert_eq!(VersionKind::Compressed { codec: "rle".into() }.quality(), 1.0);
        assert_eq!(VersionKind::Summary { fraction: 0.3 }.quality(), 0.3);
        assert_eq!(VersionKind::LowerQuality { quality: 0.5 }.quality(), 0.5);
    }
}
