//! Network properties: hop-distance symmetry and triangle inequality over
//! random topologies, transfer-time monotonicity, and BEST consistency.

use proptest::prelude::*;
use ubinet::device::{Device, DeviceKind};
use ubinet::link::{BandwidthProfile, Link, LinkKind};
use ubinet::net::Network;
use ubinet::select::best;

fn network(n_devices: usize, edges: &[(usize, usize)], loads: &[f64]) -> Network {
    let mut net = Network::new();
    for (i, &load) in loads.iter().enumerate().take(n_devices) {
        net.add_device(Device::new(&format!("d{i}"), DeviceKind::Laptop).with_load(load));
    }
    for &(a, b) in edges {
        let (a, b) = (a % n_devices, b % n_devices);
        if a != b {
            net.add_link(Link::new(
                &format!("d{a}"),
                &format!("d{b}"),
                LinkKind::Wireless,
                BandwidthProfile::Constant(100.0),
                1,
            ));
        }
    }
    net
}

proptest! {
    /// d(x, y) == d(y, x), and d obeys the triangle inequality wherever
    /// all three distances exist.
    #[test]
    fn hop_distance_is_a_metric(
        edges in prop::collection::vec((0usize..6, 0usize..6), 0..12),
        loads in prop::collection::vec(0.0f64..1.0, 6),
    ) {
        let net = network(6, &edges, &loads);
        for x in 0..6 {
            for y in 0..6 {
                let dxy = net.hop_distance(&format!("d{x}"), &format!("d{y}"));
                let dyx = net.hop_distance(&format!("d{y}"), &format!("d{x}"));
                prop_assert_eq!(dxy.is_ok(), dyx.is_ok());
                if let (Ok(a), Ok(b)) = (&dxy, &dyx) {
                    prop_assert_eq!(a, b, "symmetry {} {}", x, y);
                }
                if x == y {
                    prop_assert_eq!(*dxy.as_ref().unwrap(), 0);
                }
                for z in 0..6 {
                    let dxz = net.hop_distance(&format!("d{x}"), &format!("d{z}"));
                    let dzy = net.hop_distance(&format!("d{z}"), &format!("d{y}"));
                    if let (Ok(a), Ok(b), Ok(c)) = (&dxy, &dxz, &dzy) {
                        prop_assert!(a <= &(b + c), "triangle {x} {y} via {z}");
                    }
                }
            }
        }
    }

    /// Transfer time is monotone in payload size.
    #[test]
    fn transfer_time_monotone_in_size(
        edges in prop::collection::vec((0usize..5, 0usize..5), 1..10),
        small in 1u64..10_000,
        extra in 1u64..10_000,
    ) {
        let net = network(5, &edges, &[0.0; 5]);
        for x in 0..5 {
            for y in 0..5 {
                let a = net.transfer_ticks(&format!("d{x}"), &format!("d{y}"), small, 0);
                let b = net.transfer_ticks(&format!("d{x}"), &format!("d{y}"), small + extra, 0);
                match (a, b) {
                    (Ok(ta), Ok(tb)) => prop_assert!(tb >= ta),
                    (Err(_), Err(_)) => {}
                    other => prop_assert!(false, "reachability changed with size: {other:?}"),
                }
            }
        }
    }

    /// BEST always returns the candidate with maximal available capacity,
    /// and never a dead device.
    #[test]
    fn best_is_argmax_of_available_capacity(
        loads in prop::collection::vec(0.0f64..1.0, 4),
        dead in prop::collection::vec(any::<bool>(), 4),
    ) {
        let mut net = network(4, &[(0, 1), (1, 2), (2, 3)], &loads);
        for (i, &d) in dead.iter().enumerate() {
            net.device_mut(&format!("d{i}")).unwrap().alive = !d;
        }
        let names: Vec<String> = (0..4).map(|i| format!("d{i}")).collect();
        let refs: Vec<&str> = names.iter().map(String::as_str).collect();
        match best(&net, &refs) {
            Some(winner) => {
                let wcap = net.device(winner).unwrap().available_capacity();
                prop_assert!(wcap > 0.0);
                for n in &names {
                    prop_assert!(net.device(n).unwrap().available_capacity() <= wcap);
                }
            }
            None => {
                for n in &names {
                    prop_assert!(net.device(n).unwrap().available_capacity() <= 0.0);
                }
            }
        }
    }
}
