//! Network properties: hop-distance symmetry and triangle inequality over
//! random topologies, transfer-time monotonicity, and BEST consistency.
//!
//! Randomised suites are opt-in: `cargo test -p ubinet --features slow-props`.
#![cfg(feature = "slow-props")]

use adm_rng::{run_cases, Pcg32};
use ubinet::device::{Device, DeviceKind};
use ubinet::link::{BandwidthProfile, Link, LinkKind};
use ubinet::net::Network;
use ubinet::select::best;

fn network(n_devices: usize, edges: &[(usize, usize)], loads: &[f64]) -> Network {
    let mut net = Network::new();
    for (i, &load) in loads.iter().enumerate().take(n_devices) {
        net.add_device(Device::new(&format!("d{i}"), DeviceKind::Laptop).with_load(load));
    }
    for &(a, b) in edges {
        let (a, b) = (a % n_devices, b % n_devices);
        if a != b {
            net.add_link(Link::new(
                &format!("d{a}"),
                &format!("d{b}"),
                LinkKind::Wireless,
                BandwidthProfile::Constant(100.0),
                1,
            ));
        }
    }
    net
}

fn edges(rng: &mut Pcg32, n: usize, lo: usize, hi: usize) -> Vec<(usize, usize)> {
    (0..rng.index(hi - lo) + lo).map(|_| (rng.index(n), rng.index(n))).collect()
}

/// d(x, y) == d(y, x), and d obeys the triangle inequality wherever
/// all three distances exist.
#[test]
fn hop_distance_is_a_metric() {
    run_cases(0xe71, 64, |rng| {
        let edges = edges(rng, 6, 0, 12);
        let loads: Vec<f64> = (0..6).map(|_| rng.f64()).collect();
        let net = network(6, &edges, &loads);
        for x in 0..6 {
            for y in 0..6 {
                let dxy = net.hop_distance(&format!("d{x}"), &format!("d{y}"));
                let dyx = net.hop_distance(&format!("d{y}"), &format!("d{x}"));
                assert_eq!(dxy.is_ok(), dyx.is_ok());
                if let (Ok(a), Ok(b)) = (&dxy, &dyx) {
                    assert_eq!(a, b, "symmetry {x} {y}");
                }
                if x == y {
                    assert_eq!(*dxy.as_ref().unwrap(), 0);
                }
                for z in 0..6 {
                    let dxz = net.hop_distance(&format!("d{x}"), &format!("d{z}"));
                    let dzy = net.hop_distance(&format!("d{z}"), &format!("d{y}"));
                    if let (Ok(a), Ok(b), Ok(c)) = (&dxy, &dxz, &dzy) {
                        assert!(a <= &(b + c), "triangle {x} {y} via {z}");
                    }
                }
            }
        }
    });
}

/// Transfer time is monotone in payload size.
#[test]
fn transfer_time_monotone_in_size() {
    run_cases(0xe72, 128, |rng| {
        let edges = edges(rng, 5, 1, 10);
        let small = rng.below(9_999) + 1;
        let extra = rng.below(9_999) + 1;
        let net = network(5, &edges, &[0.0; 5]);
        for x in 0..5 {
            for y in 0..5 {
                let a = net.transfer_ticks(&format!("d{x}"), &format!("d{y}"), small, 0);
                let b = net.transfer_ticks(&format!("d{x}"), &format!("d{y}"), small + extra, 0);
                match (a, b) {
                    (Ok(ta), Ok(tb)) => assert!(tb >= ta),
                    (Err(_), Err(_)) => {}
                    other => panic!("reachability changed with size: {other:?}"),
                }
            }
        }
    });
}

/// BEST always returns the candidate with maximal available capacity,
/// and never a dead device.
#[test]
fn best_is_argmax_of_available_capacity() {
    run_cases(0xe73, 256, |rng| {
        let loads: Vec<f64> = (0..4).map(|_| rng.f64()).collect();
        let dead: Vec<bool> = (0..4).map(|_| rng.chance(0.5)).collect();
        let mut net = network(4, &[(0, 1), (1, 2), (2, 3)], &loads);
        for (i, &d) in dead.iter().enumerate() {
            net.device_mut(&format!("d{i}")).unwrap().alive = !d;
        }
        let names: Vec<String> = (0..4).map(|i| format!("d{i}")).collect();
        let refs: Vec<&str> = names.iter().map(String::as_str).collect();
        match best(&net, &refs) {
            Some(winner) => {
                let wcap = net.device(winner).unwrap().available_capacity();
                assert!(wcap > 0.0);
                for n in &names {
                    assert!(net.device(n).unwrap().available_capacity() <= wcap);
                }
            }
            None => {
                for n in &names {
                    assert!(net.device(n).unwrap().available_capacity() <= 0.0);
                }
            }
        }
    });
}
