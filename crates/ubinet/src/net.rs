//! The network: devices + links, hop distances, transfer times.

use crate::device::Device;
use crate::link::Link;
use std::collections::{BTreeMap, VecDeque};
use std::fmt;

/// Topology errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// Unknown device name.
    UnknownDevice(String),
    /// No live path between the endpoints.
    Unreachable {
        /// Source.
        from: String,
        /// Destination.
        to: String,
    },
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::UnknownDevice(d) => write!(f, "unknown device `{d}`"),
            NetError::Unreachable { from, to } => write!(f, "no live path {from} → {to}"),
        }
    }
}

impl std::error::Error for NetError {}

/// The environment's topology.
#[derive(Debug, Clone, Default)]
pub struct Network {
    devices: BTreeMap<String, Device>,
    links: Vec<Link>,
}

impl Network {
    /// An empty network.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a device (replacing any with the same name).
    pub fn add_device(&mut self, d: Device) {
        self.devices.insert(d.name.clone(), d);
    }

    /// Add a link.
    pub fn add_link(&mut self, l: Link) {
        self.links.push(l);
    }

    /// Look up a device.
    #[must_use]
    pub fn device(&self, name: &str) -> Option<&Device> {
        self.devices.get(name)
    }

    /// Mutable device access.
    pub fn device_mut(&mut self, name: &str) -> Option<&mut Device> {
        self.devices.get_mut(name)
    }

    /// All devices.
    pub fn devices(&self) -> impl Iterator<Item = &Device> {
        self.devices.values()
    }

    /// Mutable access to all links (e.g. to take a dock link down).
    pub fn links_mut(&mut self) -> &mut Vec<Link> {
        &mut self.links
    }

    /// All links.
    #[must_use]
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// Raise or drop every link joining `a` and `b`. Returns how many links
    /// changed state — zero means the fault named a non-existent link, which
    /// callers may want to surface.
    pub fn set_link_up(&mut self, a: &str, b: &str, up: bool) -> usize {
        let mut changed = 0;
        for l in &mut self.links {
            if l.connects(a, b) && l.up != up {
                l.up = up;
                changed += 1;
            }
        }
        changed
    }

    /// Set the latency of every link joining `a` and `b` (a latency spike
    /// sets a high value; recovery restores the original). Returns the
    /// number of links rewritten.
    pub fn set_latency(&mut self, a: &str, b: &str, latency: u64) -> usize {
        let mut changed = 0;
        for l in &mut self.links {
            if l.connects(a, b) {
                l.latency = latency;
                changed += 1;
            }
        }
        changed
    }

    /// Partition the network: every link with exactly one endpoint inside
    /// `island` goes down, isolating the island from the rest. Links wholly
    /// inside or wholly outside are untouched. Returns links taken down.
    pub fn partition(&mut self, island: &[String]) -> usize {
        self.set_boundary(island, false)
    }

    /// Heal a partition created by [`Network::partition`]: every link
    /// crossing the island boundary comes back up. Returns links raised.
    /// (A link that was independently down before the partition comes back
    /// up too — healing is deliberately idempotent and coarse.)
    pub fn heal(&mut self, island: &[String]) -> usize {
        self.set_boundary(island, true)
    }

    fn set_boundary(&mut self, island: &[String], up: bool) -> usize {
        let mut changed = 0;
        for l in &mut self.links {
            let a_in = island.contains(&l.a);
            let b_in = island.contains(&l.b);
            if a_in != b_in && l.up != up {
                l.up = up;
                changed += 1;
            }
        }
        changed
    }

    /// Live neighbours of a device (links up, endpoint alive).
    fn neighbours<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a str> + 'a {
        self.links
            .iter()
            .filter(move |l| l.up && l.touches(name))
            .map(move |l| if l.a == name { l.b.as_str() } else { l.a.as_str() })
            .filter(|n| self.devices.get(*n).is_some_and(|d| d.alive))
    }

    /// BFS hop distance over live links and devices.
    ///
    /// # Errors
    /// [`NetError`] on unknown names or unreachable endpoints.
    pub fn hop_distance(&self, from: &str, to: &str) -> Result<u32, NetError> {
        for n in [from, to] {
            if !self.devices.contains_key(n) {
                return Err(NetError::UnknownDevice(n.to_owned()));
            }
        }
        if from == to {
            return Ok(0);
        }
        let mut dist: BTreeMap<&str, u32> = BTreeMap::new();
        dist.insert(from, 0);
        let mut q = VecDeque::from([from]);
        while let Some(cur) = q.pop_front() {
            let d = dist[cur];
            for n in self.neighbours(cur) {
                if !dist.contains_key(n) {
                    if n == to {
                        return Ok(d + 1);
                    }
                    dist.insert(n, d + 1);
                    q.push_back(n);
                }
            }
        }
        Err(NetError::Unreachable { from: from.to_owned(), to: to.to_owned() })
    }

    /// Whether a heartbeat sent `from` → `to` would land: both devices
    /// alive and a live path between them (a device can always hear
    /// itself). This is the failure detector's probe primitive — it
    /// deliberately cannot distinguish a dead peer from a partitioned
    /// one, which is exactly the ambiguity a detector must tolerate.
    #[must_use]
    pub fn heartbeat(&self, from: &str, to: &str) -> bool {
        let both_alive = [from, to].iter().all(|n| self.devices.get(*n).is_some_and(|d| d.alive));
        both_alive && (from == to || self.hop_distance(from, to).is_ok())
    }

    /// The live path (as link indices) with the fewest hops, and its
    /// bottleneck bandwidth and total latency at `tick`.
    ///
    /// # Errors
    /// [`NetError`] on unknown/unreachable endpoints.
    pub fn path_metrics(&self, from: &str, to: &str, tick: u64) -> Result<(f64, u64), NetError> {
        for n in [from, to] {
            if !self.devices.contains_key(n) {
                return Err(NetError::UnknownDevice(n.to_owned()));
            }
        }
        if from == to {
            return Ok((f64::INFINITY, 0));
        }
        // BFS storing parents.
        let mut parent: BTreeMap<&str, &str> = BTreeMap::new();
        let mut q = VecDeque::from([from]);
        parent.insert(from, from);
        'bfs: while let Some(cur) = q.pop_front() {
            for n in self.neighbours(cur) {
                if !parent.contains_key(n) {
                    parent.insert(n, cur);
                    if n == to {
                        break 'bfs;
                    }
                    q.push_back(n);
                }
            }
        }
        if !parent.contains_key(to) {
            return Err(NetError::Unreachable { from: from.to_owned(), to: to.to_owned() });
        }
        let mut bw = f64::INFINITY;
        let mut lat = 0u64;
        let mut cur = to;
        while cur != from {
            let prev = parent[cur];
            let link = self
                .links
                .iter()
                .find(|l| l.up && l.connects(prev, cur))
                .expect("parent edge exists");
            bw = bw.min(link.bandwidth_at(tick));
            lat += link.latency;
            cur = prev;
        }
        Ok((bw, lat))
    }

    /// Ticks to transfer `bytes` from `from` to `to` starting at `tick`:
    /// latency + size/bottleneck (bandwidth sampled at start — links are
    /// piecewise-steady at scenario timescales).
    ///
    /// # Errors
    /// [`NetError`]; also `Unreachable` when the bottleneck is zero.
    pub fn transfer_ticks(
        &self,
        from: &str,
        to: &str,
        bytes: u64,
        tick: u64,
    ) -> Result<u64, NetError> {
        let (bw, lat) = self.path_metrics(from, to, tick)?;
        if bw <= 0.0 {
            return Err(NetError::Unreachable { from: from.to_owned(), to: to.to_owned() });
        }
        if bw.is_infinite() {
            return Ok(lat);
        }
        Ok(lat + (bytes as f64 / bw).ceil() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceKind;
    use crate::link::{BandwidthProfile, LinkKind};

    /// sensor — laptop — pda, laptop — server.
    fn net() -> Network {
        let mut n = Network::new();
        n.add_device(Device::new("sensor", DeviceKind::Sensor));
        n.add_device(Device::new("laptop", DeviceKind::Laptop));
        n.add_device(Device::new("pda", DeviceKind::Pda));
        n.add_device(Device::new("server", DeviceKind::Server));
        n.add_link(Link::new(
            "sensor",
            "laptop",
            LinkKind::Wireless,
            BandwidthProfile::Constant(50.0),
            2,
        ));
        n.add_link(Link::new(
            "laptop",
            "pda",
            LinkKind::Wireless,
            BandwidthProfile::Constant(100.0),
            1,
        ));
        n.add_link(Link::new(
            "laptop",
            "server",
            LinkKind::Wired,
            BandwidthProfile::Constant(1000.0),
            1,
        ));
        n
    }

    #[test]
    fn hop_distances() {
        let n = net();
        assert_eq!(n.hop_distance("sensor", "laptop").unwrap(), 1);
        assert_eq!(n.hop_distance("sensor", "pda").unwrap(), 2);
        assert_eq!(n.hop_distance("pda", "pda").unwrap(), 0);
    }

    #[test]
    fn unknown_and_unreachable() {
        let mut n = net();
        assert!(matches!(n.hop_distance("ghost", "pda"), Err(NetError::UnknownDevice(_))));
        n.links_mut()[0].up = false;
        assert!(matches!(n.hop_distance("sensor", "pda"), Err(NetError::Unreachable { .. })));
    }

    #[test]
    fn dead_device_breaks_paths() {
        let mut n = net();
        n.device_mut("laptop").unwrap().alive = false;
        assert!(n.hop_distance("sensor", "pda").is_err());
    }

    #[test]
    fn partition_isolates_island_and_heal_restores() {
        let mut n = net();
        let island = vec!["laptop".to_owned(), "pda".to_owned()];
        let cut = n.partition(&island);
        assert_eq!(cut, 2, "sensor-laptop and laptop-server cross the boundary");
        assert!(n.hop_distance("sensor", "laptop").is_err());
        assert!(n.hop_distance("laptop", "server").is_err());
        assert_eq!(n.hop_distance("laptop", "pda").unwrap(), 1, "intra-island survives");
        assert_eq!(n.heal(&island), 2);
        assert!(n.hop_distance("sensor", "laptop").is_ok());
    }

    #[test]
    fn heartbeat_needs_liveness_and_a_path() {
        let mut n = net();
        assert!(n.heartbeat("server", "pda"), "live path carries the beat");
        assert!(n.heartbeat("pda", "pda"), "a device always hears itself");
        assert!(!n.heartbeat("server", "ghost"), "unknown peer never answers");
        n.device_mut("pda").unwrap().alive = false;
        assert!(!n.heartbeat("server", "pda"), "dead peer misses the beat");
        assert!(!n.heartbeat("pda", "pda"), "a dead device cannot even hear itself");
        n.device_mut("pda").unwrap().alive = true;
        n.partition(&["pda".to_owned()]);
        assert!(!n.heartbeat("server", "pda"), "partition looks exactly like death");
    }

    #[test]
    fn set_link_up_reports_changes() {
        let mut n = net();
        assert_eq!(n.set_link_up("sensor", "laptop", false), 1);
        assert_eq!(n.set_link_up("sensor", "laptop", false), 0, "already down");
        assert_eq!(n.set_link_up("ghost", "laptop", false), 0, "no such link");
        assert_eq!(n.set_link_up("sensor", "laptop", true), 1);
    }

    #[test]
    fn set_latency_rewrites_matching_links() {
        let mut n = net();
        assert_eq!(n.set_latency("laptop", "server", 40), 1);
        let (_, lat) = n.path_metrics("laptop", "server", 0).unwrap();
        assert_eq!(lat, 40);
    }

    #[test]
    fn path_metrics_bottleneck_and_latency() {
        let n = net();
        let (bw, lat) = n.path_metrics("sensor", "pda", 0).unwrap();
        assert_eq!(bw, 50.0, "sensor link is the bottleneck");
        assert_eq!(lat, 3);
    }

    #[test]
    fn transfer_time_accounts_size_and_latency() {
        let n = net();
        // 500 bytes over bottleneck 50 B/tick + 3 latency = 13.
        assert_eq!(n.transfer_ticks("sensor", "pda", 500, 0).unwrap(), 13);
        // Local transfer is free.
        assert_eq!(n.transfer_ticks("pda", "pda", 10_000, 0).unwrap(), 0);
    }

    #[test]
    fn transfer_over_stepped_link_uses_tick() {
        let mut n = net();
        n.links_mut()[1].profile = BandwidthProfile::Steps(vec![(0, 100.0), (10, 10.0)]);
        let fast = n.transfer_ticks("laptop", "pda", 1000, 0).unwrap();
        let slow = n.transfer_ticks("laptop", "pda", 1000, 10).unwrap();
        assert!(slow > fast);
    }
}
