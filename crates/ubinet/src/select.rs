//! The paper's device-selection functions.
//!
//! > "The DBMS understands the function BEST to mean the best device in
//! > terms of capacity and current load. ... Functions like NEAREST could
//! > indicate the closest data resource and the constraint rules themselves
//! > can be prioritised. That is BEST, like NEAREST, is parameterised with
//! > representations of the two computing nodes to be compared."

use crate::net::{NetError, Network};

/// `BEST(candidates)`: the candidate with the most available capacity
/// (nominal capacity × idleness, zero for dead or battery-flat devices).
/// Ties break toward the earlier candidate, matching the paper's
/// prioritised argument lists. Returns `None` when no candidate has any
/// capacity.
#[must_use]
pub fn best<'a>(net: &Network, candidates: &[&'a str]) -> Option<&'a str> {
    let mut winner: Option<(&str, f64)> = None;
    for &c in candidates {
        let cap = net.device(c).map_or(0.0, |d| d.available_capacity());
        if cap <= 0.0 {
            continue;
        }
        if winner.is_none_or(|(_, w)| cap > w) {
            winner = Some((c, cap));
        }
    }
    winner.map(|(c, _)| c)
}

/// `NEAREST(from, candidates)`: the candidate with the fewest live hops
/// from `from`. Unreachable candidates are skipped; ties break toward the
/// earlier candidate.
///
/// # Errors
/// [`NetError::UnknownDevice`] if `from` is unknown;
/// [`NetError::Unreachable`] if no candidate is reachable.
pub fn nearest<'a>(net: &Network, from: &str, candidates: &[&'a str]) -> Result<&'a str, NetError> {
    if net.device(from).is_none() {
        return Err(NetError::UnknownDevice(from.to_owned()));
    }
    let mut winner: Option<(&str, u32)> = None;
    for &c in candidates {
        match net.hop_distance(from, c) {
            Ok(d) => {
                if winner.is_none_or(|(_, w)| d < w) {
                    winner = Some((c, d));
                }
            }
            Err(_) => continue,
        }
    }
    winner
        .map(|(c, _)| c)
        .ok_or(NetError::Unreachable { from: from.to_owned(), to: candidates.join("|") })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::{Device, DeviceKind};
    use crate::link::{BandwidthProfile, Link, LinkKind};

    fn net() -> Network {
        let mut n = Network::new();
        n.add_device(Device::new("pda", DeviceKind::Pda));
        n.add_device(Device::new("laptop", DeviceKind::Laptop));
        n.add_device(Device::new("server", DeviceKind::Server).with_load(0.99));
        n.add_link(Link::new(
            "pda",
            "laptop",
            LinkKind::Wireless,
            BandwidthProfile::Constant(100.0),
            1,
        ));
        n.add_link(Link::new(
            "laptop",
            "server",
            LinkKind::Wired,
            BandwidthProfile::Constant(1000.0),
            1,
        ));
        n
    }

    #[test]
    fn best_prefers_idle_laptop_over_busy_server() {
        // Scenario 1: "the Laptop is better as it is not being used and has
        // much more capacity compared with the PDA".
        let n = net();
        assert_eq!(best(&n, &["pda", "laptop"]), Some("laptop"));
        // A 99%-loaded server has 100 available; idle laptop has 1000.
        assert_eq!(best(&n, &["server", "laptop"]), Some("laptop"));
    }

    #[test]
    fn best_skips_dead_and_flat_devices() {
        let mut n = net();
        n.device_mut("laptop").unwrap().alive = false;
        assert_eq!(best(&n, &["pda", "laptop"]), Some("pda"));
        n.device_mut("pda").unwrap().alive = false;
        assert_eq!(best(&n, &["pda", "laptop"]), None);
    }

    #[test]
    fn best_tie_breaks_toward_priority_order() {
        let mut n = net();
        n.add_device(Device::new("laptop2", DeviceKind::Laptop));
        assert_eq!(best(&n, &["laptop", "laptop2"]), Some("laptop"));
        assert_eq!(best(&n, &["laptop2", "laptop"]), Some("laptop2"));
    }

    #[test]
    fn nearest_picks_fewest_hops() {
        let n = net();
        assert_eq!(nearest(&n, "pda", &["server", "laptop"]).unwrap(), "laptop");
        assert_eq!(nearest(&n, "pda", &["server"]).unwrap(), "server");
    }

    #[test]
    fn nearest_skips_unreachable() {
        let mut n = net();
        n.add_device(Device::new("island", DeviceKind::Pda));
        assert_eq!(nearest(&n, "pda", &["island", "laptop"]).unwrap(), "laptop");
        assert!(matches!(nearest(&n, "pda", &["island"]), Err(NetError::Unreachable { .. })));
        assert!(matches!(nearest(&n, "ghost", &["laptop"]), Err(NetError::UnknownDevice(_))));
    }
}
