//! # ubinet — the simulated ubiquitous computing environment
//!
//! Section 4 sets its scenarios in "a subset of a ubiquitous system that
//! consists of a sensor, a Laptop and a PDA", with wireless links whose
//! bandwidth moves, batteries that drain, docks that connect and disconnect,
//! and devices that can fail "perhaps mid way through answering a query".
//! None of that hardware exists here, so this crate is the substitution: a
//! deterministic discrete-event simulator of
//!
//! * [`device`] — devices with capacity, load, battery and dock state;
//! * [`link`] — wired/wireless links with time-varying bandwidth profiles;
//! * [`net`] — the topology: transfer-time estimation and hop distances;
//! * [`select`] — the paper's `BEST` (capacity × idleness) and `NEAREST`
//!   (hop distance) device functions;
//! * [`sim`] — the event queue driving undocks, load changes, bandwidth
//!   steps and failures, and emitting monitor readings for the `compkit`
//!   gauge board.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod device;
pub mod link;
pub mod net;
pub mod select;
pub mod sim;

pub use device::{Device, DeviceKind};
pub use link::{BandwidthProfile, Link, LinkKind};
pub use net::Network;
pub use select::{best, nearest};
pub use sim::{EnvEvent, Simulator};
