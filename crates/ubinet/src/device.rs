//! Devices: "anything from a set of sensors, PDAs, mobile phones and
//! webpads etc. to servers".

/// What kind of device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceKind {
    /// A sensor streaming XML readings; tiny capacity.
    Sensor,
    /// A PDA: small capacity, battery-powered.
    Pda,
    /// A laptop: medium capacity, may dock (mains + wired net).
    Laptop,
    /// A server: large capacity, mains-powered.
    Server,
    /// An under-utilised desktop (the paper's "typing-pool" machine Patia
    /// spreads onto during flash crowds).
    Workstation,
}

impl DeviceKind {
    /// Nominal compute capacity in operations per tick.
    #[must_use]
    pub fn nominal_capacity(self) -> f64 {
        match self {
            DeviceKind::Sensor => 10.0,
            DeviceKind::Pda => 100.0,
            DeviceKind::Laptop => 1_000.0,
            DeviceKind::Server => 10_000.0,
            DeviceKind::Workstation => 2_000.0,
        }
    }

    /// Whether the device runs on battery when undocked.
    #[must_use]
    pub fn battery_powered(self) -> bool {
        matches!(self, DeviceKind::Sensor | DeviceKind::Pda | DeviceKind::Laptop)
    }
}

/// A device in the environment.
#[derive(Debug, Clone, PartialEq)]
pub struct Device {
    /// Unique name.
    pub name: String,
    /// Kind.
    pub kind: DeviceKind,
    /// Current load fraction in \[0, 1\].
    pub load: f64,
    /// Battery level in \[0, 1\]; meaningless when docked/mains.
    pub battery: f64,
    /// Docked (mains power + wired network available).
    pub docked: bool,
    /// Whether the device is up.
    pub alive: bool,
}

impl Device {
    /// A fresh device, idle, full battery, docked, alive.
    #[must_use]
    pub fn new(name: &str, kind: DeviceKind) -> Self {
        Self { name: name.to_owned(), kind, load: 0.0, battery: 1.0, docked: true, alive: true }
    }

    /// Builder: start undocked.
    #[must_use]
    pub fn undocked(mut self) -> Self {
        self.docked = false;
        self
    }

    /// Builder: start at a load.
    #[must_use]
    pub fn with_load(mut self, load: f64) -> Self {
        self.load = load.clamp(0.0, 1.0);
        self
    }

    /// Capacity left over for new work: nominal × (1 − load), zero if dead
    /// or battery-flat while undocked.
    #[must_use]
    pub fn available_capacity(&self) -> f64 {
        if !self.alive {
            return 0.0;
        }
        if !self.docked && self.kind.battery_powered() && self.battery <= 0.0 {
            return 0.0;
        }
        self.kind.nominal_capacity() * (1.0 - self.load)
    }

    /// Drain battery for one tick of work at the current load. Docked
    /// devices (or mains devices) do not drain. `drain_rate` is the battery
    /// fraction a fully-loaded tick consumes.
    pub fn step_power(&mut self, drain_rate: f64) {
        if self.alive && !self.docked && self.kind.battery_powered() {
            self.battery = (self.battery - drain_rate * (0.2 + 0.8 * self.load)).max(0.0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_scales_with_load() {
        let d = Device::new("laptop", DeviceKind::Laptop).with_load(0.75);
        assert!((d.available_capacity() - 250.0).abs() < 1e-9);
    }

    #[test]
    fn dead_device_has_no_capacity() {
        let mut d = Device::new("pda", DeviceKind::Pda);
        d.alive = false;
        assert_eq!(d.available_capacity(), 0.0);
    }

    #[test]
    fn flat_battery_undocked_has_no_capacity() {
        let mut d = Device::new("pda", DeviceKind::Pda).undocked();
        d.battery = 0.0;
        assert_eq!(d.available_capacity(), 0.0);
        d.docked = true;
        assert!(d.available_capacity() > 0.0, "docked device runs on mains");
    }

    #[test]
    fn battery_drains_only_when_undocked() {
        let mut docked = Device::new("l1", DeviceKind::Laptop);
        let mut mobile = Device::new("l2", DeviceKind::Laptop).undocked().with_load(1.0);
        for _ in 0..10 {
            docked.step_power(0.01);
            mobile.step_power(0.01);
        }
        assert_eq!(docked.battery, 1.0);
        assert!((mobile.battery - 0.9).abs() < 1e-9);
    }

    #[test]
    fn server_never_drains() {
        let mut s = Device::new("srv", DeviceKind::Server).undocked().with_load(1.0);
        s.step_power(0.5);
        assert_eq!(s.battery, 1.0);
    }

    #[test]
    fn load_clamped() {
        assert_eq!(Device::new("x", DeviceKind::Pda).with_load(7.0).load, 1.0);
        assert_eq!(Device::new("x", DeviceKind::Pda).with_load(-1.0).load, 0.0);
    }

    #[test]
    fn kind_ordering_of_capacity() {
        assert!(DeviceKind::Server.nominal_capacity() > DeviceKind::Laptop.nominal_capacity());
        assert!(DeviceKind::Laptop.nominal_capacity() > DeviceKind::Pda.nominal_capacity());
        assert!(DeviceKind::Pda.nominal_capacity() > DeviceKind::Sensor.nominal_capacity());
    }
}
