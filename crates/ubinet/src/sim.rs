//! The discrete-event simulator driving the environment.
//!
//! Events model exactly the disruptions the paper's scenarios need: undock
//! (Scenario 2: "in the meantime it has been unplugged"), load changes
//! (Scenario 1's `BEST`), bandwidth steps (constraint 595), and device
//! failure ("units failing — perhaps mid way through answering a query").
//! After each applied event the simulator emits monitor readings so the
//! `compkit` gauge board sees the same world the network does.

use crate::link::BandwidthProfile;
use crate::net::Network;
use obs::{ObsHandle, Primitive};
use std::collections::BTreeMap;

/// An environmental event.
#[derive(Debug, Clone, PartialEq)]
pub enum EnvEvent {
    /// A device docks (`true`) or undocks (`false`); its wired links follow.
    SetDocked {
        /// Device name.
        device: String,
        /// New dock state.
        docked: bool,
    },
    /// A device's load changes.
    SetLoad {
        /// Device name.
        device: String,
        /// New load in \[0, 1\].
        load: f64,
    },
    /// A device fails or recovers.
    SetAlive {
        /// Device name.
        device: String,
        /// New liveness.
        alive: bool,
    },
    /// Replace a link's bandwidth profile (the link is named by endpoints).
    SetBandwidth {
        /// One endpoint.
        a: String,
        /// Other endpoint.
        b: String,
        /// New profile.
        profile: BandwidthProfile,
    },
    /// A link drops (`false`) or recovers (`true`) — the fault-injection
    /// primitive behind link flaps.
    SetLinkUp {
        /// One endpoint.
        a: String,
        /// Other endpoint.
        b: String,
        /// New link state.
        up: bool,
    },
    /// A link's latency changes (a latency spike sets a high value; the
    /// recovery event restores the original).
    SetLatency {
        /// One endpoint.
        a: String,
        /// Other endpoint.
        b: String,
        /// New latency in ticks.
        latency: u64,
    },
    /// A network partition: every link crossing the island boundary drops.
    Partition {
        /// Devices isolated from the rest of the network.
        island: Vec<String>,
    },
    /// Heal a partition: links crossing the island boundary come back up.
    Heal {
        /// The island whose boundary links recover.
        island: Vec<String>,
    },
}

impl EnvEvent {
    /// A stable short label for tracing and metric names.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            EnvEvent::SetDocked { .. } => "set_docked",
            EnvEvent::SetLoad { .. } => "set_load",
            EnvEvent::SetAlive { .. } => "set_alive",
            EnvEvent::SetBandwidth { .. } => "set_bandwidth",
            EnvEvent::SetLinkUp { .. } => "set_link_up",
            EnvEvent::SetLatency { .. } => "set_latency",
            EnvEvent::Partition { .. } => "partition",
            EnvEvent::Heal { .. } => "heal",
        }
    }

    /// Structured key/value arguments describing the event — what trace
    /// queries filter on (which device failed, which link flapped, ...).
    #[must_use]
    pub fn args(&self) -> Vec<(&'static str, String)> {
        match self {
            EnvEvent::SetDocked { device, docked } => {
                vec![("device", device.clone()), ("docked", docked.to_string())]
            }
            EnvEvent::SetLoad { device, load } => {
                vec![("device", device.clone()), ("load", format!("{load:.3}"))]
            }
            EnvEvent::SetAlive { device, alive } => {
                vec![("device", device.clone()), ("alive", alive.to_string())]
            }
            EnvEvent::SetBandwidth { a, b, .. } => vec![("a", a.clone()), ("b", b.clone())],
            EnvEvent::SetLinkUp { a, b, up } => {
                vec![("a", a.clone()), ("b", b.clone()), ("up", up.to_string())]
            }
            EnvEvent::SetLatency { a, b, latency } => {
                vec![("a", a.clone()), ("b", b.clone()), ("latency", latency.to_string())]
            }
            EnvEvent::Partition { island } | EnvEvent::Heal { island } => {
                vec![("island", island.join("+"))]
            }
        }
    }
}

/// The simulator: a network plus a schedule of events.
///
/// Cloning a simulator with an armed observability hub shares the hub (the
/// handle is reference-counted) — both clones then write to one trace.
#[derive(Debug, Clone, Default)]
pub struct Simulator {
    /// The environment's topology and device states.
    pub net: Network,
    schedule: Vec<(u64, EnvEvent)>,
    now: u64,
    battery_drain_per_tick: f64,
    obs: Option<ObsHandle>,
}

impl Simulator {
    /// A simulator over a network with the given per-tick battery drain for
    /// fully-loaded mobile devices.
    #[must_use]
    pub fn new(net: Network, battery_drain_per_tick: f64) -> Self {
        Self { net, schedule: Vec::new(), now: 0, battery_drain_per_tick, obs: None }
    }

    /// Arm the observability hub: every applied event then emits an
    /// instant trace marker and bumps its `ubinet.events.*` counter.
    /// Zero-cost when disarmed, like the fault-injection hooks.
    pub fn arm_obs(&mut self, obs: ObsHandle) {
        self.obs = Some(obs);
    }

    /// Disarm observability.
    pub fn disarm_obs(&mut self) {
        self.obs = None;
    }

    /// Current tick.
    #[must_use]
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Schedule an event. Events at the same tick apply in scheduling order.
    pub fn schedule(&mut self, tick: u64, ev: EnvEvent) {
        let pos = self.schedule.partition_point(|(t, _)| *t <= tick);
        self.schedule.insert(pos, (tick, ev));
    }

    fn apply(&mut self, ev: &EnvEvent) {
        match ev {
            EnvEvent::SetDocked { device, docked } => {
                if let Some(d) = self.net.device_mut(device) {
                    d.docked = *docked;
                }
                // Wired links to an undocked device go down (Ethernet
                // unplugged); they come back when redocked.
                for l in self.net.links_mut() {
                    if l.kind == crate::link::LinkKind::Wired && l.touches(device) {
                        l.up = *docked;
                    }
                }
            }
            EnvEvent::SetLoad { device, load } => {
                if let Some(d) = self.net.device_mut(device) {
                    d.load = load.clamp(0.0, 1.0);
                }
            }
            EnvEvent::SetAlive { device, alive } => {
                if let Some(d) = self.net.device_mut(device) {
                    d.alive = *alive;
                }
            }
            EnvEvent::SetBandwidth { a, b, profile } => {
                for l in self.net.links_mut() {
                    if l.connects(a, b) {
                        l.profile = profile.clone();
                    }
                }
            }
            EnvEvent::SetLinkUp { a, b, up } => {
                self.net.set_link_up(a, b, *up);
            }
            EnvEvent::SetLatency { a, b, latency } => {
                self.net.set_latency(a, b, *latency);
            }
            EnvEvent::Partition { island } => {
                self.net.partition(island);
            }
            EnvEvent::Heal { island } => {
                self.net.heal(island);
            }
        }
    }

    /// Advance to `to_tick` (inclusive), applying due events and draining
    /// batteries each tick. Returns the events applied, in order.
    pub fn advance(&mut self, to_tick: u64) -> Vec<(u64, EnvEvent)> {
        let mut applied = Vec::new();
        while self.now < to_tick {
            self.now += 1;
            let due: Vec<(u64, EnvEvent)> = {
                let split = self.schedule.partition_point(|(t, _)| *t <= self.now);
                self.schedule.drain(..split).collect()
            };
            for (t, ev) in due {
                self.apply(&ev);
                if let Some(obs) = &self.obs {
                    let mut o = obs.borrow_mut();
                    o.charge(Primitive::Branch);
                    let mut args = vec![("tick", t.to_string()), ("now", self.now.to_string())];
                    args.extend(ev.args());
                    o.instant("ubinet", ev.label(), args);
                    o.metrics.counter_add(&format!("ubinet.events.{}", ev.label()), 1);
                }
                applied.push((t, ev));
            }
            let drain = self.battery_drain_per_tick;
            let names: Vec<String> = self.net.devices().map(|d| d.name.clone()).collect();
            for n in names {
                if let Some(d) = self.net.device_mut(&n) {
                    d.step_power(drain);
                }
            }
        }
        applied
    }

    /// Monitor readings describing the world at `now`: per device
    /// `load:<name>`, `battery:<name>`, `alive:<name>`, `docked:<name>`;
    /// per link `bw:<a>:<b>`.
    #[must_use]
    pub fn readings(&self) -> BTreeMap<String, f64> {
        let mut out = BTreeMap::new();
        for d in self.net.devices() {
            out.insert(format!("load:{}", d.name), d.load);
            out.insert(format!("battery:{}", d.name), d.battery);
            out.insert(format!("alive:{}", d.name), f64::from(u8::from(d.alive)));
            out.insert(format!("docked:{}", d.name), f64::from(u8::from(d.docked)));
        }
        for l in self.net.links() {
            out.insert(format!("bw:{}:{}", l.a, l.b), l.bandwidth_at(self.now));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::{Device, DeviceKind};
    use crate::link::{BandwidthProfile, Link, LinkKind};

    fn sim() -> Simulator {
        let mut n = Network::new();
        n.add_device(Device::new("laptop", DeviceKind::Laptop));
        n.add_device(Device::new("sensor", DeviceKind::Sensor));
        n.add_link(Link::new(
            "laptop",
            "sensor",
            LinkKind::Wired,
            BandwidthProfile::Constant(1000.0),
            1,
        ));
        n.add_link(Link::new(
            "laptop",
            "sensor",
            LinkKind::Wireless,
            BandwidthProfile::Constant(50.0),
            2,
        ));
        Simulator::new(n, 0.001)
    }

    #[test]
    fn undock_takes_wired_link_down_only() {
        let mut s = sim();
        s.schedule(5, EnvEvent::SetDocked { device: "laptop".into(), docked: false });
        let applied = s.advance(10);
        assert_eq!(applied.len(), 1);
        assert_eq!(s.now(), 10);
        let wired = &s.net.links()[0];
        let wireless = &s.net.links()[1];
        assert!(!wired.up);
        assert!(wireless.up);
        // Redock restores.
        s.schedule(12, EnvEvent::SetDocked { device: "laptop".into(), docked: true });
        s.advance(12);
        assert!(s.net.links()[0].up);
    }

    #[test]
    fn battery_drains_while_undocked() {
        let mut s = sim();
        s.schedule(1, EnvEvent::SetDocked { device: "laptop".into(), docked: false });
        s.advance(101);
        let b = s.net.device("laptop").unwrap().battery;
        assert!(b < 1.0, "battery should drain, got {b}");
    }

    #[test]
    fn events_apply_in_tick_order() {
        let mut s = sim();
        s.schedule(3, EnvEvent::SetLoad { device: "laptop".into(), load: 0.3 });
        s.schedule(2, EnvEvent::SetLoad { device: "laptop".into(), load: 0.2 });
        s.schedule(3, EnvEvent::SetLoad { device: "laptop".into(), load: 0.9 });
        let applied = s.advance(5);
        assert_eq!(applied.iter().map(|(t, _)| *t).collect::<Vec<_>>(), vec![2, 3, 3]);
        assert_eq!(s.net.device("laptop").unwrap().load, 0.9);
    }

    #[test]
    fn bandwidth_event_rewrites_profile() {
        let mut s = sim();
        s.schedule(
            1,
            EnvEvent::SetBandwidth {
                a: "laptop".into(),
                b: "sensor".into(),
                profile: BandwidthProfile::Constant(10.0),
            },
        );
        s.advance(1);
        assert_eq!(s.net.links()[0].bandwidth_at(1), 10.0);
        assert_eq!(s.net.links()[1].bandwidth_at(1), 10.0, "both matching links rewritten");
    }

    #[test]
    fn failure_event_kills_device() {
        let mut s = sim();
        s.schedule(1, EnvEvent::SetAlive { device: "sensor".into(), alive: false });
        s.advance(1);
        assert!(!s.net.device("sensor").unwrap().alive);
    }

    #[test]
    fn link_flap_events_drop_and_restore() {
        let mut s = sim();
        s.schedule(2, EnvEvent::SetLinkUp { a: "laptop".into(), b: "sensor".into(), up: false });
        s.schedule(6, EnvEvent::SetLinkUp { a: "laptop".into(), b: "sensor".into(), up: true });
        s.advance(3);
        assert!(s.net.links().iter().all(|l| !l.up), "both laptop-sensor links drop");
        assert!(s.net.hop_distance("laptop", "sensor").is_err());
        s.advance(6);
        assert!(s.net.links().iter().all(|l| l.up));
        assert_eq!(s.net.hop_distance("laptop", "sensor").unwrap(), 1);
    }

    #[test]
    fn latency_spike_event_rewrites_and_recovers() {
        let mut s = sim();
        let base = s.net.links()[0].latency;
        s.schedule(1, EnvEvent::SetLatency { a: "laptop".into(), b: "sensor".into(), latency: 50 });
        s.schedule(
            4,
            EnvEvent::SetLatency { a: "laptop".into(), b: "sensor".into(), latency: base },
        );
        s.advance(1);
        assert_eq!(s.net.links()[0].latency, 50);
        s.advance(4);
        assert_eq!(s.net.links()[0].latency, base);
    }

    #[test]
    fn partition_and_heal_events_toggle_boundary_links() {
        let mut s = sim();
        let island = vec!["sensor".to_owned()];
        s.schedule(1, EnvEvent::Partition { island: island.clone() });
        s.schedule(5, EnvEvent::Heal { island });
        s.advance(1);
        assert!(s.net.hop_distance("laptop", "sensor").is_err(), "island isolated");
        s.advance(5);
        assert!(s.net.hop_distance("laptop", "sensor").is_ok(), "healed");
    }

    #[test]
    fn readings_cover_devices_and_links() {
        let s = sim();
        let r = s.readings();
        assert_eq!(r["load:laptop"], 0.0);
        assert_eq!(r["alive:sensor"], 1.0);
        assert_eq!(r["docked:laptop"], 1.0);
        assert_eq!(r["bw:laptop:sensor"], 50.0, "later link wins the map key");
    }
}
