//! Links: wired and wireless, with time-varying bandwidth.
//!
//! Scenario 2 hinges on the wireless link being slower and less predictable
//! than the docked Ethernet; Table 2's constraint 595 selects video versions
//! by a bandwidth band. Profiles make that dynamism deterministic and
//! reproducible.

/// Physical kind of a link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkKind {
    /// Wired (Ethernet while docked).
    Wired,
    /// Wireless.
    Wireless,
}

/// How a link's bandwidth evolves over time (bytes per tick).
#[derive(Debug, Clone, PartialEq)]
pub enum BandwidthProfile {
    /// Constant bandwidth.
    Constant(f64),
    /// Piecewise-constant steps: `(from_tick, bandwidth)`, sorted by tick;
    /// before the first step the first bandwidth applies.
    Steps(Vec<(u64, f64)>),
    /// A deterministic pseudo-random walk between `lo` and `hi`, seeded —
    /// wireless fading without nondeterminism.
    Walk {
        /// Lower bound.
        lo: f64,
        /// Upper bound.
        hi: f64,
        /// Seed for the deterministic walk.
        seed: u64,
    },
}

impl BandwidthProfile {
    /// Bandwidth at a tick.
    #[must_use]
    pub fn at(&self, tick: u64) -> f64 {
        match self {
            BandwidthProfile::Constant(b) => *b,
            BandwidthProfile::Steps(steps) => {
                let mut bw = steps.first().map_or(0.0, |&(_, b)| b);
                for &(t, b) in steps {
                    if tick >= t {
                        bw = b;
                    } else {
                        break;
                    }
                }
                bw
            }
            BandwidthProfile::Walk { lo, hi, seed } => {
                // SplitMix64 on (seed, tick) → uniform in [lo, hi], smoothed
                // over a 4-tick window for walk-like behaviour.
                let mut acc = 0.0;
                for k in 0..4 {
                    let mut z = seed
                        .wrapping_add(tick.saturating_sub(k))
                        .wrapping_mul(0x9e37_79b9_7f4a_7c15);
                    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                    z ^= z >> 31;
                    acc += (z >> 11) as f64 / (1u64 << 53) as f64;
                }
                lo + (hi - lo) * (acc / 4.0)
            }
        }
    }
}

/// A bidirectional link between two named devices.
#[derive(Debug, Clone, PartialEq)]
pub struct Link {
    /// One endpoint.
    pub a: String,
    /// The other endpoint.
    pub b: String,
    /// Kind.
    pub kind: LinkKind,
    /// Bandwidth over time, bytes per tick.
    pub profile: BandwidthProfile,
    /// Latency in ticks.
    pub latency: u64,
    /// Whether the link is currently up (docked Ethernet goes down on
    /// undock).
    pub up: bool,
}

impl Link {
    /// A live link.
    #[must_use]
    pub fn new(a: &str, b: &str, kind: LinkKind, profile: BandwidthProfile, latency: u64) -> Self {
        Self { a: a.to_owned(), b: b.to_owned(), kind, profile, latency, up: true }
    }

    /// Whether the link joins the two names (order-insensitive).
    #[must_use]
    pub fn connects(&self, x: &str, y: &str) -> bool {
        (self.a == x && self.b == y) || (self.a == y && self.b == x)
    }

    /// Whether the link touches the named device.
    #[must_use]
    pub fn touches(&self, x: &str) -> bool {
        self.a == x || self.b == x
    }

    /// Effective bandwidth at a tick (zero when down).
    #[must_use]
    pub fn bandwidth_at(&self, tick: u64) -> f64 {
        if self.up {
            self.profile.at(tick)
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_profile() {
        assert_eq!(BandwidthProfile::Constant(100.0).at(0), 100.0);
        assert_eq!(BandwidthProfile::Constant(100.0).at(1000), 100.0);
    }

    #[test]
    fn step_profile_changes_at_boundaries() {
        let p = BandwidthProfile::Steps(vec![(0, 100.0), (10, 30.0), (20, 60.0)]);
        assert_eq!(p.at(0), 100.0);
        assert_eq!(p.at(9), 100.0);
        assert_eq!(p.at(10), 30.0);
        assert_eq!(p.at(19), 30.0);
        assert_eq!(p.at(25), 60.0);
    }

    #[test]
    fn walk_is_deterministic_and_bounded() {
        let p = BandwidthProfile::Walk { lo: 30.0, hi: 100.0, seed: 7 };
        for t in 0..500 {
            let v = p.at(t);
            assert!((30.0..=100.0).contains(&v), "t={t} v={v}");
            assert_eq!(v, p.at(t), "deterministic");
        }
        let q = BandwidthProfile::Walk { lo: 30.0, hi: 100.0, seed: 8 };
        assert_ne!(p.at(3), q.at(3), "different seeds differ");
    }

    #[test]
    fn walk_varies_over_time() {
        let p = BandwidthProfile::Walk { lo: 0.0, hi: 1.0, seed: 1 };
        let distinct: std::collections::BTreeSet<u64> =
            (0..50).map(|t| p.at(t).to_bits()).collect();
        assert!(distinct.len() > 10);
    }

    #[test]
    fn link_connects_and_down_means_zero() {
        let mut l =
            Link::new("laptop", "sensor", LinkKind::Wired, BandwidthProfile::Constant(500.0), 1);
        assert!(l.connects("sensor", "laptop"));
        assert!(!l.connects("laptop", "pda"));
        assert!(l.touches("laptop"));
        assert_eq!(l.bandwidth_at(5), 500.0);
        l.up = false;
        assert_eq!(l.bandwidth_at(5), 0.0);
    }
}
