//! Lexer for the Darwin-style ADL.

use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// `component`
    Component,
    /// `provide`
    Provide,
    /// `require`
    Require,
    /// `inst`
    Inst,
    /// `bind`
    Bind,
    /// `when`
    When,
    /// An identifier (letters, digits, `_`; must start with a letter or `_`).
    Ident(String),
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `;`
    Semi,
    /// `:`
    Colon,
    /// `.`
    Dot,
    /// `,`
    Comma,
    /// `--` (a binding arrow: requirement -- provision)
    Arrow,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Component => write!(f, "component"),
            Tok::Provide => write!(f, "provide"),
            Tok::Require => write!(f, "require"),
            Tok::Inst => write!(f, "inst"),
            Tok::Bind => write!(f, "bind"),
            Tok::When => write!(f, "when"),
            Tok::Ident(s) => write!(f, "{s}"),
            Tok::LBrace => write!(f, "{{"),
            Tok::RBrace => write!(f, "}}"),
            Tok::Semi => write!(f, ";"),
            Tok::Colon => write!(f, ":"),
            Tok::Dot => write!(f, "."),
            Tok::Comma => write!(f, ","),
            Tok::Arrow => write!(f, "--"),
        }
    }
}

/// A token with its source line (1-based) for diagnostics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Spanned {
    /// The token.
    pub tok: Tok,
    /// 1-based source line.
    pub line: u32,
}

/// A lexing error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// The offending character.
    pub ch: char,
    /// 1-based source line.
    pub line: u32,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unexpected character {:?} on line {}", self.ch, self.line)
    }
}

impl std::error::Error for LexError {}

/// Tokenise a source string. `//` comments run to end of line.
///
/// # Errors
/// [`LexError`] on any character outside the language.
pub fn lex(src: &str) -> Result<Vec<Spanned>, LexError> {
    let mut out = Vec::new();
    let mut line: u32 = 1;
    let mut chars = src.chars().peekable();
    while let Some(&c) = chars.peek() {
        match c {
            '\n' => {
                line += 1;
                chars.next();
            }
            c if c.is_whitespace() => {
                chars.next();
            }
            '/' => {
                chars.next();
                if chars.peek() == Some(&'/') {
                    for c2 in chars.by_ref() {
                        if c2 == '\n' {
                            line += 1;
                            break;
                        }
                    }
                } else {
                    return Err(LexError { ch: '/', line });
                }
            }
            '-' => {
                chars.next();
                if chars.peek() == Some(&'-') {
                    chars.next();
                    out.push(Spanned { tok: Tok::Arrow, line });
                } else {
                    return Err(LexError { ch: '-', line });
                }
            }
            '{' => {
                chars.next();
                out.push(Spanned { tok: Tok::LBrace, line });
            }
            '}' => {
                chars.next();
                out.push(Spanned { tok: Tok::RBrace, line });
            }
            ';' => {
                chars.next();
                out.push(Spanned { tok: Tok::Semi, line });
            }
            ':' => {
                chars.next();
                out.push(Spanned { tok: Tok::Colon, line });
            }
            '.' => {
                chars.next();
                out.push(Spanned { tok: Tok::Dot, line });
            }
            ',' => {
                chars.next();
                out.push(Spanned { tok: Tok::Comma, line });
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut s = String::new();
                while let Some(&c2) = chars.peek() {
                    if c2.is_ascii_alphanumeric() || c2 == '_' {
                        s.push(c2);
                        chars.next();
                    } else {
                        break;
                    }
                }
                let tok = match s.as_str() {
                    "component" => Tok::Component,
                    "provide" => Tok::Provide,
                    "require" => Tok::Require,
                    "inst" => Tok::Inst,
                    "bind" => Tok::Bind,
                    "when" => Tok::When,
                    _ => Tok::Ident(s),
                };
                out.push(Spanned { tok, line });
            }
            other => return Err(LexError { ch: other, line }),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_keywords_idents_and_symbols() {
        let toks = lex("component A { provide p; require q; }").unwrap();
        let kinds: Vec<Tok> = toks.into_iter().map(|s| s.tok).collect();
        assert_eq!(
            kinds,
            vec![
                Tok::Component,
                Tok::Ident("A".into()),
                Tok::LBrace,
                Tok::Provide,
                Tok::Ident("p".into()),
                Tok::Semi,
                Tok::Require,
                Tok::Ident("q".into()),
                Tok::Semi,
                Tok::RBrace,
            ]
        );
    }

    #[test]
    fn lexes_binding_arrow_and_dotted_refs() {
        let toks = lex("bind a.x -- b.y;").unwrap();
        assert!(toks.iter().any(|s| s.tok == Tok::Arrow));
        assert_eq!(toks.iter().filter(|s| s.tok == Tok::Dot).count(), 2);
    }

    #[test]
    fn comments_and_lines_tracked() {
        let toks = lex("// header\ncomponent A {\n}\n").unwrap();
        assert_eq!(toks[0].line, 2);
        assert_eq!(toks.last().unwrap().line, 3);
    }

    #[test]
    fn single_dash_is_an_error() {
        let err = lex("a - b").unwrap_err();
        assert_eq!(err.ch, '-');
        assert_eq!(err.line, 1);
    }

    #[test]
    fn bad_character_reports_line() {
        let err = lex("component A {\n  $bad\n}").unwrap_err();
        assert_eq!(err.ch, '$');
        assert_eq!(err.line, 2);
    }

    #[test]
    fn empty_source_lexes_to_nothing() {
        assert!(lex("").unwrap().is_empty());
        assert!(lex("   \n\t ").unwrap().is_empty());
    }
}
