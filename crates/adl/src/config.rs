//! Flattening a composite component into a concrete configuration.
//!
//! A [`Configuration`] is what actually runs: a set of named instances and a
//! set of bindings. Flattening selects the unconditional declarations plus
//! every `when` block whose mode is active — Figure 5's "docked session" is
//! `flatten(doc, "MobileCBMS", ["docked"])`, the wireless session the same
//! with `["wireless"]`.

use crate::ast::{Binding, Decl, Document};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A concrete, runnable configuration.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Configuration {
    /// Instance name → component type name.
    pub instances: BTreeMap<String, String>,
    /// Active bindings.
    pub bindings: BTreeSet<Binding>,
}

/// Errors flattening can raise.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlattenError {
    /// The named composite does not exist.
    UnknownComponent(String),
    /// An active mode is not declared by any `when` block.
    UnknownMode(String),
}

impl fmt::Display for FlattenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlattenError::UnknownComponent(n) => write!(f, "unknown component `{n}`"),
            FlattenError::UnknownMode(m) => write!(f, "unknown mode `{m}`"),
        }
    }
}

impl std::error::Error for FlattenError {}

fn collect(decls: &[Decl], active: &[&str], cfg: &mut Configuration) {
    for d in decls {
        match d {
            Decl::Inst(insts) => {
                for i in insts {
                    cfg.instances.insert(i.name.clone(), i.ty.clone());
                }
            }
            Decl::Bind(binds) => {
                for b in binds {
                    cfg.bindings.insert(b.clone());
                }
            }
            Decl::When { mode, body } => {
                if active.contains(&mode.as_str()) {
                    collect(body, active, cfg);
                }
            }
            Decl::Provide(_) | Decl::Require(_) => {}
        }
    }
}

/// Flatten `component` under the given active modes.
///
/// # Errors
/// [`FlattenError::UnknownComponent`] or [`FlattenError::UnknownMode`].
pub fn flatten(
    doc: &Document,
    component: &str,
    active_modes: &[&str],
) -> Result<Configuration, FlattenError> {
    let comp = doc
        .component(component)
        .ok_or_else(|| FlattenError::UnknownComponent(component.to_owned()))?;
    let declared = comp.modes();
    for m in active_modes {
        if !declared.contains(m) {
            return Err(FlattenError::UnknownMode((*m).to_owned()));
        }
    }
    let mut cfg = Configuration::default();
    collect(&comp.body, active_modes, &mut cfg);
    Ok(cfg)
}

impl Configuration {
    /// Requirements of instances in this configuration that no binding
    /// satisfies. A complete (runnable) configuration returns an empty list.
    /// The composite's own ports are considered satisfied externally.
    #[must_use]
    pub fn unbound_requirements(&self, doc: &Document) -> Vec<(String, String)> {
        let mut missing = Vec::new();
        for (inst, ty_name) in &self.instances {
            let Some(ty) = doc.component(ty_name) else { continue };
            for req in ty.requires() {
                let satisfied = self.bindings.iter().any(|b| {
                    b.from.instance.as_deref() == Some(inst.as_str()) && b.from.port == req
                });
                if !satisfied {
                    missing.push((inst.clone(), req.to_owned()));
                }
            }
        }
        missing
    }

    /// Whether every instance requirement is bound.
    #[must_use]
    pub fn is_complete(&self, doc: &Document) -> bool {
        self.unbound_requirements(doc).is_empty()
    }

    /// Number of instances.
    #[must_use]
    pub fn len(&self) -> usize {
        self.instances.len()
    }

    /// Whether the configuration has no instances.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.instances.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;

    const SRC: &str = r"
        component Opt  { provide plan; require net; }
        component WOpt { provide plan; require net; }
        component Eth  { provide link; }
        component Wifi { provide link; }
        component SM   { provide session; require plan; }
        component Mobile {
            provide query;
            inst sm : SM;
            bind query -- sm.session;
            when docked {
                inst opt : Opt; eth : Eth;
                bind sm.plan -- opt.plan; opt.net -- eth.link;
            }
            when wireless {
                inst wopt : WOpt; wifi : Wifi;
                bind sm.plan -- wopt.plan; wopt.net -- wifi.link;
            }
        }
    ";

    #[test]
    fn base_flatten_contains_only_unconditional_parts() {
        let doc = parse(SRC).unwrap();
        let cfg = flatten(&doc, "Mobile", &[]).unwrap();
        assert_eq!(cfg.len(), 1);
        assert!(cfg.instances.contains_key("sm"));
        assert_eq!(cfg.bindings.len(), 1);
    }

    #[test]
    fn docked_mode_adds_its_delta() {
        let doc = parse(SRC).unwrap();
        let cfg = flatten(&doc, "Mobile", &["docked"]).unwrap();
        assert_eq!(cfg.len(), 3);
        assert!(cfg.instances.contains_key("opt"));
        assert!(cfg.instances.contains_key("eth"));
        assert!(!cfg.instances.contains_key("wifi"));
        assert_eq!(cfg.bindings.len(), 3);
    }

    #[test]
    fn completeness_is_mode_dependent() {
        let doc = parse(SRC).unwrap();
        let base = flatten(&doc, "Mobile", &[]).unwrap();
        // sm.plan unbound in the base configuration.
        assert!(!base.is_complete(&doc));
        assert_eq!(base.unbound_requirements(&doc), vec![("sm".into(), "plan".into())]);
        let docked = flatten(&doc, "Mobile", &["docked"]).unwrap();
        assert!(docked.is_complete(&doc));
        let wireless = flatten(&doc, "Mobile", &["wireless"]).unwrap();
        assert!(wireless.is_complete(&doc));
    }

    #[test]
    fn unknown_component_and_mode_errors() {
        let doc = parse(SRC).unwrap();
        assert_eq!(flatten(&doc, "Nope", &[]), Err(FlattenError::UnknownComponent("Nope".into())));
        assert_eq!(
            flatten(&doc, "Mobile", &["flying"]),
            Err(FlattenError::UnknownMode("flying".into()))
        );
    }

    #[test]
    fn both_modes_active_union() {
        let doc = parse(SRC).unwrap();
        let cfg = flatten(&doc, "Mobile", &["docked", "wireless"]).unwrap();
        assert_eq!(cfg.len(), 5);
        assert_eq!(
            cfg.bindings.len(),
            5,
            "sm.plan bound twice collapses in the set? No: targets differ"
        );
    }
}
