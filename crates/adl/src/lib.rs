//! # adl — a Darwin-style architecture description language
//!
//! The paper describes component configurations "using the graphic form of
//! the Darwin configuration language" (Magee, Dulay, Eisenbach & Kramer):
//! components expose *provided* services (filled circles) and *required*
//! services (empty circles); composite components instantiate
//! sub-components and bind requirements to provisions; and — crucially for
//! adaptation — alternative configurations can be guarded so the system can
//! switch between them at run time (Figure 5's docked ↔ wireless sessions).
//!
//! This crate implements the textual form of such a language:
//!
//! * [`token`] / [`mod@parse`] — lexer and recursive-descent parser;
//! * [`ast`] — component types, ports, instances, bindings, `when` guards;
//! * [`analysis`] — semantic checks (unknown types/ports, direction errors,
//!   unbound requirements, duplicates);
//! * [`config`] — flattening a composite + a set of active modes into a
//!   concrete [`config::Configuration`];
//! * [`hierarchy`] — deep flattening of composites-of-composites
//!   ("components that in turn are composed of sub-components") with
//!   delegation resolution through composite borders;
//! * [`mod@diff`] — computing the **reconfiguration plan** between two
//!   configurations (which instances to stop/start, which bindings to
//!   unbind/rebind) — what the Adaptivity Manager executes transactionally;
//! * [`figures`] — the paper's Figure 4 and Figure 5 architectures as
//!   checked, parseable sources;
//! * [`dot`] — Graphviz export using Darwin's filled/empty circle notation.
//!
//! The paper's open issue — "current ADLs ... reconfigure far too slowly" —
//! is answered here by making diffing a pure, allocation-light set
//! computation benchmarked in `bench/benches/fig5_switchover.rs`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod ast;
pub mod config;
pub mod diff;
pub mod dot;
pub mod figures;
pub mod hierarchy;
pub mod parse;
pub mod printer;
pub mod token;

pub use analysis::{analyze, find_cycle, AnalysisError};
pub use ast::{Binding, ComponentDecl, Decl, Document, PortRef};
pub use config::{Configuration, FlattenError};
pub use diff::{diff, ReconfigurationPlan};
pub use hierarchy::{flatten_deep, HierarchyError};
pub use parse::{parse, ParseError};
