//! Abstract syntax for the Darwin-style ADL.
//!
//! A document is a set of component declarations. Primitive components only
//! declare ports; composite components also instantiate sub-components and
//! bind requirements to provisions. `when <mode>` blocks hold the
//! configuration deltas the paper's Figure 5 switches between (docked vs
//! wireless sessions).

/// A reference to a port: either a port of the enclosing composite
/// (`instance: None`) or a port on a named sub-instance (`inst.port`).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PortRef {
    /// The sub-instance name, or `None` for the composite's own port.
    pub instance: Option<String>,
    /// The port name.
    pub port: String,
}

impl PortRef {
    /// A port on the composite itself.
    #[must_use]
    pub fn own(port: &str) -> Self {
        Self { instance: None, port: port.to_owned() }
    }

    /// A port on a sub-instance.
    #[must_use]
    pub fn on(instance: &str, port: &str) -> Self {
        Self { instance: Some(instance.to_owned()), port: port.to_owned() }
    }
}

impl std::fmt::Display for PortRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.instance {
            Some(i) => write!(f, "{i}.{}", self.port),
            None => write!(f, "{}", self.port),
        }
    }
}

/// A binding: a required service wired to a provided service.
/// Darwin draws this as an empty circle connected to a filled circle.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Binding {
    /// The requiring end.
    pub from: PortRef,
    /// The providing end.
    pub to: PortRef,
}

/// An instance declaration: `name : Type;`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InstDecl {
    /// Instance name, unique within the composite.
    pub name: String,
    /// Component type name.
    pub ty: String,
}

/// One declaration inside a component body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Decl {
    /// `provide a, b;`
    Provide(Vec<String>),
    /// `require a, b;`
    Require(Vec<String>),
    /// `inst x : T; y : U;`
    Inst(Vec<InstDecl>),
    /// `bind a.x -- b.y; ...`
    Bind(Vec<Binding>),
    /// `when mode { ... }` — a guarded configuration delta.
    When {
        /// Mode name (e.g. `docked`, `wireless`).
        mode: String,
        /// Declarations active only in that mode.
        body: Vec<Decl>,
    },
}

/// A component declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ComponentDecl {
    /// Type name.
    pub name: String,
    /// Body declarations in source order.
    pub body: Vec<Decl>,
}

impl ComponentDecl {
    /// All provided port names (unconditional declarations only).
    #[must_use]
    pub fn provides(&self) -> Vec<&str> {
        self.body
            .iter()
            .filter_map(|d| match d {
                Decl::Provide(ps) => Some(ps.iter().map(String::as_str)),
                _ => None,
            })
            .flatten()
            .collect()
    }

    /// All required port names (unconditional declarations only).
    #[must_use]
    pub fn requires(&self) -> Vec<&str> {
        self.body
            .iter()
            .filter_map(|d| match d {
                Decl::Require(rs) => Some(rs.iter().map(String::as_str)),
                _ => None,
            })
            .flatten()
            .collect()
    }

    /// Whether the component has any `inst` declarations (i.e. is composite).
    #[must_use]
    pub fn is_composite(&self) -> bool {
        fn has_inst(decls: &[Decl]) -> bool {
            decls.iter().any(|d| match d {
                Decl::Inst(_) => true,
                Decl::When { body, .. } => has_inst(body),
                _ => false,
            })
        }
        has_inst(&self.body)
    }

    /// Mode names declared by `when` blocks, in source order, deduplicated.
    #[must_use]
    pub fn modes(&self) -> Vec<&str> {
        let mut out: Vec<&str> = Vec::new();
        for d in &self.body {
            if let Decl::When { mode, .. } = d {
                if !out.contains(&mode.as_str()) {
                    out.push(mode);
                }
            }
        }
        out
    }
}

/// A parsed document: all component declarations.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Document {
    /// Components in source order.
    pub components: Vec<ComponentDecl>,
}

impl Document {
    /// Find a component by name.
    #[must_use]
    pub fn component(&self, name: &str) -> Option<&ComponentDecl> {
        self.components.iter().find(|c| c.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ComponentDecl {
        ComponentDecl {
            name: "C".into(),
            body: vec![
                Decl::Provide(vec!["p".into()]),
                Decl::Require(vec!["q".into(), "r".into()]),
                Decl::When {
                    mode: "docked".into(),
                    body: vec![Decl::Inst(vec![InstDecl { name: "e".into(), ty: "Eth".into() }])],
                },
                Decl::When { mode: "wireless".into(), body: vec![] },
                Decl::When { mode: "docked".into(), body: vec![] },
            ],
        }
    }

    #[test]
    fn provides_and_requires_collect() {
        let c = sample();
        assert_eq!(c.provides(), vec!["p"]);
        assert_eq!(c.requires(), vec!["q", "r"]);
    }

    #[test]
    fn composite_detection_sees_inside_when() {
        let c = sample();
        assert!(c.is_composite());
        let prim = ComponentDecl { name: "P".into(), body: vec![Decl::Provide(vec!["x".into()])] };
        assert!(!prim.is_composite());
    }

    #[test]
    fn modes_dedupe_in_order() {
        assert_eq!(sample().modes(), vec!["docked", "wireless"]);
    }

    #[test]
    fn portref_display() {
        assert_eq!(PortRef::own("net").to_string(), "net");
        assert_eq!(PortRef::on("fs", "pages").to_string(), "fs.pages");
    }
}
