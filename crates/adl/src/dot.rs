//! Graphviz export in Darwin's graphical notation.
//!
//! Darwin draws a provided service as a **filled circle** and a required
//! service as an **empty circle**; components are rectangles. DOT cannot
//! draw port circles directly, so provisions render as `●name` and
//! requirements as `○name` in record labels, and bindings as edges from the
//! requiring record field to the providing one.

use crate::ast::Document;
use crate::config::Configuration;
use std::fmt::Write as _;

fn sanitize(s: &str) -> String {
    s.chars().map(|c| if c.is_ascii_alphanumeric() { c } else { '_' }).collect()
}

/// Render a flattened configuration as a DOT digraph.
#[must_use]
pub fn configuration_to_dot(name: &str, cfg: &Configuration, doc: &Document) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph {} {{", sanitize(name));
    out.push_str("    rankdir=LR;\n    node [shape=record];\n");
    for (inst, ty) in &cfg.instances {
        let (provides, requires) = doc
            .component(ty)
            .map(|c| {
                (
                    c.provides().iter().map(|p| format!("<{p}> \\u25CF {p}")).collect::<Vec<_>>(),
                    c.requires().iter().map(|r| format!("<{r}> \\u25CB {r}")).collect::<Vec<_>>(),
                )
            })
            .unwrap_or_default();
        let mut fields = vec![format!("{inst} : {ty}")];
        fields.extend(provides);
        fields.extend(requires);
        let _ = writeln!(out, "    {} [label=\"{}\"];", sanitize(inst), fields.join(" | "));
    }
    for b in &cfg.bindings {
        let from = match &b.from.instance {
            Some(i) => format!("{}:{}", sanitize(i), sanitize(&b.from.port)),
            None => format!("__self_{}", sanitize(&b.from.port)),
        };
        let to = match &b.to.instance {
            Some(i) => format!("{}:{}", sanitize(i), sanitize(&b.to.port)),
            None => format!("__self_{}", sanitize(&b.to.port)),
        };
        // Composite's own ports appear as plain ellipse nodes.
        for (r, n) in [(&b.from, &from), (&b.to, &to)] {
            if r.instance.is_none() {
                let _ = writeln!(out, "    {n} [shape=ellipse, label=\"{}\"];", sanitize(&r.port));
            }
        }
        let _ = writeln!(out, "    {from} -> {to};");
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::flatten;
    use crate::parse::parse;

    #[test]
    fn dot_contains_instances_and_edges() {
        let doc = parse(
            "component T { provide p; }
             component U { require q; }
             component C { inst t : T; u : U; bind u.q -- t.p; }",
        )
        .unwrap();
        let cfg = flatten(&doc, "C", &[]).unwrap();
        let dot = configuration_to_dot("C", &cfg, &doc);
        assert!(dot.starts_with("digraph C {"));
        assert!(dot.contains("t ["));
        assert!(dot.contains("u ["));
        assert!(dot.contains("u:q -> t:p;"));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn own_ports_become_ellipse_nodes() {
        let doc = parse(
            "component T { provide p; }
             component C { provide svc; inst t : T; bind svc -- t.p; }",
        )
        .unwrap();
        let cfg = flatten(&doc, "C", &[]).unwrap();
        let dot = configuration_to_dot("C", &cfg, &doc);
        assert!(dot.contains("__self_svc [shape=ellipse"));
        assert!(dot.contains("__self_svc -> t:p;"));
    }

    #[test]
    fn names_are_sanitized() {
        assert_eq!(sanitize("a-b.c"), "a_b_c");
    }
}
