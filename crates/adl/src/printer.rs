//! Pretty-printer: render an AST back to parseable source.
//!
//! `parse(print(doc)) == doc` is a property test in `tests/adl_props.rs` —
//! the fixpoint that guarantees the printer and parser agree on the
//! language.

use crate::ast::{Binding, ComponentDecl, Decl, Document};
use std::fmt::Write as _;

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("    ");
    }
}

fn print_binding(out: &mut String, b: &Binding) {
    let _ = write!(out, "{} -- {};", b.from, b.to);
}

fn print_decl(out: &mut String, d: &Decl, depth: usize) {
    match d {
        Decl::Provide(ps) => {
            indent(out, depth);
            let _ = writeln!(out, "provide {};", ps.join(", "));
        }
        Decl::Require(rs) => {
            indent(out, depth);
            let _ = writeln!(out, "require {};", rs.join(", "));
        }
        Decl::Inst(insts) => {
            indent(out, depth);
            out.push_str("inst ");
            for (i, inst) in insts.iter().enumerate() {
                if i > 0 {
                    out.push('\n');
                    indent(out, depth + 1);
                }
                let _ = write!(out, "{} : {};", inst.name, inst.ty);
            }
            out.push('\n');
        }
        Decl::Bind(binds) => {
            indent(out, depth);
            out.push_str("bind ");
            for (i, b) in binds.iter().enumerate() {
                if i > 0 {
                    out.push('\n');
                    indent(out, depth + 1);
                }
                print_binding(out, b);
            }
            out.push('\n');
        }
        Decl::When { mode, body } => {
            indent(out, depth);
            let _ = writeln!(out, "when {mode} {{");
            for inner in body {
                print_decl(out, inner, depth + 1);
            }
            indent(out, depth);
            out.push_str("}\n");
        }
    }
}

/// Render one component declaration.
#[must_use]
pub fn print_component(c: &ComponentDecl) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "component {} {{", c.name);
    for d in &c.body {
        print_decl(&mut out, d, 1);
    }
    out.push_str("}\n");
    out
}

/// Render a whole document.
#[must_use]
pub fn print_document(doc: &Document) -> String {
    let mut out = String::new();
    for (i, c) in doc.components.iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        out.push_str(&print_component(c));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;

    const SRC: &str = r"
        component SM { provide session; require plan, monitors; }
        component Mobile {
            provide query;
            inst sm : SM;
            bind query -- sm.session;
            when docked { inst e : SM; bind e.plan -- sm.session; }
        }
    ";

    #[test]
    fn print_parse_fixpoint_on_sample() {
        let doc = parse(SRC).unwrap();
        let printed = print_document(&doc);
        let reparsed = parse(&printed).unwrap_or_else(|e| panic!("reparse failed: {e}\n{printed}"));
        assert_eq!(reparsed, doc);
    }

    #[test]
    fn printed_source_is_indented() {
        let doc = parse(SRC).unwrap();
        let printed = print_document(&doc);
        assert!(printed.contains("    provide"));
        assert!(printed.contains("when docked {"));
    }
}
