//! Reconfiguration diffing — the computational core of Figure 5.
//!
//! When the Laptop is undocked, the Session Manager asks for the wireless
//! configuration; the Adaptivity Manager must know *exactly* which bindings
//! to break, which components to retire, which to instantiate, and which
//! bindings to establish. [`diff`] computes that plan as a pure set
//! difference, ordered so it can be executed safely:
//!
//! 1. **unbind** bindings absent from the target (never leave a binding to a
//!    component about to stop);
//! 2. **stop** instances absent from the target;
//! 3. **start** instances new in the target;
//! 4. **bind** bindings new in the target (their endpoints now all exist).

use crate::ast::Binding;
use crate::config::Configuration;

/// An executable reconfiguration plan. Steps must be applied in field order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReconfigurationPlan {
    /// Bindings to remove, first.
    pub unbind: Vec<Binding>,
    /// Instances to stop (name, type), after unbinding.
    pub stop: Vec<(String, String)>,
    /// Instances to start (name, type), before binding.
    pub start: Vec<(String, String)>,
    /// Bindings to establish, last.
    pub bind: Vec<Binding>,
}

impl ReconfigurationPlan {
    /// Whether the plan changes anything.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.unbind.is_empty()
            && self.stop.is_empty()
            && self.start.is_empty()
            && self.bind.is_empty()
    }

    /// Total number of steps.
    #[must_use]
    pub fn len(&self) -> usize {
        self.unbind.len() + self.stop.len() + self.start.len() + self.bind.len()
    }

    /// Apply the plan to a configuration (used for verification and by the
    /// component runtime's transactional switch).
    #[must_use]
    pub fn apply(&self, from: &Configuration) -> Configuration {
        let mut cfg = from.clone();
        for b in &self.unbind {
            cfg.bindings.remove(b);
        }
        for (name, _) in &self.stop {
            cfg.instances.remove(name);
        }
        for (name, ty) in &self.start {
            cfg.instances.insert(name.clone(), ty.clone());
        }
        for b in &self.bind {
            cfg.bindings.insert(b.clone());
        }
        cfg
    }

    /// The inverse plan — what the Adaptivity Manager executes to *back off*
    /// a failed switch ("the switch can be backed off if something goes
    /// wrong").
    #[must_use]
    pub fn inverse(&self) -> ReconfigurationPlan {
        ReconfigurationPlan {
            unbind: self.bind.clone(),
            stop: self.start.clone(),
            start: self.stop.clone(),
            bind: self.unbind.clone(),
        }
    }
}

/// Compute the plan that transforms `from` into `to`.
#[must_use]
pub fn diff(from: &Configuration, to: &Configuration) -> ReconfigurationPlan {
    let unbind: Vec<Binding> =
        from.bindings.iter().filter(|b| !to.bindings.contains(*b)).cloned().collect();
    let bind: Vec<Binding> =
        to.bindings.iter().filter(|b| !from.bindings.contains(*b)).cloned().collect();
    let stop: Vec<(String, String)> = from
        .instances
        .iter()
        .filter(|(n, t)| to.instances.get(*n) != Some(t))
        .map(|(n, t)| (n.clone(), t.clone()))
        .collect();
    let start: Vec<(String, String)> = to
        .instances
        .iter()
        .filter(|(n, t)| from.instances.get(*n) != Some(t))
        .map(|(n, t)| (n.clone(), t.clone()))
        .collect();
    ReconfigurationPlan { unbind, stop, start, bind }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::flatten;
    use crate::parse::parse;

    const SRC: &str = r"
        component Opt  { provide plan; require net; }
        component WOpt { provide plan; require net; }
        component Eth  { provide link; }
        component Wifi { provide link; }
        component SM   { provide session; require plan; }
        component Mobile {
            provide query;
            inst sm : SM;
            bind query -- sm.session;
            when docked {
                inst opt : Opt; eth : Eth;
                bind sm.plan -- opt.plan; opt.net -- eth.link;
            }
            when wireless {
                inst wopt : WOpt; wifi : Wifi;
                bind sm.plan -- wopt.plan; wopt.net -- wifi.link;
            }
        }
    ";

    #[test]
    fn docked_to_wireless_switchover_plan() {
        let doc = parse(SRC).unwrap();
        let docked = flatten(&doc, "Mobile", &["docked"]).unwrap();
        let wireless = flatten(&doc, "Mobile", &["wireless"]).unwrap();
        let plan = diff(&docked, &wireless);
        // Figure 5: swap the optimiser and the driver; the session manager
        // and the query delegation survive.
        assert_eq!(plan.stop.len(), 2);
        assert_eq!(plan.start.len(), 2);
        assert_eq!(plan.unbind.len(), 2);
        assert_eq!(plan.bind.len(), 2);
        assert!(plan.stop.iter().any(|(n, _)| n == "opt"));
        assert!(plan.start.iter().any(|(n, _)| n == "wopt"));
    }

    #[test]
    fn apply_reaches_the_target() {
        let doc = parse(SRC).unwrap();
        let a = flatten(&doc, "Mobile", &["docked"]).unwrap();
        let b = flatten(&doc, "Mobile", &["wireless"]).unwrap();
        assert_eq!(diff(&a, &b).apply(&a), b);
        assert_eq!(diff(&b, &a).apply(&b), a);
    }

    #[test]
    fn identical_configurations_diff_to_nothing() {
        let doc = parse(SRC).unwrap();
        let a = flatten(&doc, "Mobile", &["docked"]).unwrap();
        let plan = diff(&a, &a);
        assert!(plan.is_empty());
        assert_eq!(plan.len(), 0);
    }

    #[test]
    fn inverse_undoes_the_plan() {
        let doc = parse(SRC).unwrap();
        let a = flatten(&doc, "Mobile", &["docked"]).unwrap();
        let b = flatten(&doc, "Mobile", &["wireless"]).unwrap();
        let plan = diff(&a, &b);
        assert_eq!(plan.inverse().apply(&plan.apply(&a)), a);
    }

    #[test]
    fn retyped_instance_is_stop_plus_start() {
        let mut a = Configuration::default();
        a.instances.insert("x".into(), "T".into());
        let mut b = Configuration::default();
        b.instances.insert("x".into(), "U".into());
        let plan = diff(&a, &b);
        assert_eq!(plan.stop, vec![("x".into(), "T".into())]);
        assert_eq!(plan.start, vec![("x".into(), "U".into())]);
    }
}
