//! Hierarchical flattening: composites of composites.
//!
//! > "Sophisticated adaptive systems can be composed of components that in
//! > turn are composed of sub-components."
//!
//! [`flatten_deep`] expands a composite all the way to primitive
//! components: sub-instances get dot-qualified names (`store.cache`),
//! internal bindings are re-qualified, and **delegation** bindings are
//! resolved through composite boundaries — a composite's own *provide* port
//! stands for the inner provider it is bound to, and its own *require* port
//! stands for the inner requirers bound to it. Darwin's graphical notation
//! draws these as circles on the composite's border; here they dissolve, so
//! the runtime sees only primitive components, "down to the metal".
//!
//! Mode (`when`) selection applies at the top level only: a session mode is
//! a property of the session's composite, not of library sub-composites
//! (which expand their unconditional configuration).

use crate::ast::{Binding, Document, PortRef};
use crate::config::{flatten, Configuration, FlattenError};
use std::collections::BTreeMap;
use std::fmt;

/// Errors specific to deep flattening.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HierarchyError {
    /// Plain flattening failed.
    Flatten(FlattenError),
    /// Composite nesting exceeded the depth limit (recursive composites).
    TooDeep {
        /// The composite that exceeded the limit.
        component: String,
    },
    /// A binding reached a composite port that no inner binding delegates.
    UnresolvedDelegation {
        /// The composite type.
        component: String,
        /// The port nothing delegates.
        port: String,
    },
    /// A binding references an instance the configuration does not declare
    /// (the document was not run through [`crate::analysis::analyze`]).
    UnknownInstance(String),
}

impl fmt::Display for HierarchyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HierarchyError::Flatten(e) => write!(f, "{e}"),
            HierarchyError::TooDeep { component } => {
                write!(f, "composite nesting too deep at `{component}` (recursive?)")
            }
            HierarchyError::UnresolvedDelegation { component, port } => {
                write!(f, "port `{port}` of composite `{component}` delegates to nothing")
            }
            HierarchyError::UnknownInstance(i) => {
                write!(f, "binding references undeclared instance `{i}`")
            }
        }
    }
}

impl std::error::Error for HierarchyError {}

impl From<FlattenError> for HierarchyError {
    fn from(e: FlattenError) -> Self {
        HierarchyError::Flatten(e)
    }
}

const MAX_DEPTH: u32 = 32;

/// A fully expanded composite: leaf instances, internal bindings, and the
/// delegation maps of its border ports.
#[derive(Debug, Clone, Default)]
struct Expanded {
    instances: BTreeMap<String, String>,
    bindings: Vec<Binding>,
    /// own provide port → inner provider endpoints (usually exactly one).
    provide_map: BTreeMap<String, Vec<PortRef>>,
    /// own require port → inner requirer endpoints (possibly several).
    require_map: BTreeMap<String, Vec<PortRef>>,
}

fn qualify(prefix: &str, name: &str) -> String {
    if prefix.is_empty() {
        name.to_owned()
    } else {
        format!("{prefix}.{name}")
    }
}

/// Resolve an endpoint to its primitive endpoints, through composite
/// borders if needed. `provider` selects which delegation map applies.
fn resolve(
    endpoint: &PortRef,
    prefix: &str,
    cfg: &Configuration,
    subs: &BTreeMap<String, Expanded>,
    provider: bool,
) -> Result<Vec<PortRef>, HierarchyError> {
    let inst = endpoint.instance.as_ref().expect("own ports handled by caller");
    let ty =
        cfg.instances.get(inst).ok_or_else(|| HierarchyError::UnknownInstance(inst.clone()))?;
    if let Some(sub) = subs.get(inst) {
        let map = if provider { &sub.provide_map } else { &sub.require_map };
        map.get(&endpoint.port).cloned().ok_or_else(|| HierarchyError::UnresolvedDelegation {
            component: ty.clone(),
            port: endpoint.port.clone(),
        })
    } else {
        Ok(vec![PortRef::on(&qualify(prefix, inst), &endpoint.port)])
    }
}

fn expand(
    doc: &Document,
    component: &str,
    prefix: &str,
    modes: &[&str],
    depth: u32,
) -> Result<Expanded, HierarchyError> {
    if depth > MAX_DEPTH {
        return Err(HierarchyError::TooDeep { component: component.to_owned() });
    }
    let cfg = flatten(doc, component, modes)?;
    let mut out = Expanded::default();
    let mut subs: BTreeMap<String, Expanded> = BTreeMap::new();
    for (inst, ty) in &cfg.instances {
        let qi = qualify(prefix, inst);
        let is_composite = doc.component(ty).is_some_and(super::ast::ComponentDecl::is_composite);
        if is_composite {
            let sub = expand(doc, ty, &qi, &[], depth + 1)?;
            out.instances.extend(sub.instances.clone());
            out.bindings.extend(sub.bindings.clone());
            subs.insert(inst.clone(), sub);
        } else {
            out.instances.insert(qi, ty.clone());
        }
    }
    for b in &cfg.bindings {
        match (&b.from.instance, &b.to.instance) {
            // Internal binding: requirement end → provision end.
            (Some(_), Some(_)) => {
                let reqs = resolve(&b.from, prefix, &cfg, &subs, false)?;
                let provs = resolve(&b.to, prefix, &cfg, &subs, true)?;
                for r in &reqs {
                    for p in &provs {
                        out.bindings.push(Binding { from: r.clone(), to: p.clone() });
                    }
                }
            }
            // `ownProvide -- inner.p`: the composite's provide port
            // delegates to an inner provider.
            (None, Some(_)) => {
                let provs = resolve(&b.to, prefix, &cfg, &subs, true)?;
                out.provide_map.entry(b.from.port.clone()).or_default().extend(provs);
            }
            // `inner.q -- ownRequire`: an inner requirement delegates out.
            (Some(_), None) => {
                let reqs = resolve(&b.from, prefix, &cfg, &subs, false)?;
                out.require_map.entry(b.to.port.clone()).or_default().extend(reqs);
            }
            // `ownProvide -- ownRequire`: a pass-through composite.
            (None, None) => {
                out.provide_map
                    .entry(b.from.port.clone())
                    .or_default()
                    .push(PortRef::own(&b.to.port));
            }
        }
    }
    Ok(out)
}

/// Flatten `component` to primitive instances, expanding nested composites.
/// Delegation bindings at the *top* level (to the session's own ports)
/// survive as own-port bindings against the resolved inner endpoints.
///
/// # Errors
/// [`HierarchyError`] on unknown components/modes, unresolved delegations,
/// or excessive (recursive) nesting.
pub fn flatten_deep(
    doc: &Document,
    component: &str,
    active_modes: &[&str],
) -> Result<Configuration, HierarchyError> {
    let exp = expand(doc, component, "", active_modes, 0)?;
    let mut cfg = Configuration {
        instances: exp.instances,
        bindings: exp.bindings.iter().cloned().collect(),
    };
    // Surface the top composite's own delegations as own-port bindings so
    // the session can still see its external interface.
    for (port, provs) in &exp.provide_map {
        for p in provs {
            cfg.bindings.insert(Binding { from: PortRef::own(port), to: p.clone() });
        }
    }
    for (port, reqs) in &exp.require_map {
        for r in reqs {
            cfg.bindings.insert(Binding { from: r.clone(), to: PortRef::own(port) });
        }
    }
    Ok(cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;

    /// A two-level system: `Store` is a composite of cache + disk driver;
    /// `System` instantiates it next to a client.
    const SRC: &str = r"
        component Cache   { provide pages; require backing; }
        component DiskDrv { provide blocks; }
        component Client  { require pages; }
        component Store {
            provide pages;
            inst c : Cache; d : DiskDrv;
            bind pages -- c.pages;
                 c.backing -- d.blocks;
        }
        component System {
            inst s : Store; app : Client;
            bind app.pages -- s.pages;
        }
    ";

    #[test]
    fn two_levels_flatten_to_primitives() {
        let doc = parse(SRC).unwrap();
        let cfg = flatten_deep(&doc, "System", &[]).unwrap();
        let names: Vec<&str> = cfg.instances.keys().map(String::as_str).collect();
        assert_eq!(names, vec!["app", "s.c", "s.d"]);
        assert_eq!(cfg.instances["s.c"], "Cache");
        // app.pages is rewired straight to the inner cache provider.
        assert!(cfg.bindings.contains(&Binding {
            from: PortRef::on("app", "pages"),
            to: PortRef::on("s.c", "pages"),
        }));
        // The cache's backing requirement stays internal but qualified.
        assert!(cfg.bindings.contains(&Binding {
            from: PortRef::on("s.c", "backing"),
            to: PortRef::on("s.d", "blocks"),
        }));
        assert_eq!(cfg.bindings.len(), 2);
    }

    #[test]
    fn three_levels_qualify_transitively() {
        let doc = parse(&format!(
            "{SRC}
             component Outer {{
                 inst sys : System;
                 inst extra : Client;
                 bind extra.pages -- sys2port;
                 require sys2port;
             }}"
        ))
        .unwrap();
        // Outer has no usable delegation to System (System provides no
        // ports), so bind extra's requirement to Outer's own require.
        let cfg = flatten_deep(&doc, "Outer", &[]).unwrap();
        let names: Vec<&str> = cfg.instances.keys().map(String::as_str).collect();
        assert_eq!(names, vec!["extra", "sys.app", "sys.s.c", "sys.s.d"]);
        assert!(cfg.bindings.contains(&Binding {
            from: PortRef::on("sys.app", "pages"),
            to: PortRef::on("sys.s.c", "pages"),
        }));
    }

    #[test]
    fn require_delegation_resolves_outward() {
        let src = r"
            component Worker { require net; }
            component Pool {
                require uplink;
                inst w1 : Worker; w2 : Worker;
                bind w1.net -- uplink;
                     w2.net -- uplink;
            }
            component Nic { provide link; }
            component Sys {
                inst p : Pool; n : Nic;
                bind p.uplink -- n.link;
            }
        ";
        let doc = parse(src).unwrap();
        let cfg = flatten_deep(&doc, "Sys", &[]).unwrap();
        // Both inner workers end up bound to the NIC directly.
        for w in ["p.w1", "p.w2"] {
            assert!(
                cfg.bindings.contains(&Binding {
                    from: PortRef::on(w, "net"),
                    to: PortRef::on("n", "link"),
                }),
                "{w} not wired: {:?}",
                cfg.bindings
            );
        }
    }

    #[test]
    fn unresolved_delegation_is_an_error() {
        let src = r"
            component Inner { provide p; }
            component Box { provide svc; inst i : Inner; }
            component User { require svc; }
            component Sys { inst b : Box; u : User; bind u.svc -- b.svc; }
        ";
        // Box declares `provide svc` but never binds it to an inner
        // provider — the delegation dangles.
        let doc = parse(src).unwrap();
        let err = flatten_deep(&doc, "Sys", &[]).unwrap_err();
        assert!(matches!(
            err,
            HierarchyError::UnresolvedDelegation { ref component, ref port }
                if component == "Box" && port == "svc"
        ));
    }

    #[test]
    fn recursive_composites_are_caught() {
        let src = r"
            component A { inst b : B; }
            component B { inst a : A; }
            component Sys { inst root : A; }
        ";
        let doc = parse(src).unwrap();
        assert!(matches!(flatten_deep(&doc, "Sys", &[]), Err(HierarchyError::TooDeep { .. })));
    }

    #[test]
    fn modes_apply_at_the_top_level_only() {
        let src = r"
            component Leaf { provide p; }
            component Lib {
                provide p;
                inst l : Leaf;
                bind p -- l.p;
                when turbo { inst extra : Leaf; }
            }
            component Sys {
                require out0;
                when fancy { inst lib : Lib; u : User; bind u.need -- lib.p; }
            }
            component User { require need; }
        ";
        let doc = parse(src).unwrap();
        let cfg = flatten_deep(&doc, "Sys", &["fancy"]).unwrap();
        // Lib's `turbo` mode is NOT expanded (library modes are inert).
        assert!(cfg.instances.contains_key("lib.l"));
        assert!(!cfg.instances.keys().any(|k| k.contains("extra")));
        // And the user reaches through the composite border.
        assert!(cfg
            .bindings
            .contains(&Binding { from: PortRef::on("u", "need"), to: PortRef::on("lib.l", "p") }));
    }

    #[test]
    fn deep_flatten_of_flat_composite_matches_shallow() {
        // A composite with no nested composites: flatten_deep must agree
        // with plain flatten (modulo own-port delegation bindings, which a
        // flat composite keeps identical).
        let doc = crate::figures::fig4_document();
        let deep = flatten_deep(&doc, "MobileCBMS", &["docked"]).unwrap();
        let shallow = flatten(&doc, "MobileCBMS", &["docked"]).unwrap();
        assert_eq!(deep.instances, shallow.instances);
        assert_eq!(deep.bindings, shallow.bindings);
    }
}
