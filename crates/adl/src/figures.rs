//! The paper's Figure 4 and Figure 5 as checked, parseable architectures.
//!
//! Figure 4 is "the configuration of the components composing the management
//! system *within* the Laptop" — a mobile component-based data management
//! system (CBMS) whose docked and wireless sessions differ in which
//! optimiser and network driver are active. Figure 5 shows the switchover
//! between the two sessions; here that is `diff(docked, wireless)`.
//!
//! The component inventory follows the paper's narrative: the wireless
//! session swaps in the wireless device driver and the wireless-aware
//! optimiser, which "decides to send a compressed version of the data", so
//! the decompressor is wireless-only; the session manager, adaptivity
//! manager, monitors and architecture model persist across sessions.

use crate::analysis::analyze;
use crate::ast::Document;
use crate::config::{flatten, Configuration};
use crate::diff::{diff, ReconfigurationPlan};
use crate::parse::parse;

/// The Figure 4 architecture, in the textual Darwin-style ADL.
pub const FIG4_SOURCE: &str = r"
// Figure 4: mobile component-based data management system (within the Laptop)
component QueryOptimiser     { provide plan; require stats, net; }
component WirelessOptimiser  { provide plan; require stats, net, bandwidth; }
component EthernetDriver     { provide link; }
component WirelessDriver     { provide link, bandwidth; }
component Monitors           { provide readings; }
component ArchitectureModel  { provide model; }
component StateManager       { provide state; }
component SessionManager     { provide session; require plan, readings; }
component AdaptivityManager  { provide adapt; require session, model, state; }
component StreamDecompressor { provide stream; require link; }

component MobileCBMS {
    provide query;
    inst sm   : SessionManager;
         am   : AdaptivityManager;
         mon  : Monitors;
         arch : ArchitectureModel;
         st   : StateManager;
    bind query       -- sm.session;
         sm.readings -- mon.readings;
         am.session  -- sm.session;
         am.model    -- arch.model;
         am.state    -- st.state;
    when docked {
        inst opt : QueryOptimiser;
             eth : EthernetDriver;
        bind sm.plan   -- opt.plan;
             opt.stats -- mon.readings;
             opt.net   -- eth.link;
    }
    when wireless {
        inst wopt : WirelessOptimiser;
             wifi : WirelessDriver;
             dec  : StreamDecompressor;
        bind sm.plan        -- wopt.plan;
             wopt.stats     -- mon.readings;
             wopt.net       -- wifi.link;
             wopt.bandwidth -- wifi.bandwidth;
             dec.link       -- wifi.link;
    }
}
";

/// Parse and analyse the Figure 4 document.
///
/// # Panics
/// Never: the constant source is covered by tests.
#[must_use]
pub fn fig4_document() -> Document {
    let doc = parse(FIG4_SOURCE).expect("Figure 4 source parses");
    analyze(&doc).expect("Figure 4 source analyses cleanly");
    doc
}

/// The docked session of Figure 5 (top).
///
/// # Panics
/// Never: covered by tests.
#[must_use]
pub fn docked_session(doc: &Document) -> Configuration {
    flatten(doc, "MobileCBMS", &["docked"]).expect("docked mode exists")
}

/// The wireless session of Figure 5 (bottom).
///
/// # Panics
/// Never: covered by tests.
#[must_use]
pub fn wireless_session(doc: &Document) -> Configuration {
    flatten(doc, "MobileCBMS", &["wireless"]).expect("wireless mode exists")
}

/// The Figure 5 switchover: the plan transforming the docked session into
/// the wireless session.
#[must_use]
pub fn fig5_switchover(doc: &Document) -> ReconfigurationPlan {
    diff(&docked_session(doc), &wireless_session(doc))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure4_parses_and_analyses() {
        let doc = fig4_document();
        assert_eq!(doc.components.len(), 11);
        assert!(doc.component("MobileCBMS").unwrap().is_composite());
    }

    #[test]
    fn both_sessions_are_complete() {
        let doc = fig4_document();
        assert!(docked_session(&doc).is_complete(&doc));
        assert!(wireless_session(&doc).is_complete(&doc));
    }

    #[test]
    fn base_configuration_is_deliberately_incomplete() {
        // Without a session mode there is no optimiser to serve sm.plan.
        let doc = fig4_document();
        let base = flatten(&doc, "MobileCBMS", &[]).unwrap();
        assert_eq!(base.unbound_requirements(&doc), vec![("sm".into(), "plan".into())]);
    }

    #[test]
    fn switchover_swaps_exactly_the_session_specific_parts() {
        let doc = fig4_document();
        let plan = fig5_switchover(&doc);
        let stopped: Vec<&str> = plan.stop.iter().map(|(n, _)| n.as_str()).collect();
        let started: Vec<&str> = plan.start.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(stopped, vec!["eth", "opt"]);
        assert_eq!(started, vec!["dec", "wifi", "wopt"]);
        // The five persistent components are untouched.
        for survivor in ["sm", "am", "mon", "arch", "st"] {
            assert!(!stopped.contains(&survivor));
            assert!(!started.contains(&survivor));
        }
        assert_eq!(plan.unbind.len(), 3);
        assert_eq!(plan.bind.len(), 5);
    }

    #[test]
    fn switchover_roundtrip_restores_docked() {
        let doc = fig4_document();
        let docked = docked_session(&doc);
        let plan = fig5_switchover(&doc);
        let wireless = plan.apply(&docked);
        assert_eq!(wireless, wireless_session(&doc));
        assert_eq!(plan.inverse().apply(&wireless), docked);
    }
}
