//! Recursive-descent parser for the Darwin-style ADL.
//!
//! Grammar:
//! ```text
//! document  := component*
//! component := "component" IDENT "{" decl* "}"
//! decl      := "provide" idlist ";"
//!            | "require" idlist ";"
//!            | "inst" (IDENT ":" IDENT ";")+
//!            | "bind" (portref "--" portref ";")+
//!            | "when" IDENT "{" decl* "}"
//! idlist    := IDENT ("," IDENT)*
//! portref   := IDENT ("." IDENT)?
//! ```

use crate::ast::{Binding, ComponentDecl, Decl, Document, InstDecl, PortRef};
use crate::token::{lex, LexError, Spanned, Tok};
use std::fmt;

/// A parse error with the line it occurred on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// Lexing failed.
    Lex(LexError),
    /// An unexpected token.
    Unexpected {
        /// What was found (rendered), or "end of input".
        found: String,
        /// What the parser wanted.
        expected: &'static str,
        /// 1-based line, 0 for end of input.
        line: u32,
    },
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Lex(e) => write!(f, "lex error: {e}"),
            ParseError::Unexpected { found, expected, line } => {
                write!(f, "line {line}: expected {expected}, found {found}")
            }
        }
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError::Lex(e)
    }
}

struct Parser {
    toks: Vec<Spanned>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|s| &s.tok)
    }

    fn line(&self) -> u32 {
        self.toks.get(self.pos).map_or(0, |s| s.line)
    }

    fn err(&self, expected: &'static str) -> ParseError {
        ParseError::Unexpected {
            found: self.peek().map_or_else(|| "end of input".to_owned(), ToString::to_string),
            expected,
            line: self.line(),
        }
    }

    fn eat(&mut self, want: &Tok, expected: &'static str) -> Result<(), ParseError> {
        if self.peek() == Some(want) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(expected))
        }
    }

    fn ident(&mut self, expected: &'static str) -> Result<String, ParseError> {
        match self.peek() {
            Some(Tok::Ident(s)) => {
                let s = s.clone();
                self.pos += 1;
                Ok(s)
            }
            _ => Err(self.err(expected)),
        }
    }

    fn document(&mut self) -> Result<Document, ParseError> {
        let mut components = Vec::new();
        while self.peek().is_some() {
            components.push(self.component()?);
        }
        Ok(Document { components })
    }

    fn component(&mut self) -> Result<ComponentDecl, ParseError> {
        self.eat(&Tok::Component, "`component`")?;
        let name = self.ident("component name")?;
        self.eat(&Tok::LBrace, "`{`")?;
        let body = self.decls()?;
        self.eat(&Tok::RBrace, "`}`")?;
        Ok(ComponentDecl { name, body })
    }

    fn decls(&mut self) -> Result<Vec<Decl>, ParseError> {
        let mut out = Vec::new();
        loop {
            match self.peek() {
                Some(Tok::Provide) => {
                    self.pos += 1;
                    let names = self.idlist()?;
                    self.eat(&Tok::Semi, "`;`")?;
                    out.push(Decl::Provide(names));
                }
                Some(Tok::Require) => {
                    self.pos += 1;
                    let names = self.idlist()?;
                    self.eat(&Tok::Semi, "`;`")?;
                    out.push(Decl::Require(names));
                }
                Some(Tok::Inst) => {
                    self.pos += 1;
                    let mut insts = Vec::new();
                    loop {
                        let name = self.ident("instance name")?;
                        self.eat(&Tok::Colon, "`:`")?;
                        let ty = self.ident("type name")?;
                        self.eat(&Tok::Semi, "`;`")?;
                        insts.push(InstDecl { name, ty });
                        // Another `ident :` pair continues the inst block.
                        if !matches!(
                            (self.peek(), self.toks.get(self.pos + 1).map(|s| &s.tok)),
                            (Some(Tok::Ident(_)), Some(Tok::Colon))
                        ) {
                            break;
                        }
                    }
                    out.push(Decl::Inst(insts));
                }
                Some(Tok::Bind) => {
                    self.pos += 1;
                    let mut binds = Vec::new();
                    loop {
                        let from = self.portref()?;
                        self.eat(&Tok::Arrow, "`--`")?;
                        let to = self.portref()?;
                        self.eat(&Tok::Semi, "`;`")?;
                        binds.push(Binding { from, to });
                        // Another portref continues the bind block.
                        if !matches!(self.peek(), Some(Tok::Ident(_))) {
                            break;
                        }
                        // ...unless it's actually an inst decl (ident `:`).
                        if matches!(self.toks.get(self.pos + 1).map(|s| &s.tok), Some(Tok::Colon)) {
                            break;
                        }
                    }
                    out.push(Decl::Bind(binds));
                }
                Some(Tok::When) => {
                    self.pos += 1;
                    let mode = self.ident("mode name")?;
                    self.eat(&Tok::LBrace, "`{`")?;
                    let body = self.decls()?;
                    self.eat(&Tok::RBrace, "`}`")?;
                    out.push(Decl::When { mode, body });
                }
                _ => break,
            }
        }
        Ok(out)
    }

    fn idlist(&mut self) -> Result<Vec<String>, ParseError> {
        let mut out = vec![self.ident("port name")?];
        while self.peek() == Some(&Tok::Comma) {
            self.pos += 1;
            out.push(self.ident("port name")?);
        }
        Ok(out)
    }

    fn portref(&mut self) -> Result<PortRef, ParseError> {
        let first = self.ident("port reference")?;
        if self.peek() == Some(&Tok::Dot) {
            self.pos += 1;
            let port = self.ident("port name")?;
            Ok(PortRef { instance: Some(first), port })
        } else {
            Ok(PortRef { instance: None, port: first })
        }
    }
}

/// Parse a document from source text.
///
/// # Errors
/// [`ParseError`] with the failing line.
pub fn parse(src: &str) -> Result<Document, ParseError> {
    let toks = lex(src)?;
    let mut p = Parser { toks, pos: 0 };
    p.document()
}

#[cfg(test)]
mod tests {
    use super::*;

    const SMALL: &str = r"
        component FileStore {
            provide pages;
            require disk;
        }
        component System {
            inst fs : FileStore;
                 drv : Driver;
            bind fs.disk -- drv.block;
        }
    ";

    #[test]
    fn parses_primitive_and_composite() {
        let doc = parse(SMALL).unwrap();
        assert_eq!(doc.components.len(), 2);
        let fs = doc.component("FileStore").unwrap();
        assert_eq!(fs.provides(), vec!["pages"]);
        assert_eq!(fs.requires(), vec!["disk"]);
        let sys = doc.component("System").unwrap();
        assert!(sys.is_composite());
    }

    #[test]
    fn parses_multi_inst_and_multi_bind_blocks() {
        let doc = parse(SMALL).unwrap();
        let sys = doc.component("System").unwrap();
        let insts: Vec<_> = sys
            .body
            .iter()
            .filter_map(|d| match d {
                Decl::Inst(v) => Some(v.len()),
                _ => None,
            })
            .collect();
        assert_eq!(insts, vec![2]);
    }

    #[test]
    fn parses_when_blocks() {
        let src = r"
            component M {
                provide query;
                when docked { inst e : Eth; bind net -- e.link; }
                when wireless { inst w : Wifi; bind net -- w.link; }
            }
        ";
        let doc = parse(src).unwrap();
        let m = doc.component("M").unwrap();
        assert_eq!(m.modes(), vec!["docked", "wireless"]);
    }

    #[test]
    fn parses_comma_port_lists() {
        let doc = parse("component A { provide p, q, r; }").unwrap();
        assert_eq!(doc.component("A").unwrap().provides(), vec!["p", "q", "r"]);
    }

    #[test]
    fn error_reports_line() {
        let err = parse("component A {\n provide ; \n}").unwrap_err();
        match err {
            ParseError::Unexpected { line, expected, .. } => {
                assert_eq!(line, 2);
                assert_eq!(expected, "port name");
            }
            ParseError::Lex(_) => panic!("wrong error kind"),
        }
    }

    #[test]
    fn missing_brace_is_reported() {
        let err = parse("component A { provide p;").unwrap_err();
        assert!(err.to_string().contains("expected"));
    }

    #[test]
    fn empty_document_is_valid() {
        assert_eq!(parse("").unwrap(), Document::default());
    }

    #[test]
    fn binding_to_own_port_parses() {
        let doc = parse("component C { require net; inst w : Wifi; bind net -- w.link; }").unwrap();
        let c = doc.component("C").unwrap();
        let binds: Vec<&Binding> = c
            .body
            .iter()
            .filter_map(|d| match d {
                Decl::Bind(v) => Some(v.iter()),
                _ => None,
            })
            .flatten()
            .collect();
        assert_eq!(binds[0].from, PortRef::own("net"));
        assert_eq!(binds[0].to, PortRef::on("w", "link"));
    }
}
