//! Semantic analysis: the "reason about the architecture" half of an ADL.
//!
//! > "An ADL can give a global view of the system and when augmented with
//! > constraints, the validity of change (the reconfiguration of
//! > components) can potentially be evaluated at runtime."
//!
//! The checks here are the static half of that validity story: name
//! resolution, duplicate detection, and binding *direction* (a requirement —
//! Darwin's empty circle — may only be wired to a provision — the filled
//! circle). Mode-completeness (every requirement bound in every mode) is a
//! property of a flattened configuration and lives in [`crate::config`].

use crate::ast::{Binding, ComponentDecl, Decl, Document, InstDecl, PortRef};
use std::collections::BTreeMap;
use std::fmt;

/// A semantic error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AnalysisError {
    /// Two components share a name.
    DuplicateComponent(String),
    /// A port is declared twice on one component.
    DuplicatePort {
        /// Component name.
        component: String,
        /// Port name.
        port: String,
    },
    /// Two instances share a name in one scope.
    DuplicateInstance {
        /// Component name.
        component: String,
        /// Instance name.
        instance: String,
    },
    /// An instance names an unknown type.
    UnknownType {
        /// Component name.
        component: String,
        /// Instance whose type is unknown.
        instance: String,
        /// The missing type name.
        ty: String,
    },
    /// A binding references an instance not in scope.
    UnknownInstance {
        /// Component name.
        component: String,
        /// The missing instance.
        instance: String,
    },
    /// A binding references a port the target does not declare.
    UnknownPort {
        /// Component name.
        component: String,
        /// The offending reference.
        port: String,
    },
    /// A binding's ends have the wrong polarity.
    Direction {
        /// Component name.
        component: String,
        /// The binding, rendered.
        binding: String,
        /// Which end is wrong.
        detail: &'static str,
    },
    /// Sub-instance bindings form a service-dependency cycle: each instance
    /// in the cycle requires a service the next one provides, so no valid
    /// start-up (or reconfiguration) order exists.
    BindingCycle {
        /// Component whose body contains the cycle.
        component: String,
        /// The cycle, rendered `a -> b -> a`.
        cycle: String,
    },
}

impl fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalysisError::DuplicateComponent(n) => write!(f, "duplicate component `{n}`"),
            AnalysisError::DuplicatePort { component, port } => {
                write!(f, "duplicate port `{port}` on `{component}`")
            }
            AnalysisError::DuplicateInstance { component, instance } => {
                write!(f, "duplicate instance `{instance}` in `{component}`")
            }
            AnalysisError::UnknownType { component, instance, ty } => {
                write!(f, "instance `{instance}` in `{component}` has unknown type `{ty}`")
            }
            AnalysisError::UnknownInstance { component, instance } => {
                write!(f, "binding in `{component}` references unknown instance `{instance}`")
            }
            AnalysisError::UnknownPort { component, port } => {
                write!(f, "binding in `{component}` references unknown port `{port}`")
            }
            AnalysisError::Direction { component, binding, detail } => {
                write!(f, "binding `{binding}` in `{component}`: {detail}")
            }
            AnalysisError::BindingCycle { component, cycle } => {
                write!(f, "binding cycle in `{component}`: {cycle}")
            }
        }
    }
}

impl std::error::Error for AnalysisError {}

/// Which polarity a port reference has inside a composite.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum End {
    /// May *consume* a service: a sub-instance requirement, or the
    /// composite's own provision (which delegates inward).
    Requirement,
    /// May *supply* a service: a sub-instance provision, or the composite's
    /// own requirement (supplied from outside).
    Provision,
    /// Not a port at all.
    Unknown,
}

fn end_of(
    doc: &Document,
    comp: &ComponentDecl,
    scope: &BTreeMap<String, String>,
    r: &PortRef,
) -> End {
    match &r.instance {
        Some(inst) => {
            let Some(ty_name) = scope.get(inst) else { return End::Unknown };
            let Some(ty) = doc.component(ty_name) else { return End::Unknown };
            if ty.requires().contains(&r.port.as_str()) {
                End::Requirement
            } else if ty.provides().contains(&r.port.as_str()) {
                End::Provision
            } else {
                End::Unknown
            }
        }
        None => {
            if comp.provides().contains(&r.port.as_str()) {
                End::Requirement
            } else if comp.requires().contains(&r.port.as_str()) {
                End::Provision
            } else {
                End::Unknown
            }
        }
    }
}

fn check_decls(
    doc: &Document,
    comp: &ComponentDecl,
    decls: &[Decl],
    scope: &mut BTreeMap<String, String>,
    errors: &mut Vec<AnalysisError>,
) {
    // First pass of this block: bring instances into scope so bindings in
    // the same block may reference them regardless of order.
    for d in decls {
        if let Decl::Inst(insts) = d {
            for InstDecl { name, ty } in insts {
                if scope.insert(name.clone(), ty.clone()).is_some() {
                    errors.push(AnalysisError::DuplicateInstance {
                        component: comp.name.clone(),
                        instance: name.clone(),
                    });
                }
                if doc.component(ty).is_none() {
                    errors.push(AnalysisError::UnknownType {
                        component: comp.name.clone(),
                        instance: name.clone(),
                        ty: ty.clone(),
                    });
                }
            }
        }
    }
    for d in decls {
        match d {
            Decl::Bind(binds) => {
                for b in binds {
                    check_binding(doc, comp, scope, b, errors);
                }
            }
            Decl::When { body, .. } => {
                // A when block sees the enclosing scope plus its own
                // instances; its instances do not leak out.
                let mut inner = scope.clone();
                check_decls(doc, comp, body, &mut inner, errors);
            }
            _ => {}
        }
    }
}

fn check_binding(
    doc: &Document,
    comp: &ComponentDecl,
    scope: &BTreeMap<String, String>,
    b: &Binding,
    errors: &mut Vec<AnalysisError>,
) {
    for r in [&b.from, &b.to] {
        if let Some(inst) = &r.instance {
            if !scope.contains_key(inst) {
                errors.push(AnalysisError::UnknownInstance {
                    component: comp.name.clone(),
                    instance: inst.clone(),
                });
                return;
            }
        }
        if end_of(doc, comp, scope, r) == End::Unknown {
            errors.push(AnalysisError::UnknownPort {
                component: comp.name.clone(),
                port: r.to_string(),
            });
            return;
        }
    }
    let rendered = || format!("{} -- {}", b.from, b.to);
    if end_of(doc, comp, scope, &b.from) != End::Requirement {
        errors.push(AnalysisError::Direction {
            component: comp.name.clone(),
            binding: rendered(),
            detail: "left end must be a requirement (or own provision)",
        });
    }
    if end_of(doc, comp, scope, &b.to) != End::Provision {
        errors.push(AnalysisError::Direction {
            component: comp.name.clone(),
            binding: rendered(),
            detail: "right end must be a provision (or own requirement)",
        });
    }
}

/// Collect, per configuration (base declarations, then base plus each
/// `when` block, cumulatively through nesting), the instance-to-instance
/// dependency edges its bindings induce: `a.req -- b.prov` means `a`
/// depends on `b`.
fn binding_edges(
    decls: &[Decl],
    inherited: &[(String, String)],
    out: &mut Vec<Vec<(String, String)>>,
) {
    let mut own: Vec<(String, String)> = inherited.to_vec();
    for d in decls {
        if let Decl::Bind(binds) = d {
            for b in binds {
                if let (Some(from), Some(to)) = (&b.from.instance, &b.to.instance) {
                    own.push((from.clone(), to.clone()));
                }
            }
        }
    }
    out.push(own.clone());
    for d in decls {
        if let Decl::When { body, .. } = d {
            binding_edges(body, &own, out);
        }
    }
}

/// Find one dependency cycle in `edges` (`(a, b)` meaning `a` depends on
/// `b`), rendered `a -> b -> a` starting from the cycle's lexicographically
/// smallest member so reports are deterministic.
///
/// Shared by the document analyser (service-dependency cycles between
/// sub-instances) and `compkit`'s reconfiguration-plan linter (binding and
/// lock-order cycles over plan atoms).
#[must_use]
pub fn find_cycle(edges: &[(String, String)]) -> Option<String> {
    let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for (a, b) in edges {
        adj.entry(a).or_default().push(b);
    }
    #[derive(PartialEq)]
    enum Mark {
        Active,
        Done,
    }
    fn dfs<'a>(
        node: &'a str,
        adj: &BTreeMap<&'a str, Vec<&'a str>>,
        marks: &mut BTreeMap<&'a str, Mark>,
        stack: &mut Vec<&'a str>,
    ) -> Option<Vec<String>> {
        match marks.get(node) {
            Some(Mark::Done) => return None,
            Some(Mark::Active) => {
                let start = stack.iter().position(|&n| n == node).unwrap();
                return Some(stack[start..].iter().map(|s| (*s).to_owned()).collect());
            }
            None => {}
        }
        marks.insert(node, Mark::Active);
        stack.push(node);
        for &next in adj.get(node).into_iter().flatten() {
            if let Some(cycle) = dfs(next, adj, marks, stack) {
                return Some(cycle);
            }
        }
        stack.pop();
        marks.insert(node, Mark::Done);
        None
    }
    let mut marks = BTreeMap::new();
    let mut stack = Vec::new();
    for &node in adj.keys() {
        if let Some(mut cycle) = dfs(node, &adj, &mut marks, &mut stack) {
            let min = cycle.iter().enumerate().min_by_key(|&(_, n)| n).map(|(i, _)| i)?;
            cycle.rotate_left(min);
            cycle.push(cycle[0].clone());
            return Some(cycle.join(" -> "));
        }
    }
    None
}

/// Analyse a document; returns all errors found (empty means well-formed).
///
/// # Errors
/// A non-empty list of every [`AnalysisError`] discovered.
pub fn analyze(doc: &Document) -> Result<(), Vec<AnalysisError>> {
    let mut errors = Vec::new();
    // Duplicate components.
    for (i, c) in doc.components.iter().enumerate() {
        if doc.components[..i].iter().any(|o| o.name == c.name) {
            errors.push(AnalysisError::DuplicateComponent(c.name.clone()));
        }
    }
    for comp in &doc.components {
        // Duplicate ports.
        let mut seen: Vec<&str> = Vec::new();
        for p in comp.provides().into_iter().chain(comp.requires()) {
            if seen.contains(&p) {
                errors.push(AnalysisError::DuplicatePort {
                    component: comp.name.clone(),
                    port: p.to_owned(),
                });
            } else {
                seen.push(p);
            }
        }
        let mut scope = BTreeMap::new();
        check_decls(doc, comp, &comp.body, &mut scope, &mut errors);
        // Service-dependency cycles, per configuration. The same base-level
        // cycle surfaces from every configuration containing it, so dedup by
        // the rendered cycle.
        let mut edge_sets = Vec::new();
        binding_edges(&comp.body, &[], &mut edge_sets);
        let mut reported: Vec<String> = Vec::new();
        for edges in &edge_sets {
            if let Some(cycle) = find_cycle(edges) {
                if !reported.contains(&cycle) {
                    reported.push(cycle.clone());
                    errors
                        .push(AnalysisError::BindingCycle { component: comp.name.clone(), cycle });
                }
            }
        }
    }
    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;

    fn errs(src: &str) -> Vec<AnalysisError> {
        analyze(&parse(src).unwrap()).err().unwrap_or_default()
    }

    const OK: &str = r"
        component Store { provide pages; require disk; }
        component Disk  { provide block; }
        component Sys {
            provide svc;
            inst s : Store; d : Disk;
            bind svc -- s.pages;
                 s.disk -- d.block;
        }
    ";

    #[test]
    fn well_formed_document_passes() {
        assert!(analyze(&parse(OK).unwrap()).is_ok());
    }

    #[test]
    fn duplicate_component_detected() {
        let e = errs("component A { provide p; } component A { provide q; }");
        assert!(matches!(e[0], AnalysisError::DuplicateComponent(_)));
    }

    #[test]
    fn duplicate_port_detected() {
        let e = errs("component A { provide p; require p; }");
        assert!(matches!(e[0], AnalysisError::DuplicatePort { .. }));
    }

    #[test]
    fn duplicate_instance_detected() {
        let e = errs(
            "component T { provide p; }
             component C { inst x : T; x : T; }",
        );
        assert!(e.iter().any(|x| matches!(x, AnalysisError::DuplicateInstance { .. })));
    }

    #[test]
    fn unknown_type_detected() {
        let e = errs("component C { inst x : Missing; }");
        assert!(matches!(e[0], AnalysisError::UnknownType { .. }));
    }

    #[test]
    fn unknown_instance_in_binding_detected() {
        let e = errs(
            "component T { provide p; }
             component C { inst x : T; bind ghost.q -- x.p; }",
        );
        assert!(matches!(e[0], AnalysisError::UnknownInstance { .. }));
    }

    #[test]
    fn unknown_port_detected() {
        let e = errs(
            "component T { provide p; }
             component C { inst x : T; bind x.nope -- x.p; }",
        );
        assert!(matches!(e[0], AnalysisError::UnknownPort { .. }));
    }

    #[test]
    fn reversed_binding_direction_detected() {
        let e = errs(
            "component S { provide pages; require disk; }
             component D { provide block; }
             component C { inst s : S; d : D; bind d.block -- s.disk; }",
        );
        assert_eq!(e.len(), 2, "both ends have wrong polarity: {e:?}");
        assert!(e.iter().all(|x| matches!(x, AnalysisError::Direction { .. })));
    }

    #[test]
    fn when_block_instances_are_scoped() {
        // `w` is only in scope inside the wireless block.
        let e = errs(
            "component W { provide link; }
             component C { require net0; when wireless { inst w : W; } bind net0 -- w.link; }",
        );
        // Wait: `bind net0 -- w.link` — net0 is a requirement of C used as
        // left end; own requirement is a Provision end, so direction will
        // also complain, but the decisive error is the unknown instance.
        assert!(e.iter().any(|x| matches!(x, AnalysisError::UnknownInstance { .. })));
    }

    #[test]
    fn when_block_binding_may_use_base_instances() {
        let src = "
            component T { provide p; }
            component U { require q; }
            component C {
                inst t : T;
                when m { inst u : U; bind u.q -- t.p; }
            }
        ";
        assert!(analyze(&parse(src).unwrap()).is_ok());
    }

    #[test]
    fn binding_cycle_detected() {
        // a requires from b, b requires from a: no valid start-up order.
        let e = errs(
            "component A { provide pa; require ra; }
             component B { provide pb; require rb; }
             component C {
                 inst a : A; b : B;
                 bind a.ra -- b.pb;
                      b.rb -- a.pa;
             }",
        );
        assert_eq!(
            e,
            vec![AnalysisError::BindingCycle {
                component: "C".into(),
                cycle: "a -> b -> a".into(),
            }]
        );
    }

    #[test]
    fn self_binding_cycle_detected() {
        let e = errs(
            "component A { provide p; require r; }
             component C { inst a : A; bind a.r -- a.p; }",
        );
        assert!(e.iter().any(|x| matches!(
            x,
            AnalysisError::BindingCycle { cycle, .. } if cycle == "a -> a"
        )));
    }

    #[test]
    fn cycle_spanning_base_and_when_block_detected_once() {
        // The cycle only closes in mode m; the base configuration is acyclic.
        let e = errs(
            "component A { provide pa; require ra; }
             component B { provide pb; require rb; }
             component C {
                 inst a : A; b : B;
                 bind a.ra -- b.pb;
                 when m { bind b.rb -- a.pa; }
             }",
        );
        let cycles: Vec<_> =
            e.iter().filter(|x| matches!(x, AnalysisError::BindingCycle { .. })).collect();
        assert_eq!(cycles.len(), 1, "{e:?}");
    }

    #[test]
    fn acyclic_chain_has_no_cycle() {
        assert!(analyze(&parse(OK).unwrap()).is_ok());
        // A diamond is fine too: shared dependency is not a cycle.
        let src = "
            component L { provide p; }
            component M { provide p; require r; }
            component C {
                inst leaf : L; m1 : M; m2 : M;
                bind m1.r -- leaf.p;
                     m2.r -- leaf.p;
            }
        ";
        assert!(analyze(&parse(src).unwrap()).is_ok());
    }

    #[test]
    fn error_messages_render() {
        for e in errs("component A { provide p; } component A { provide p; }") {
            assert!(!e.to_string().is_empty());
        }
    }
}
