//! Property tests for the ADL: printer/parser fixpoint and diff soundness.
//!
//! Randomised suites are opt-in: `cargo test -p adl --features slow-props`.
#![cfg(feature = "slow-props")]

use adl::ast::{Binding, ComponentDecl, Decl, Document, PortRef};
use adl::config::Configuration;
use adl::diff::diff;
use adl::parse::parse;
use adl::printer::print_document;
use adm_rng::{run_cases, Pcg32};
use std::collections::{BTreeMap, BTreeSet};

fn ident(rng: &mut Pcg32) -> String {
    let mut s = String::new();
    s.push((b'a' + rng.below(26) as u8) as char);
    for _ in 0..rng.index(9) {
        let c = match rng.below(28) {
            x if x < 26 => (b'a' + x as u8) as char,
            26 => (b'0' + rng.below(10) as u8) as char,
            _ => '_',
        };
        s.push(c);
    }
    // Avoid keywords.
    match s.as_str() {
        "component" | "provide" | "require" | "inst" | "bind" | "when" => format!("{s}x"),
        _ => s,
    }
}

fn idents(rng: &mut Pcg32, lo: usize, hi: usize) -> Vec<String> {
    (0..rng.index(hi - lo) + lo).map(|_| ident(rng)).collect()
}

fn portref(rng: &mut Pcg32) -> PortRef {
    let instance = rng.chance(0.5).then(|| ident(rng));
    PortRef { instance, port: ident(rng) }
}

fn decl(rng: &mut Pcg32, depth: u32) -> Decl {
    let leaf = |rng: &mut Pcg32| match rng.below(4) {
        0 => Decl::Provide(idents(rng, 1, 4)),
        1 => Decl::Require(idents(rng, 1, 4)),
        2 => Decl::Inst(
            (0..rng.index(3) + 1)
                .map(|_| adl::ast::InstDecl { name: ident(rng), ty: ident(rng) })
                .collect(),
        ),
        _ => Decl::Bind(
            (0..rng.index(3) + 1)
                .map(|_| Binding { from: portref(rng), to: portref(rng) })
                .collect(),
        ),
    };
    if depth > 0 && rng.chance(0.25) {
        let mode = ident(rng);
        let body = (0..rng.index(4)).map(|_| decl(rng, depth - 1)).collect();
        Decl::When { mode, body }
    } else {
        leaf(rng)
    }
}

fn document(rng: &mut Pcg32) -> Document {
    let components = (0..rng.index(5))
        .map(|_| ComponentDecl {
            name: ident(rng),
            body: (0..rng.index(6)).map(|_| decl(rng, 2)).collect(),
        })
        .collect();
    Document { components }
}

fn configuration(rng: &mut Pcg32) -> Configuration {
    let instances: BTreeMap<String, String> =
        (0..rng.index(10)).map(|_| (ident(rng), ident(rng))).collect();
    let binds: BTreeSet<(PortRef, PortRef)> =
        (0..rng.index(10)).map(|_| (portref(rng), portref(rng))).collect();
    Configuration {
        instances,
        bindings: binds.into_iter().map(|(from, to)| Binding { from, to }).collect(),
    }
}

/// Printing any AST and reparsing it yields the same AST — the printer
/// and parser agree on the whole language, including nested `when`s.
#[test]
fn print_parse_fixpoint() {
    run_cases(0xad1, 512, |rng| {
        let doc = document(rng);
        let printed = print_document(&doc);
        let reparsed = parse(&printed);
        assert_eq!(reparsed.as_ref().ok(), Some(&doc), "printed:\n{printed}");
    });
}

/// diff(a, b).apply(a) == b for arbitrary configurations — the
/// Adaptivity Manager's plan always reaches the target architecture.
#[test]
fn diff_apply_reaches_target() {
    run_cases(0xad2, 512, |rng| {
        let (a, b) = (configuration(rng), configuration(rng));
        let plan = diff(&a, &b);
        assert_eq!(plan.apply(&a), b);
    });
}

/// The inverse plan restores the source — the "back off" guarantee.
#[test]
fn diff_inverse_restores_source() {
    run_cases(0xad3, 512, |rng| {
        let (a, b) = (configuration(rng), configuration(rng));
        let plan = diff(&a, &b);
        let reached = plan.apply(&a);
        assert_eq!(plan.inverse().apply(&reached), a);
    });
}

/// Self-diff is empty, and plan size is bounded by the symmetric
/// difference of the two configurations.
#[test]
fn diff_is_minimal() {
    run_cases(0xad4, 512, |rng| {
        let (a, b) = (configuration(rng), configuration(rng));
        assert!(diff(&a, &a).is_empty());
        let plan = diff(&a, &b);
        let inst_sym: usize = {
            let ka: BTreeMap<_, _> = a.instances.clone().into_iter().collect();
            let kb: BTreeMap<_, _> = b.instances.clone().into_iter().collect();
            ka.iter().filter(|(k, v)| kb.get(*k) != Some(v)).count()
                + kb.iter().filter(|(k, v)| ka.get(*k) != Some(v)).count()
        };
        let bind_sym: usize = {
            let sa: BTreeSet<_> = a.bindings.iter().collect();
            let sb: BTreeSet<_> = b.bindings.iter().collect();
            sa.symmetric_difference(&sb).count()
        };
        assert_eq!(plan.len(), inst_sym + bind_sym);
    });
}

/// Deep flattening never panics: for arbitrary (even ill-formed)
/// documents it returns a configuration or a structured error.
#[test]
fn flatten_deep_is_total() {
    run_cases(0xad5, 512, |rng| {
        let doc = document(rng);
        for comp in &doc.components {
            let _ = adl::hierarchy::flatten_deep(&doc, &comp.name, &[]);
        }
    });
}

/// On analysed documents, deep flattening of a composite with no nested
/// composites agrees with shallow flattening.
#[test]
fn flatten_deep_extends_flatten() {
    run_cases(0xad6, 512, |rng| {
        let doc = document(rng);
        if adl::analysis::analyze(&doc).is_err() {
            return;
        }
        for comp in &doc.components {
            let has_composite_child = comp.body.iter().any(|d| match d {
                adl::ast::Decl::Inst(is) => is.iter().any(|i| {
                    doc.component(&i.ty).is_some_and(adl::ast::ComponentDecl::is_composite)
                }),
                _ => false,
            });
            if has_composite_child {
                continue;
            }
            let deep = adl::hierarchy::flatten_deep(&doc, &comp.name, &[]);
            let shallow = adl::config::flatten(&doc, &comp.name, &[]);
            if let (Ok(d), Ok(s)) = (deep, shallow) {
                assert_eq!(d.instances, s.instances);
            }
        }
    });
}
