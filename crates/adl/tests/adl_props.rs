//! Property tests for the ADL: printer/parser fixpoint and diff soundness.

use adl::ast::{Binding, ComponentDecl, Decl, Document, PortRef};
use adl::config::Configuration;
use adl::diff::diff;
use adl::parse::parse;
use adl::printer::print_document;
use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet};

fn ident() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,8}".prop_map(|s| {
        // Avoid keywords.
        match s.as_str() {
            "component" | "provide" | "require" | "inst" | "bind" | "when" => format!("{s}x"),
            _ => s,
        }
    })
}

fn portref() -> impl Strategy<Value = PortRef> {
    (prop::option::of(ident()), ident())
        .prop_map(|(instance, port)| PortRef { instance, port })
}

fn decl(depth: u32) -> BoxedStrategy<Decl> {
    let leaf = prop_oneof![
        prop::collection::vec(ident(), 1..4).prop_map(Decl::Provide),
        prop::collection::vec(ident(), 1..4).prop_map(Decl::Require),
        prop::collection::vec((ident(), ident()), 1..4).prop_map(|v| Decl::Inst(
            v.into_iter()
                .map(|(name, ty)| adl::ast::InstDecl { name, ty })
                .collect()
        )),
        prop::collection::vec((portref(), portref()), 1..4).prop_map(|v| Decl::Bind(
            v.into_iter().map(|(from, to)| Binding { from, to }).collect()
        )),
    ];
    if depth == 0 {
        leaf.boxed()
    } else {
        prop_oneof![
            3 => leaf,
            1 => (ident(), prop::collection::vec(decl(depth - 1), 0..4))
                .prop_map(|(mode, body)| Decl::When { mode, body }),
        ]
        .boxed()
    }
}

fn document() -> impl Strategy<Value = Document> {
    prop::collection::vec(
        (ident(), prop::collection::vec(decl(2), 0..6))
            .prop_map(|(name, body)| ComponentDecl { name, body }),
        0..5,
    )
    .prop_map(|components| Document { components })
}

fn configuration() -> impl Strategy<Value = Configuration> {
    (
        prop::collection::btree_map(ident(), ident(), 0..10),
        prop::collection::btree_set((portref(), portref()), 0..10),
    )
        .prop_map(|(instances, binds)| Configuration {
            instances,
            bindings: binds.into_iter().map(|(from, to)| Binding { from, to }).collect(),
        })
}

proptest! {
    /// Printing any AST and reparsing it yields the same AST — the printer
    /// and parser agree on the whole language, including nested `when`s.
    #[test]
    fn print_parse_fixpoint(doc in document()) {
        let printed = print_document(&doc);
        let reparsed = parse(&printed);
        prop_assert_eq!(reparsed.as_ref().ok(), Some(&doc), "printed:\n{}", printed);
    }

    /// diff(a, b).apply(a) == b for arbitrary configurations — the
    /// Adaptivity Manager's plan always reaches the target architecture.
    #[test]
    fn diff_apply_reaches_target(a in configuration(), b in configuration()) {
        let plan = diff(&a, &b);
        prop_assert_eq!(plan.apply(&a), b);
    }

    /// The inverse plan restores the source — the "back off" guarantee.
    #[test]
    fn diff_inverse_restores_source(a in configuration(), b in configuration()) {
        let plan = diff(&a, &b);
        let reached = plan.apply(&a);
        prop_assert_eq!(plan.inverse().apply(&reached), a);
    }

    /// Self-diff is empty, and plan size is bounded by the symmetric
    /// difference of the two configurations.
    #[test]
    fn diff_is_minimal(a in configuration(), b in configuration()) {
        prop_assert!(diff(&a, &a).is_empty());
        let plan = diff(&a, &b);
        let inst_sym: usize = {
            let ka: BTreeMap<_, _> = a.instances.clone().into_iter().collect();
            let kb: BTreeMap<_, _> = b.instances.clone().into_iter().collect();
            ka.iter().filter(|(k, v)| kb.get(*k) != Some(v)).count()
                + kb.iter().filter(|(k, v)| ka.get(*k) != Some(v)).count()
        };
        let bind_sym: usize = {
            let sa: BTreeSet<_> = a.bindings.iter().collect();
            let sb: BTreeSet<_> = b.bindings.iter().collect();
            sa.symmetric_difference(&sb).count()
        };
        prop_assert_eq!(plan.len(), inst_sym + bind_sym);
    }
}

proptest! {
    /// Deep flattening never panics: for arbitrary (even ill-formed)
    /// documents it returns a configuration or a structured error.
    #[test]
    fn flatten_deep_is_total(doc in document()) {
        for comp in &doc.components {
            let _ = adl::hierarchy::flatten_deep(&doc, &comp.name, &[]);
        }
    }

    /// On analysed documents, deep flattening of a composite with no nested
    /// composites agrees with shallow flattening.
    #[test]
    fn flatten_deep_extends_flatten(doc in document()) {
        if adl::analysis::analyze(&doc).is_err() {
            return Ok(());
        }
        for comp in &doc.components {
            let has_composite_child = comp.body.iter().any(|d| match d {
                adl::ast::Decl::Inst(is) => is.iter().any(|i| {
                    doc.component(&i.ty).is_some_and(adl::ast::ComponentDecl::is_composite)
                }),
                _ => false,
            });
            if has_composite_child {
                continue;
            }
            let deep = adl::hierarchy::flatten_deep(&doc, &comp.name, &[]);
            let shallow = adl::config::flatten(&doc, &comp.name, &[]);
            if let (Ok(d), Ok(s)) = (deep, shallow) {
                prop_assert_eq!(d.instances, s.instances);
            }
        }
    }
}
