//! The four protection models of Table 1, implemented over the same
//! simulated machine.
//!
//! Each kernel exposes the same operation — a **null RPC round trip** between
//! a client and a server protection domain — and pays for it with the
//! primitives its design actually executes:
//!
//! * [`MonolithicKernel`] (BSD-style Unix): RPC over datagram sockets.
//!   Four syscalls, two full process context switches with page-table
//!   reloads, socket/UDP/IP processing with real buffer manipulation, a
//!   priority scheduler pass, and the large cold-cache footprint of a big
//!   kernel. This is the "ballpark ... procedure call overheads of a modern
//!   Unix system" row.
//! * [`MachKernel`] (Mach 2.5-style first-generation microkernel):
//!   `mach_msg`-style send+receive through ports with name translation,
//!   rights checks and message copying; leaner, but still trap + page-table
//!   switch per transfer.
//! * [`L4Kernel`] (second-generation microkernel): direct-handoff IPC,
//!   message in registers, tiny cache footprint — the design whose published
//!   numbers the paper quotes at 665 cycles.
//! * [`GoKernel`]: the ORB's thread-migration RPC — no trap, no page-table
//!   switch, three segment-register loads each way (see [`crate::orb`]).
//!
//! The constants in each kernel (working-set sizes, queue lengths) are the
//! knobs of the *simulation substitute* for real hardware; they are
//! documented where declared and sized from the systems literature of the
//! period (Liedtke's IPC analyses, BSD internals texts).

use crate::component::Rights;
use crate::orb::{Orb, OrbError};
use machine::cost::{CostModel, CycleCounter, Cycles, Primitive};
use machine::isa::{Instr, Program};
use machine::trap::TrapVector;
use std::collections::VecDeque;

/// Which protection model a kernel implements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelKind {
    /// BSD-style monolithic Unix.
    Monolithic,
    /// Mach 2.5-style first-generation microkernel.
    Mach,
    /// L4-style second-generation microkernel.
    L4,
    /// Go!'s SISR + ORB zero-kernel.
    Go,
}

impl KernelKind {
    /// Display name matching the paper's Table 1 rows.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            KernelKind::Monolithic => "BSD (Unix)",
            KernelKind::Mach => "Mach2.5",
            KernelKind::L4 => "L4",
            KernelKind::Go => "Go!",
        }
    }

    /// The cycle count the paper reports for this row.
    #[must_use]
    pub fn paper_cycles(self) -> Cycles {
        match self {
            KernelKind::Monolithic => 55_000,
            KernelKind::Mach => 3_000,
            KernelKind::L4 => 665,
            KernelKind::Go => 73,
        }
    }
}

/// A kernel that can perform an RPC round trip between two of its protection
/// domains.
pub trait Kernel {
    /// Which design this is.
    fn kind(&self) -> KernelKind;

    /// Perform one RPC round trip carrying `msg_words` 32-bit words each
    /// way; returns the cycles consumed.
    fn rpc(&mut self, msg_words: u32) -> Cycles;

    /// A null RPC (the Table 1 measurement: minimal message).
    fn null_rpc(&mut self) -> Cycles {
        self.rpc(2)
    }

    /// Per-primitive anatomy of one RPC (for the Figure 6 bench).
    fn breakdown(&mut self, msg_words: u32) -> Vec<(&'static str, Cycles)>;
}

// ---------------------------------------------------------------------------
// BSD-style monolithic kernel
// ---------------------------------------------------------------------------

/// A process in the monolithic kernel.
#[derive(Debug, Clone)]
struct Process {
    /// TLB entries its working set touches after a switch (app + libc +
    /// kernel structures). Mid-90s measurements put a Unix process's
    /// post-switch refill at one-to-two hundred entries.
    tlb_working_set: u32,
    /// Kernel text/data cache lines the socket-RPC path touches cold.
    kernel_cache_lines: u32,
}

/// A datagram socket: a real byte queue.
#[derive(Debug, Clone, Default)]
struct DgramSocket {
    queue: VecDeque<Vec<u8>>,
}

/// BSD-style monolithic Unix: RPC via datagram sockets over loopback.
#[derive(Debug)]
pub struct MonolithicKernel {
    model: CostModel,
    counter: CycleCounter,
    procs: [Process; 2],
    socks: [DgramSocket; 2],
    /// Run-queue length the scheduler scans (a moderately loaded system).
    runq_len: u32,
}

impl MonolithicKernel {
    /// A kernel with client (process 0) and server (process 1) set up.
    #[must_use]
    pub fn new(model: CostModel) -> Self {
        let proc_ = Process { tlb_working_set: 250, kernel_cache_lines: 900 };
        Self {
            model,
            counter: CycleCounter::new(),
            procs: [proc_.clone(), proc_],
            socks: [DgramSocket::default(), DgramSocket::default()],
            runq_len: 8,
        }
    }

    /// `sendto()` — trap, socket layer, UDP/IP over loopback, wakeup.
    fn syscall_sendto(&mut self, to_sock: usize, payload: &[u8]) {
        let m = self.model.clone();
        TrapVector::charge_enter(&mut self.counter, &m);
        // Syscall dispatch + fd validation.
        self.counter.charge_all(&[Primitive::Load; 6], &m);
        self.counter.charge_all(&[Primitive::Alu; 4], &m);
        // sockaddr copyin.
        self.counter.charge(Primitive::CopyWords(4), &m);
        // mbuf allocation (pool get: pointer chases and header init).
        self.counter.charge_all(&[Primitive::Load; 12], &m);
        self.counter.charge_all(&[Primitive::Store; 12], &m);
        // Payload copyin.
        self.counter.charge(Primitive::CopyWords(payload.len() as u32 / 4), &m);
        // UDP checksum over the payload.
        self.counter.charge_all(&[Primitive::Alu; 8], &m);
        self.counter.charge_all(&[Primitive::Load; 8], &m);
        // IP output: route lookup.
        self.counter.charge_all(&[Primitive::Load; 10], &m);
        self.counter.charge_all(&[Primitive::Alu; 5], &m);
        // Loopback: immediate IP input + UDP input + PCB hash lookup.
        self.counter.charge_all(&[Primitive::Load; 15], &m);
        self.counter.charge_all(&[Primitive::Alu; 8], &m);
        // Append to the destination socket buffer (real queue op).
        self.socks[to_sock].queue.push_back(payload.to_vec());
        self.counter.charge_all(&[Primitive::Store; 6], &m);
        // sowakeup: mark reader runnable.
        self.counter.charge(Primitive::SchedSteps(4), &m);
        TrapVector::charge_exit(&mut self.counter, &m);
    }

    /// `recvfrom()` returning immediately (data already queued).
    fn syscall_recvfrom(&mut self, from_sock: usize) -> Vec<u8> {
        let m = self.model.clone();
        TrapVector::charge_enter(&mut self.counter, &m);
        self.counter.charge_all(&[Primitive::Load; 6], &m);
        let payload = self.socks[from_sock].queue.pop_front().unwrap_or_default();
        // mbuf dequeue + copyout + free.
        self.counter.charge_all(&[Primitive::Load; 10], &m);
        self.counter.charge(Primitive::CopyWords(payload.len() as u32 / 4), &m);
        self.counter.charge_all(&[Primitive::Store; 10], &m);
        TrapVector::charge_exit(&mut self.counter, &m);
        payload
    }

    /// Block-and-switch: the expensive part. The current process sleeps, the
    /// scheduler scans the run queue, and the other process's address space
    /// and cache working set are faulted back in.
    fn context_switch(&mut self, to: usize) {
        let m = self.model.clone();
        // Save integer + FPU state.
        self.counter.charge(Primitive::RegfileSave, &m);
        self.counter.charge(Primitive::FpuSave, &m);
        // Scheduler: scan the run queue, recompute priorities.
        self.counter.charge(Primitive::SchedSteps(self.runq_len), &m);
        // Signal-pending and resource-limit checks on the way out.
        self.counter.charge_all(&[Primitive::Load; 6], &m);
        self.counter.charge_all(&[Primitive::Alu; 4], &m);
        // Address-space switch + TLB refill of the incoming working set.
        self.counter.charge(Primitive::PageTableSwitch, &m);
        self.counter.charge(Primitive::TlbRefill(self.procs[to].tlb_working_set), &m);
        // Cold kernel + user cache footprint.
        self.counter.charge(Primitive::CacheMisses(self.procs[to].kernel_cache_lines), &m);
        // Restore incoming state.
        self.counter.charge(Primitive::RegfileSave, &m);
    }
}

impl Kernel for MonolithicKernel {
    fn kind(&self) -> KernelKind {
        KernelKind::Monolithic
    }

    fn rpc(&mut self, msg_words: u32) -> Cycles {
        let start = self.counter.total();
        let payload = vec![0u8; (msg_words * 4) as usize];
        // Client → server.
        self.syscall_sendto(1, &payload);
        self.context_switch(1);
        let req = self.syscall_recvfrom(1);
        debug_assert_eq!(req.len(), payload.len());
        // Server → client.
        self.syscall_sendto(0, &payload);
        self.context_switch(0);
        let _resp = self.syscall_recvfrom(0);
        self.counter.since(start)
    }

    fn breakdown(&mut self, msg_words: u32) -> Vec<(&'static str, Cycles)> {
        let before = self.counter.breakdown().to_vec();
        self.rpc(msg_words);
        diff_breakdown(&before, self.counter.breakdown())
    }
}

// ---------------------------------------------------------------------------
// Mach 2.5-style microkernel
// ---------------------------------------------------------------------------

/// A Mach-style port with a real message queue.
#[derive(Debug, Default)]
struct Port {
    queue: VecDeque<Vec<u32>>,
}

/// Mach 2.5-style microkernel: `mach_msg` send+receive through ports.
#[derive(Debug)]
pub struct MachKernel {
    model: CostModel,
    counter: CycleCounter,
    ports: [Port; 2],
    /// TLB working set per task after a switch — smaller than a fat Unix
    /// process (the server is a lean user-level task).
    tlb_working_set: u32,
    /// IPC-path cache lines touched cold per transfer.
    ipc_cache_lines: u32,
}

impl MachKernel {
    /// A kernel with request (port 0) and reply (port 1) ports.
    #[must_use]
    pub fn new(model: CostModel) -> Self {
        Self {
            model,
            counter: CycleCounter::new(),
            ports: [Port::default(), Port::default()],
            tlb_working_set: 16,
            ipc_cache_lines: 28,
        }
    }

    /// One `mach_msg` transfer: trap, translate, check, copy, enqueue,
    /// switch to the receiver.
    fn msg_transfer(&mut self, port: usize, msg: Vec<u32>) {
        let m = self.model.clone();
        TrapVector::charge_enter(&mut self.counter, &m);
        // Message header validation.
        self.counter.charge_all(&[Primitive::Load; 6], &m);
        self.counter.charge_all(&[Primitive::Alu; 4], &m);
        // Port name translation (hash into the task's IPC space).
        self.counter.charge_all(&[Primitive::Load; 8], &m);
        self.counter.charge_all(&[Primitive::Alu; 4], &m);
        // Send-rights check.
        self.counter.charge_all(&[Primitive::Load; 4], &m);
        self.counter.charge_all(&[Primitive::Alu; 2], &m);
        // Copy the message into kernel space, rewrite the header.
        self.counter.charge(Primitive::CopyWords(msg.len() as u32), &m);
        self.counter.charge_all(&[Primitive::Store; 4], &m);
        // Enqueue and hand off to the receiving thread.
        self.ports[port].queue.push_back(msg);
        self.counter.charge_all(&[Primitive::Store; 4], &m);
        self.counter.charge(Primitive::SchedSteps(3), &m);
        // Task switch: registers, address space, working sets.
        self.counter.charge(Primitive::RegfileSave, &m);
        self.counter.charge(Primitive::PageTableSwitch, &m);
        self.counter.charge(Primitive::TlbRefill(self.tlb_working_set), &m);
        self.counter.charge(Primitive::CacheMisses(self.ipc_cache_lines), &m);
        // Receiver-side dequeue + copyout.
        let got = self.ports[port].queue.pop_front().unwrap_or_default();
        self.counter.charge_all(&[Primitive::Load; 4], &m);
        self.counter.charge(Primitive::CopyWords(got.len() as u32), &m);
        TrapVector::charge_exit(&mut self.counter, &m);
    }
}

impl Kernel for MachKernel {
    fn kind(&self) -> KernelKind {
        KernelKind::Mach
    }

    fn rpc(&mut self, msg_words: u32) -> Cycles {
        let start = self.counter.total();
        let msg = vec![0u32; msg_words as usize];
        self.msg_transfer(0, msg.clone()); // request
        self.msg_transfer(1, msg); // reply
        self.counter.since(start)
    }

    fn breakdown(&mut self, msg_words: u32) -> Vec<(&'static str, Cycles)> {
        let before = self.counter.breakdown().to_vec();
        self.rpc(msg_words);
        diff_breakdown(&before, self.counter.breakdown())
    }
}

// ---------------------------------------------------------------------------
// L4-style microkernel
// ---------------------------------------------------------------------------

/// A thread control block.
#[derive(Debug, Clone, Copy)]
struct Tcb {
    /// Pages the partner touches right after the switch (L4 keeps this tiny:
    /// the IPC path plus the handler's first page).
    tlb_working_set: u32,
}

/// L4-style second-generation microkernel: direct-handoff register IPC.
#[derive(Debug)]
pub struct L4Kernel {
    model: CostModel,
    counter: CycleCounter,
    tcbs: [Tcb; 2],
    /// Registers carry up to this many words; beyond it, words are copied.
    register_words: u32,
}

impl L4Kernel {
    /// A kernel with two threads in separate address spaces.
    #[must_use]
    pub fn new(model: CostModel) -> Self {
        Self {
            model,
            counter: CycleCounter::new(),
            tcbs: [Tcb { tlb_working_set: 5 }, Tcb { tlb_working_set: 5 }],
            register_words: 3,
        }
    }

    /// One IPC: trap, locate partner TCB directly, switch without touching
    /// a scheduler, message stays in registers.
    fn ipc(&mut self, to: usize, msg_words: u32) {
        let m = self.model.clone();
        TrapVector::charge_enter(&mut self.counter, &m);
        // Direct TCB lookup from the thread id (no hash, no search).
        self.counter.charge_all(&[Primitive::Load; 2], &m);
        // Validate partner state (waiting? right thread?).
        self.counter.charge_all(&[Primitive::Load; 2], &m);
        self.counter.charge_all(&[Primitive::Alu; 2], &m);
        // Long messages spill out of registers.
        if msg_words > self.register_words {
            self.counter.charge(Primitive::CopyWords(msg_words - self.register_words), &m);
        }
        // Direct process switch: address space + the partner's tiny refill.
        self.counter.charge(Primitive::PageTableSwitch, &m);
        self.counter.charge(Primitive::TlbRefill(self.tcbs[to].tlb_working_set), &m);
        self.counter.charge(Primitive::CacheMisses(1), &m);
        TrapVector::charge_exit(&mut self.counter, &m);
    }
}

impl Kernel for L4Kernel {
    fn kind(&self) -> KernelKind {
        KernelKind::L4
    }

    fn rpc(&mut self, msg_words: u32) -> Cycles {
        let start = self.counter.total();
        self.ipc(1, msg_words); // call
        self.ipc(0, msg_words); // reply
        self.counter.since(start)
    }

    fn breakdown(&mut self, msg_words: u32) -> Vec<(&'static str, Cycles)> {
        let before = self.counter.breakdown().to_vec();
        self.rpc(msg_words);
        diff_breakdown(&before, self.counter.breakdown())
    }
}

// ---------------------------------------------------------------------------
// Go! (ORB) adapter
// ---------------------------------------------------------------------------

/// Go!'s RPC, adapted to the [`Kernel`] trait: a caller component invoking a
/// null service through the ORB.
#[derive(Debug)]
pub struct GoKernel {
    orb: Orb,
    caller: crate::component::ComponentId,
    iface: crate::component::InterfaceId,
}

impl GoKernel {
    /// Build an ORB hosting a caller and a null service.
    ///
    /// # Panics
    /// Never in practice: construction uses known-good programs.
    #[must_use]
    pub fn new(model: CostModel) -> Self {
        let mut orb = Orb::new(1 << 20, model);
        let null = Program::new(vec![Instr::Halt]).to_bytes();
        let caller_ty = orb.load_type("client", &null).expect("null text verifies");
        let callee_ty = orb.load_type("server", &null).expect("null text verifies");
        let caller = orb.instantiate(caller_ty).expect("memory available");
        let callee = orb.instantiate(callee_ty).expect("memory available");
        let iface = orb.publish(callee, 0, Rights::PUBLIC, 0).expect("instance exists");
        Self { orb, caller, iface }
    }

    /// Access the underlying ORB (for memory-footprint experiments).
    #[must_use]
    pub fn orb(&self) -> &Orb {
        &self.orb
    }

    /// Arm the observability hub on the underlying ORB: each `rpc` then
    /// emits an invocation span whose duration is the measured cycle cost.
    pub fn arm_obs(&mut self, obs: obs::ObsHandle) {
        self.orb.arm_obs(obs);
    }

    /// Disarm observability on the underlying ORB.
    pub fn disarm_obs(&mut self) {
        self.orb.disarm_obs();
    }

    fn invoke(&mut self) -> Result<crate::orb::RpcOutcome, OrbError> {
        self.orb.invoke(self.caller, self.iface, &[])
    }
}

impl Kernel for GoKernel {
    fn kind(&self) -> KernelKind {
        KernelKind::Go
    }

    fn rpc(&mut self, _msg_words: u32) -> Cycles {
        // Short messages travel in registers through the ORB; the null
        // service ignores them, matching the other kernels' null RPC.
        self.invoke().expect("null service cannot fault").cycles
    }

    fn breakdown(&mut self, _msg_words: u32) -> Vec<(&'static str, Cycles)> {
        self.invoke().expect("null service cannot fault").breakdown
    }
}

// ---------------------------------------------------------------------------
// Extensible-kernel ablation (the §1.1 stage between microkernels and Go!)
// ---------------------------------------------------------------------------

/// The *extensible kernel* stage of the paper's Section 1.1 narrative
/// (SPIN/exokernel lineage): service extensions are downloaded **into** the
/// kernel, so invoking one costs a trap pair plus a guarded indirect call —
/// no message, no address-space switch. "Elimination of unnecessary
/// abstraction ... ensured a significant performance improvement. However
/// they lacked the ability to tailor the OS to the application and be
/// re-configured at runtime" — which is exactly what Go! adds while being
/// cheaper still. Not a Table 1 row (the paper doesn't report one); used by
/// the ablation benches to place the design point.
#[derive(Debug)]
pub struct ExtensibleKernel {
    model: CostModel,
    counter: CycleCounter,
    /// Downloaded extensions: entry ids the guard checks against.
    extensions: Vec<u32>,
}

impl ExtensibleKernel {
    /// A kernel with one downloaded extension.
    #[must_use]
    pub fn new(model: CostModel) -> Self {
        Self { model, counter: CycleCounter::new(), extensions: vec![1] }
    }

    /// Download another extension (load-time verification is charged as a
    /// linear scan, like SISR's — the designs share that idea).
    pub fn download(&mut self, id: u32, instructions: u32) {
        let m = self.model.clone();
        for _ in 0..instructions {
            self.counter.charge(Primitive::Load, &m);
            self.counter.charge(Primitive::Alu, &m);
        }
        if !self.extensions.contains(&id) {
            self.extensions.push(id);
        }
    }

    /// Invoke extension `id`: trap in, guarded dispatch, direct call, trap
    /// out. Returns the cycles consumed.
    ///
    /// # Panics
    /// If the extension was never downloaded.
    pub fn invoke_extension(&mut self, id: u32) -> Cycles {
        assert!(self.extensions.contains(&id), "extension {id} not downloaded");
        let m = self.model.clone();
        let start = self.counter.total();
        TrapVector::charge_enter(&mut self.counter, &m);
        // Guarded dispatch: bounds-check the extension id, load its entry.
        self.counter.charge_all(&[Primitive::Load, Primitive::Load, Primitive::Alu], &m);
        self.counter.charge(Primitive::BranchIndirect, &m);
        // The extension runs in the kernel: a couple of cache lines cold.
        self.counter.charge(Primitive::CacheMisses(2), &m);
        self.counter.charge(Primitive::BranchIndirect, &m);
        TrapVector::charge_exit(&mut self.counter, &m);
        self.counter.since(start)
    }
}

// ---------------------------------------------------------------------------

/// Build all four kernels under one cost model, in Table 1 row order.
#[must_use]
pub fn all_kernels(model: &CostModel) -> Vec<Box<dyn Kernel>> {
    vec![
        Box::new(MonolithicKernel::new(model.clone())),
        Box::new(MachKernel::new(model.clone())),
        Box::new(L4Kernel::new(model.clone())),
        Box::new(GoKernel::new(model.clone())),
    ]
}

fn diff_breakdown(
    before: &[(&'static str, Cycles)],
    after: &[(&'static str, Cycles)],
) -> Vec<(&'static str, Cycles)> {
    let mut out = Vec::new();
    for &(label, total) in after {
        let prev = before.iter().find(|(l, _)| *l == label).map_or(0, |(_, v)| *v);
        if total > prev {
            out.push((label, total - prev));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bands() -> Vec<(KernelKind, Cycles, Cycles)> {
        vec![
            (KernelKind::Monolithic, 40_000, 70_000),
            (KernelKind::Mach, 2_200, 3_800),
            (KernelKind::L4, 500, 850),
            (KernelKind::Go, 55, 95),
        ]
    }

    #[test]
    fn each_kernel_lands_in_its_paper_band() {
        let model = CostModel::pentium();
        for (kind, lo, hi) in bands() {
            let mut k: Box<dyn Kernel> = match kind {
                KernelKind::Monolithic => Box::new(MonolithicKernel::new(model.clone())),
                KernelKind::Mach => Box::new(MachKernel::new(model.clone())),
                KernelKind::L4 => Box::new(L4Kernel::new(model.clone())),
                KernelKind::Go => Box::new(GoKernel::new(model.clone())),
            };
            let c = k.null_rpc();
            assert!(
                (lo..=hi).contains(&c),
                "{}: {} cycles outside [{lo}, {hi}] (paper: {})",
                kind.name(),
                c,
                kind.paper_cycles()
            );
        }
    }

    #[test]
    fn table1_ordering_is_strict() {
        let model = CostModel::pentium();
        let mut costs: Vec<(KernelKind, Cycles)> =
            all_kernels(&model).iter_mut().map(|k| (k.kind(), k.null_rpc())).collect();
        costs.sort_by_key(|&(_, c)| c);
        let order: Vec<KernelKind> = costs.into_iter().map(|(k, _)| k).collect();
        assert_eq!(
            order,
            vec![KernelKind::Go, KernelKind::L4, KernelKind::Mach, KernelKind::Monolithic]
        );
    }

    #[test]
    fn gaps_are_roughly_order_of_magnitude() {
        let model = CostModel::pentium();
        let mut ks = all_kernels(&model);
        let bsd = ks[0].null_rpc();
        let mach = ks[1].null_rpc();
        let l4 = ks[2].null_rpc();
        let go = ks[3].null_rpc();
        assert!(bsd / mach >= 8, "BSD/Mach ratio {} too small", bsd / mach);
        assert!(mach / l4 >= 3, "Mach/L4 ratio {} too small", mach / l4);
        assert!(l4 / go >= 5, "L4/Go ratio {} too small", l4 / go);
        assert!(bsd / go >= 400, "BSD/Go ratio {} too small", bsd / go);
    }

    #[test]
    fn rpc_cost_is_stable_across_repetitions() {
        let model = CostModel::pentium();
        let mut k = GoKernel::new(model);
        let a = k.null_rpc();
        let b = k.null_rpc();
        assert_eq!(a, b, "deterministic simulation must repeat exactly");
    }

    #[test]
    fn larger_messages_cost_more_on_copying_kernels() {
        let model = CostModel::pentium();
        let mut mach = MachKernel::new(model.clone());
        let small = mach.rpc(2);
        let big = mach.rpc(256);
        assert!(big > small);
        // L4 keeps short messages in registers: 2 words is free of copies.
        let mut l4 = L4Kernel::new(model);
        let in_regs = l4.rpc(2);
        let spilled = l4.rpc(64);
        assert!(spilled > in_regs);
    }

    #[test]
    fn breakdowns_sum_to_rpc_cost() {
        let model = CostModel::pentium();
        for k in all_kernels(&model).iter_mut() {
            let cost = k.null_rpc();
            let bd = k.breakdown(2);
            let sum: Cycles = bd.iter().map(|(_, v)| v).sum();
            assert_eq!(sum, cost, "{}", k.kind().name());
        }
    }

    #[test]
    fn go_breakdown_has_no_traps_or_page_table_switches() {
        let model = CostModel::pentium();
        let mut go = GoKernel::new(model);
        let bd = go.breakdown(0);
        assert!(bd.iter().all(|(l, _)| *l != "trap-enter" && *l != "page-table-switch"));
        // And the trap-based kernels *do* trap.
        let mut l4 = L4Kernel::new(CostModel::pentium());
        assert!(l4.breakdown(2).iter().any(|(l, _)| *l == "trap-enter"));
    }

    #[test]
    fn extensible_kernel_sits_between_l4_and_go() {
        // The §1.1 narrative as numbers: each architectural stage cuts the
        // service-invocation cost, and Go! cuts past the extensible kernel
        // while regaining runtime reconfigurability.
        let model = CostModel::pentium();
        let l4 = L4Kernel::new(model.clone()).null_rpc();
        let mut ext = ExtensibleKernel::new(model.clone());
        let ext_cost = ext.invoke_extension(1);
        let go = GoKernel::new(model).null_rpc();
        assert!(
            go < ext_cost && ext_cost < l4,
            "Go! {go} < extensible {ext_cost} < L4 {l4} must hold"
        );
    }

    #[test]
    fn extension_download_is_charged_and_gated() {
        let model = CostModel::pentium();
        let mut ext = ExtensibleKernel::new(model);
        let before = ext.counter.total();
        ext.download(7, 100);
        assert_eq!(ext.counter.total() - before, 300, "100 instr x (load+alu)");
        let c = ext.invoke_extension(7);
        assert!(c > 0);
    }

    #[test]
    #[should_panic(expected = "not downloaded")]
    fn undownloaded_extension_rejected() {
        let mut ext = ExtensibleKernel::new(CostModel::pentium());
        let _ = ext.invoke_extension(99);
    }

    #[test]
    fn deep_pipeline_widens_the_gap() {
        // On a machine with costlier traps/misses, Go!'s advantage grows —
        // the paper's bet that the design ages well.
        let pent = CostModel::pentium();
        let deep = CostModel::deep_pipeline();
        let ratio = |m: &CostModel| {
            let bsd = MonolithicKernel::new(m.clone()).null_rpc();
            let go = GoKernel::new(m.clone()).null_rpc();
            bsd as f64 / go as f64
        };
        assert!(ratio(&deep) > ratio(&pent));
    }
}
