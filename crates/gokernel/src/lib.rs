//! # gokernel — the Go! zero-kernel OS and its Table 1 comparators
//!
//! Section 5.1 of the paper describes **Go!**, a proof-of-concept
//! component-based OS for IA32 built around **SISR** (Software-based
//! Instruction-Set Reduction):
//!
//! * there is *no* user/kernel processor-mode split;
//! * component text is scanned at load time and rejected if it contains any
//!   privileged instruction ([`sisr`]);
//! * protection is enforced by segmentation: each component instance owns a
//!   data segment, each component type a code segment ([`component`]);
//! * a privileged component, the **ORB**, is the only code allowed to load
//!   segment registers; it performs protected intra-machine RPC by migrating
//!   the calling thread into the callee ([`orb`], the paper's Figure 6);
//! * a context switch is three segment-register loads — ~3 cycles.
//!
//! Table 1 compares Go!'s RPC cost against three trap-based designs. This
//! crate implements all four over the `machine` substrate ([`kernels`]), and
//! [`table1`] is the harness that regenerates the table.
//!
//! | Operating system | Paper (cycles) |
//! |------------------|----------------|
//! | BSD (Unix)       | 55,000         |
//! | Mach 2.5         | 3,000          |
//! | L4               | 665            |
//! | Go!              | 73             |

//! ## Quick example
//!
//! ```
//! use gokernel::table1_rows;
//! use machine::CostModel;
//!
//! let rows = table1_rows(&CostModel::pentium(), 1);
//! // Strict Table 1 ordering: BSD > Mach > L4 > Go!.
//! assert!(rows.windows(2).all(|w| w[0].measured_cycles > w[1].measured_cycles));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod component;
pub mod kernels;
pub mod libos;
pub mod orb;
pub mod sisr;
pub mod table1;

pub use component::{
    ComponentId, ComponentInstance, ComponentType, InterfaceDescriptor, InterfaceId,
};
pub use kernels::{
    ExtensibleKernel, GoKernel, Kernel, KernelKind, L4Kernel, MachKernel, MonolithicKernel,
};
pub use libos::{LibOs, LibOsError, ThreadId};
pub use orb::{InvokeFaults, Orb, OrbError, RpcOutcome};
pub use sisr::{
    Diagnostic, DiagnosticKind, Limits, Pass, PassReport, ProcedureSummary, Severity, SisrVerifier,
    VerifiedImage, VerifyReport,
};
pub use table1::{table1_rows, Table1Row, PAPER_TABLE1};
