//! The Table 1 harness: regenerate the paper's "Relative RPC performance"
//! table and the 32-bytes-per-interface memory comparison.
//!
//! > | Operating System | Number of RPC (in cycles) |
//! > |------------------|---------------------------|
//! > | BSD (Unix)       | 55,000                    |
//! > | Mach2.5          | 3,000                     |
//! > | L4               | 665                       |
//! > | Go!              | 73                        |
//!
//! We are not expected to match absolute numbers (our substrate is a
//! simulator), but the ordering and rough inter-row ratios must hold; the
//! harness reports both paper and measured values side by side.

use crate::component::Rights;
use crate::kernels::{all_kernels, GoKernel, Kernel, KernelKind, L4Kernel};
use crate::orb::Orb;
use crate::sisr::SisrVerifier;
use machine::cost::{CostModel, Cycles};
use machine::isa::{Instr, Program};
use machine::paging::{AddressSpace, PageFlags, PAGE_SIZE};

/// One regenerated row of Table 1.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1Row {
    /// Which kernel.
    pub kind: KernelKind,
    /// The paper's reported cycles.
    pub paper_cycles: Cycles,
    /// Our measured cycles (mean over `reps` identical deterministic runs).
    pub measured_cycles: Cycles,
    /// measured / paper.
    pub ratio_to_paper: f64,
}

/// The paper's values, in row order.
pub const PAPER_TABLE1: [(KernelKind, Cycles); 4] = [
    (KernelKind::Monolithic, 55_000),
    (KernelKind::Mach, 3_000),
    (KernelKind::L4, 665),
    (KernelKind::Go, 73),
];

/// Regenerate Table 1 under a cost model. `reps` repetitions guard against
/// accidental state-dependence (the simulation is deterministic, so they
/// must agree exactly — the harness asserts it).
///
/// # Panics
/// If the deterministic simulation produces differing repetitions.
#[must_use]
pub fn table1_rows(model: &CostModel, reps: u32) -> Vec<Table1Row> {
    let mut rows = Vec::with_capacity(4);
    for k in all_kernels(model).iter_mut() {
        let first = k.null_rpc();
        for _ in 1..reps {
            assert_eq!(k.null_rpc(), first, "{} must be deterministic", k.kind().name());
        }
        let paper = k.kind().paper_cycles();
        rows.push(Table1Row {
            kind: k.kind(),
            paper_cycles: paper,
            measured_cycles: first,
            ratio_to_paper: first as f64 / paper as f64,
        });
    }
    rows
}

/// Render the regenerated table in the paper's layout.
#[must_use]
pub fn render_table1(rows: &[Table1Row]) -> String {
    let mut s = String::from(
        "Table 1: Relative RPC performance\n\
         Operating System | paper (cycles) | measured (cycles) | measured/paper\n\
         -----------------+----------------+-------------------+---------------\n",
    );
    for r in rows {
        s.push_str(&format!(
            "{:<17}| {:>14} | {:>17} | {:>13.2}\n",
            r.kind.name(),
            r.paper_cycles,
            r.measured_cycles,
            r.ratio_to_paper
        ));
    }
    s
}

/// The load-time verification-cost row the ROADMAP asks for: what SISR
/// spends **once per image** so every subsequent call can skip the trap
/// machinery, and how few calls amortise it against the cheapest
/// trap-based alternative (L4).
#[derive(Debug, Clone, PartialEq)]
pub struct VerificationRow {
    /// Cycles SISR spends scanning the null service image at load time.
    pub verify_cycles: Cycles,
    /// Go!'s measured null-RPC cost under the same model.
    pub go_call_cycles: Cycles,
    /// L4's measured null-RPC cost under the same model.
    pub l4_call_cycles: Cycles,
    /// Calls after which the one-off scan has paid for itself:
    /// `ceil(verify / (l4 - go))`.
    pub breakeven_calls: u64,
}

/// Regenerate the verification-cost row under a cost model, using the same
/// null service as the Table 1 Go! row.
///
/// # Panics
/// Never in practice: the null service always verifies.
#[must_use]
pub fn verification_cost_row(model: &CostModel) -> VerificationRow {
    let null = Program::new(vec![Instr::Halt]).to_bytes();
    let image = SisrVerifier::new(model.clone()).verify(&null).expect("null text verifies");
    let verify_cycles = image.scan_cycles();
    let go_call_cycles = GoKernel::new(model.clone()).null_rpc();
    let l4_call_cycles = L4Kernel::new(model.clone()).null_rpc();
    let per_call_saving = l4_call_cycles.saturating_sub(go_call_cycles).max(1);
    VerificationRow {
        verify_cycles,
        go_call_cycles,
        l4_call_cycles,
        breakeven_calls: verify_cycles.div_ceil(per_call_saving),
    }
}

/// Render the verification row as an addendum to Table 1.
#[must_use]
pub fn render_verification_row(r: &VerificationRow) -> String {
    format!(
        "Load-time verification (SISR, null service): {} cycles once;\n\
         per-call saving vs L4: {} cycles ({} vs {}); breakeven after {} calls\n",
        r.verify_cycles,
        r.l4_call_cycles - r.go_call_cycles,
        r.l4_call_cycles,
        r.go_call_cycles,
        r.breakeven_calls
    )
}

/// The memory half of the Go! claim: protection bytes per interface for
/// Go!'s descriptors versus a page-based protection model, for a system of
/// `components` components with `ifaces_per_component` interfaces each.
#[derive(Debug, Clone, PartialEq)]
pub struct MemoryComparison {
    /// Number of components modelled.
    pub components: u32,
    /// Interfaces per component.
    pub ifaces_per_component: u32,
    /// Go! protection bytes (descriptors + segment table).
    pub go_bytes: u64,
    /// Page-based protection bytes (per-component address spaces).
    pub paged_bytes: u64,
    /// paged / go — the paper claims "around two orders of magnitude".
    pub improvement: f64,
}

/// Build a Go! system and an equivalent page-protected system and compare
/// their protection-state footprints.
///
/// # Panics
/// Only on ORB memory exhaustion, which the chosen arena prevents.
#[must_use]
pub fn memory_comparison(components: u32, ifaces_per_component: u32) -> MemoryComparison {
    // Go!: real ORB, real descriptors.
    let mut orb = Orb::new(256 << 20, CostModel::pentium());
    let text = Program::new(vec![Instr::Halt]).to_bytes();
    let ty = orb.load_type("svc", &text).expect("verified");
    for _ in 0..components {
        let c = orb.instantiate(ty).expect("arena sized for the fleet");
        for i in 0..ifaces_per_component {
            orb.publish(c, 0, Rights::PUBLIC, u16::try_from(i % 4).unwrap())
                .expect("instance exists");
        }
    }
    let go_bytes = orb.protection_bytes();

    // Page-based: each component is its own address space mapping one text
    // page, one data page, one stack page (the minimum a process needs).
    let mut paged_bytes = 0u64;
    for _ in 0..components {
        let mut space = AddressSpace::new();
        space.map(0, 0, PageFlags { write: false, user: true });
        space.map(1, 1, PageFlags { write: true, user: true });
        space.map(2, 2, PageFlags { write: true, user: true });
        // Mapping structures plus the page-granular protection of the three
        // regions themselves (the interface has no sub-page granularity).
        paged_bytes += space.protection_bytes() + 3 * u64::from(PAGE_SIZE);
    }
    MemoryComparison {
        components,
        ifaces_per_component,
        go_bytes,
        paged_bytes,
        improvement: paged_bytes as f64 / go_bytes as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_cover_all_four_kernels_in_order() {
        let rows = table1_rows(&CostModel::pentium(), 3);
        let kinds: Vec<KernelKind> = rows.iter().map(|r| r.kind).collect();
        assert_eq!(
            kinds,
            vec![KernelKind::Monolithic, KernelKind::Mach, KernelKind::L4, KernelKind::Go]
        );
    }

    #[test]
    fn measured_ratios_stay_near_paper() {
        for r in table1_rows(&CostModel::pentium(), 2) {
            assert!(
                (0.5..=1.5).contains(&r.ratio_to_paper),
                "{}: measured {} vs paper {} (ratio {:.2})",
                r.kind.name(),
                r.measured_cycles,
                r.paper_cycles,
                r.ratio_to_paper
            );
        }
    }

    #[test]
    fn render_contains_every_row() {
        let rows = table1_rows(&CostModel::pentium(), 1);
        let s = render_table1(&rows);
        for r in &rows {
            assert!(s.contains(r.kind.name()));
            assert!(s.contains(&r.measured_cycles.to_string()));
        }
    }

    #[test]
    fn verification_row_amortises_quickly() {
        let r = verification_cost_row(&CostModel::pentium());
        assert!(r.verify_cycles > 0, "the scan must cost something");
        assert!(r.go_call_cycles < r.l4_call_cycles);
        // The one-off scan pays for itself within a handful of calls — the
        // whole point of moving protection to load time.
        assert!(
            (1..=20).contains(&r.breakeven_calls),
            "breakeven after {} calls (verify {} cycles, saving {} per call)",
            r.breakeven_calls,
            r.verify_cycles,
            r.l4_call_cycles - r.go_call_cycles
        );
        let s = render_verification_row(&r);
        assert!(s.contains(&r.verify_cycles.to_string()));
        assert!(s.contains(&r.breakeven_calls.to_string()));
    }

    #[test]
    fn memory_improvement_is_about_two_orders_of_magnitude() {
        let cmp = memory_comparison(64, 4);
        assert!(cmp.improvement >= 50.0, "paged/go = {:.1}, expected ~100x", cmp.improvement);
        assert!(cmp.improvement <= 500.0, "paged/go = {:.1} suspiciously large", cmp.improvement);
    }

    #[test]
    fn go_memory_grows_linearly_with_interfaces() {
        let a = memory_comparison(10, 2).go_bytes;
        let b = memory_comparison(10, 4).go_bytes;
        // 10 components × 2 extra interfaces × 32 bytes.
        assert_eq!(b - a, 10 * 2 * 32);
    }
}
