//! Go! components: types, instances, and the 32-byte interface descriptor.
//!
//! > "The unit of protection in SISR is the *component*, which is protected
//! > through its own data segment and is of a given type (which has its own
//! > \[code\] segment)."
//!
//! The paper's space claim — "the space required per component is just
//! 32 bytes for each interface ... around two orders of magnitude improvement
//! over page-based protection models" — is embodied by
//! [`InterfaceDescriptor`]: exactly 32 bytes, with a compile-time check and a
//! binary encoding to prove nothing is hidden elsewhere.

use crate::sisr::VerifiedImage;
use machine::seg::Selector;

/// Identifies a loaded component type (owns the code segment).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TypeId(pub u32);

/// Identifies a component instance (owns a data segment).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ComponentId(pub u32);

/// Identifies a published interface on a component instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct InterfaceId(pub u32);

/// A component *type*: verified text plus its installed code segment.
#[derive(Debug, Clone)]
pub struct ComponentType {
    /// Stable identifier.
    pub id: TypeId,
    /// Human-readable name (e.g. `"buffer-manager"`).
    pub name: String,
    /// The SISR-verified text. The ORB refuses anything else.
    pub image: VerifiedImage,
    /// The code segment selector the text lives in.
    pub code_sel: Selector,
}

/// A component *instance*: a data segment bound to a type.
#[derive(Debug, Clone)]
pub struct ComponentInstance {
    /// Stable identifier.
    pub id: ComponentId,
    /// The type whose code this instance runs.
    pub type_id: TypeId,
    /// The instance's private data segment.
    pub data_sel: Selector,
    /// The stack segment threads use while executing in this instance.
    pub stack_sel: Selector,
}

/// Access rights on an interface.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rights(pub u32);

impl Rights {
    /// May be invoked by any component.
    pub const PUBLIC: Rights = Rights(1);
    /// May only be invoked by components named in the binding.
    pub const BOUND_ONLY: Rights = Rights(2);

    /// Whether a caller with `caller_rights` may invoke.
    #[must_use]
    pub fn permits(self, bound: bool) -> bool {
        self == Rights::PUBLIC || (self == Rights::BOUND_ONLY && bound)
    }
}

/// The ORB's per-interface protection state: **exactly 32 bytes**, the
/// paper's headline space figure.
///
/// Layout (little-endian words):
/// `code_sel:u16 | data_sel:u16 | stack_sel:u16 | pad:u16 | entry:u32 |
///  type_id:u32 | iface_id:u32 | rights:u32 | arg_words:u32 | reserved:u64`
/// — wait, that would be 34; the actual packing below is 32 and checked by
/// a const assertion and the `encode` length.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InterfaceDescriptor {
    /// Code segment of the serving component's type.
    pub code_sel: Selector,
    /// Data segment of the serving instance.
    pub data_sel: Selector,
    /// Stack segment threads borrow while inside the instance.
    pub stack_sel: Selector,
    /// Entry point: instruction index in the type's text.
    pub entry: u32,
    /// Serving type (for type checking the call).
    pub type_id: TypeId,
    /// The interface this descriptor serves.
    pub iface_id: InterfaceId,
    /// Access rights.
    pub rights: Rights,
    /// Number of 32-bit argument words the entry expects.
    pub arg_words: u16,
}

/// Size in bytes of an encoded descriptor — the paper's "32 bytes for each
/// interface".
pub const DESCRIPTOR_BYTES: usize = 32;

impl InterfaceDescriptor {
    /// Encode to the 32-byte wire/table form.
    #[must_use]
    pub fn encode(&self) -> [u8; DESCRIPTOR_BYTES] {
        let mut out = [0u8; DESCRIPTOR_BYTES];
        out[0..2].copy_from_slice(&self.code_sel.0.to_le_bytes());
        out[2..4].copy_from_slice(&self.data_sel.0.to_le_bytes());
        out[4..6].copy_from_slice(&self.stack_sel.0.to_le_bytes());
        out[6..8].copy_from_slice(&self.arg_words.to_le_bytes());
        out[8..12].copy_from_slice(&self.entry.to_le_bytes());
        out[12..16].copy_from_slice(&self.type_id.0.to_le_bytes());
        out[16..20].copy_from_slice(&self.iface_id.0.to_le_bytes());
        out[20..24].copy_from_slice(&self.rights.0.to_le_bytes());
        // bytes 24..32 reserved (zero) — room for future capabilities.
        out
    }

    /// Decode from the 32-byte form.
    #[must_use]
    pub fn decode(b: &[u8; DESCRIPTOR_BYTES]) -> Self {
        let u16at = |i: usize| u16::from_le_bytes([b[i], b[i + 1]]);
        let u32at = |i: usize| u32::from_le_bytes([b[i], b[i + 1], b[i + 2], b[i + 3]]);
        Self {
            code_sel: Selector(u16at(0)),
            data_sel: Selector(u16at(2)),
            stack_sel: Selector(u16at(4)),
            arg_words: u16at(6),
            entry: u32at(8),
            type_id: TypeId(u32at(12)),
            iface_id: InterfaceId(u32at(16)),
            rights: Rights(u32at(20)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> InterfaceDescriptor {
        InterfaceDescriptor {
            code_sel: Selector(3),
            data_sel: Selector(7),
            stack_sel: Selector(9),
            entry: 128,
            type_id: TypeId(5),
            iface_id: InterfaceId(11),
            rights: Rights::PUBLIC,
            arg_words: 4,
        }
    }

    #[test]
    fn descriptor_is_exactly_32_bytes() {
        assert_eq!(sample().encode().len(), 32);
        assert_eq!(DESCRIPTOR_BYTES, 32);
    }

    #[test]
    fn descriptor_roundtrips() {
        let d = sample();
        assert_eq!(InterfaceDescriptor::decode(&d.encode()), d);
    }

    #[test]
    fn rights_semantics() {
        assert!(Rights::PUBLIC.permits(false));
        assert!(Rights::PUBLIC.permits(true));
        assert!(!Rights::BOUND_ONLY.permits(false));
        assert!(Rights::BOUND_ONLY.permits(true));
    }

    #[test]
    fn reserved_bytes_are_zero() {
        let enc = sample().encode();
        assert!(enc[24..32].iter().all(|&b| b == 0));
    }
}
