//! The ORB — Go!'s only privileged component (the paper's Figure 6).
//!
//! > "to invoke services on other components a privileged component known as
//! > the ORB is used to load segment registers to 'switch a context' ...
//! > if component A wishes to evoke a service on component B then it
//! > indirects via the ORB component (which loads new code and data segments
//! > to perform the protected intra-machine RPC). This is done by migrating
//! > the thread from caller to callee on the call and back again on return."
//!
//! The invoke path below charges *named machine primitives* for every step —
//! descriptor fetch, rights check, continuation save, the three
//! segment-register loads, the indirect jump — and then really executes the
//! callee's verified text on the simulated CPU. Summing the charges for a
//! null call yields Go!'s Table 1 row (~73 cycles); the per-step anatomy is
//! available via [`RpcOutcome::breakdown`] for the Figure 6 bench.

use crate::component::{
    ComponentId, ComponentInstance, ComponentType, InterfaceDescriptor, InterfaceId, Rights,
    TypeId, DESCRIPTOR_BYTES,
};
use crate::sisr::{Limits, SisrVerifier, VerifiedImage, VerifyReport};
use machine::cost::{CostModel, Cycles, Primitive};
use machine::cpu::{Cpu, CpuError, Mode, Stop};
use machine::seg::{SegReg, Segment, SegmentKind, SegmentTable};
use obs::ObsHandle;

/// Errors the ORB can raise.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OrbError {
    /// The image failed SISR verification — it will not be loaded. The
    /// report carries every diagnostic the verifier pipeline proved.
    Rejected(VerifyReport),
    /// Unknown type id.
    NoSuchType(TypeId),
    /// Unknown component id.
    NoSuchComponent(ComponentId),
    /// Unknown interface id.
    NoSuchInterface(InterfaceId),
    /// Caller lacks rights on the interface (not bound).
    AccessDenied {
        /// The caller that was refused.
        caller: ComponentId,
        /// The interface it tried to invoke.
        iface: InterfaceId,
    },
    /// Wrong number of argument words for the interface signature.
    BadArity {
        /// Words the interface expects.
        expected: u16,
        /// Words supplied.
        got: usize,
    },
    /// The callee faulted; the fault was contained to its segments.
    CalleeFault(CpuError),
    /// The callee ran out of fuel (runaway) and was destroyed.
    CalleeRunaway,
    /// Physical memory arena exhausted.
    OutOfMemory,
    /// An interface was published at an entry the verifier never covered.
    UnverifiedEntry {
        /// The type whose image was verified.
        type_id: TypeId,
        /// The unverified entry point.
        entry: u32,
    },
    /// An armed fault injector failed this invocation before the thread
    /// migrated (chaos testing; see [`InvokeFaults`]). Caller state is
    /// untouched — the failure is equivalent to the ORB refusing the call.
    Injected {
        /// The injector's reason.
        reason: String,
    },
    /// A procedure summary in the image claims a footprint larger than the
    /// segment grants instances of this type would receive. The image may
    /// have verified cleanly under more generous limits elsewhere; the ORB
    /// re-checks the *summaries* against its own grants at link time, so
    /// the mismatch is caught before any instance exists.
    SummaryExceedsGrant {
        /// Head of the offending procedure.
        head: u32,
        /// The grant the summary would exceed (`"data"` or `"stack"`).
        grant: &'static str,
        /// Bytes the summary claims the procedure can touch.
        claimed: u64,
        /// Bytes the ORB's grant actually extends to.
        limit: u64,
    },
}

impl From<VerifyReport> for OrbError {
    fn from(r: VerifyReport) -> Self {
        OrbError::Rejected(r)
    }
}

/// Result of a successful RPC.
#[derive(Debug, Clone)]
pub struct RpcOutcome {
    /// Value left in register 0 by the callee.
    pub result: u32,
    /// Cycles the whole call/return consumed (overhead + callee body).
    pub cycles: Cycles,
    /// Per-primitive breakdown of those cycles.
    pub breakdown: Vec<(&'static str, Cycles)>,
}

/// Invocation-level fault injection: consulted (when armed) at the top of
/// every [`Orb::invoke`], before any machine state changes. Returning
/// `Some(reason)` fails that call with [`OrbError::Injected`]. The unarmed
/// ORB never consults an injector — the hot path stays a `None` check.
pub trait InvokeFaults: std::fmt::Debug {
    /// Should this invocation (the `call_index`-th since boot, 0-based)
    /// fail, and why?
    fn deny(&mut self, call_index: u64, caller: ComponentId, iface: InterfaceId) -> Option<String>;
}

/// The ORB: descriptor tables, loaded types/instances, the segment table,
/// and the CPU the migrated thread runs on.
#[derive(Debug)]
pub struct Orb {
    segs: SegmentTable,
    types: Vec<ComponentType>,
    instances: Vec<ComponentInstance>,
    descriptors: Vec<(InterfaceDescriptor, ComponentId)>,
    bindings: Vec<(ComponentId, InterfaceId)>,
    verifier: SisrVerifier,
    cpu: Cpu,
    next_base: u32,
    mem_limit: u32,
    faults: Option<Box<dyn InvokeFaults>>,
    obs: Option<ObsHandle>,
    invocations: u64,
}

/// Default per-instance data segment size.
const DATA_SEG_BYTES: u32 = 4096;
/// Default per-instance stack segment size.
const STACK_SEG_BYTES: u32 = 4096;
/// Execution fuel per invocation before a component is declared runaway.
const CALL_FUEL: u32 = 1_000_000;

impl Orb {
    /// An ORB managing `mem_bytes` of simulated physical memory.
    #[must_use]
    pub fn new(mem_bytes: u32, model: CostModel) -> Self {
        Self {
            segs: SegmentTable::new(),
            types: Vec::new(),
            instances: Vec::new(),
            descriptors: Vec::new(),
            bindings: Vec::new(),
            // The verifier checks static segment discipline against the
            // exact grants instances will receive.
            verifier: SisrVerifier::with_limits(
                model.clone(),
                Limits {
                    data_bytes: DATA_SEG_BYTES,
                    stack_bytes: STACK_SEG_BYTES,
                    ..Limits::default()
                },
            ),
            // Go! has no kernel mode: everything, ORB included, runs in the
            // single processor mode. Mode::Kernel here only means the
            // simulated CPU permits segment loads, which the ORB alone issues.
            cpu: Cpu::new(mem_bytes as usize, Mode::Kernel, model),
            next_base: 0,
            mem_limit: mem_bytes,
            faults: None,
            obs: None,
            invocations: 0,
        }
    }

    /// Arm an invocation fault injector (chaos testing). Replaces any
    /// previous injector.
    pub fn arm_faults(&mut self, faults: Box<dyn InvokeFaults>) {
        self.faults = Some(faults);
    }

    /// Disarm fault injection, restoring the zero-cost production path.
    pub fn disarm_faults(&mut self) {
        self.faults = None;
    }

    /// Arm the observability hub: every subsequent `load_type` emits a
    /// verification span billing the SISR scan cycles, and every `invoke`
    /// emits a span whose duration equals [`RpcOutcome::cycles`] exactly.
    /// Same zero-cost-when-disarmed discipline as [`Orb::arm_faults`].
    pub fn arm_obs(&mut self, obs: ObsHandle) {
        self.obs = Some(obs);
    }

    /// Disarm observability, restoring the zero-cost production path.
    pub fn disarm_obs(&mut self) {
        self.obs = None;
    }

    /// Invocations attempted since boot (including injected failures).
    #[must_use]
    pub fn invocations(&self) -> u64 {
        self.invocations
    }

    fn alloc(&mut self, bytes: u32) -> Result<u32, OrbError> {
        let base = self.next_base;
        let end = base.checked_add(bytes).ok_or(OrbError::OutOfMemory)?;
        if end > self.mem_limit {
            return Err(OrbError::OutOfMemory);
        }
        self.next_base = end;
        Ok(base)
    }

    /// Load a component type from raw text bytes. The text is SISR-scanned;
    /// rejection means the type never exists.
    ///
    /// # Errors
    /// [`OrbError::Rejected`] on scan failure, [`OrbError::OutOfMemory`].
    pub fn load_type(&mut self, name: &str, text: &[u8]) -> Result<TypeId, OrbError> {
        let image = self.verifier.verify(text)?;
        if let Some(obs) = self.obs.clone() {
            // The load-time verification bill: the cycles SISR spends so
            // that run time needs no traps (the ROADMAP's Table 1
            // verification-cost row).
            let mut o = obs.borrow_mut();
            let span = o.begin("gokernel", format!("verify:{name}"));
            o.advance(image.scan_cycles());
            let mut args: Vec<(&'static str, String)> =
                vec![("cycles", image.scan_cycles().to_string())];
            for p in &image.report().passes {
                args.push((p.pass.name(), p.cycles.to_string()));
            }
            o.end_with(span, args);
            o.metrics.counter_add("orb.verify.images", 1);
            o.metrics.counter_add("orb.verify.cycles", image.scan_cycles());
        }
        self.install_type(name, image)
    }

    /// Link-time summary check: every per-procedure summary the verifier
    /// computed must fit inside the data and stack segments instances of
    /// this type will be granted. `verify`/`load_type` images always pass
    /// (the verifier ran under the same limits), but [`Orb::install_type`]
    /// accepts images verified elsewhere — possibly under larger grants —
    /// and this check is what makes that safe.
    ///
    /// # Errors
    /// [`OrbError::SummaryExceedsGrant`] naming the first offending
    /// procedure (summaries are in deterministic head order).
    pub fn check_summaries(&self, image: &VerifiedImage) -> Result<(), OrbError> {
        for s in image.summaries() {
            // A statically-known access at byte offset `hi` touches the
            // word [hi, hi+4) — the same bound the verifier enforces.
            for (range, grant) in [(s.known_loads, "data"), (s.known_stores, "data")] {
                if let Some((_, hi)) = range {
                    let claimed = u64::from(hi) + 4;
                    if claimed > u64::from(DATA_SEG_BYTES) {
                        return Err(OrbError::SummaryExceedsGrant {
                            head: s.head,
                            grant,
                            claimed,
                            limit: u64::from(DATA_SEG_BYTES),
                        });
                    }
                }
            }
            let stack_claim = u64::from(s.max_stack_words) * 4;
            if stack_claim > u64::from(STACK_SEG_BYTES) {
                return Err(OrbError::SummaryExceedsGrant {
                    head: s.head,
                    grant: "stack",
                    claimed: stack_claim,
                    limit: u64::from(STACK_SEG_BYTES),
                });
            }
        }
        Ok(())
    }

    /// Load a component type from an already-verified image. The image's
    /// procedure summaries are re-checked against this ORB's segment grants
    /// (see [`Orb::check_summaries`]) — link time is the last moment the
    /// mismatch can be caught statically.
    ///
    /// # Errors
    /// [`OrbError::SummaryExceedsGrant`], [`OrbError::OutOfMemory`].
    pub fn install_type(&mut self, name: &str, image: VerifiedImage) -> Result<TypeId, OrbError> {
        self.check_summaries(&image)?;
        if let Some(obs) = self.obs.as_ref() {
            let mut o = obs.borrow_mut();
            o.metrics.counter_add("orb.link.summary_checks", 1);
            o.metrics.counter_add("orb.link.summaries", image.summaries().len() as u64);
        }
        let text_bytes = (image.program().len() * 8) as u32;
        let base = self.alloc(text_bytes.max(8))?;
        let code_sel = self
            .segs
            .install(Segment { base, limit: text_bytes.max(8), kind: SegmentKind::Code })
            .map_err(|_| OrbError::OutOfMemory)?;
        let id = TypeId(self.types.len() as u32);
        self.types.push(ComponentType { id, name: name.to_owned(), image, code_sel });
        Ok(id)
    }

    /// Instantiate a component of a loaded type, giving it fresh data and
    /// stack segments.
    ///
    /// # Errors
    /// [`OrbError::NoSuchType`], [`OrbError::OutOfMemory`].
    pub fn instantiate(&mut self, type_id: TypeId) -> Result<ComponentId, OrbError> {
        if self.types.get(type_id.0 as usize).is_none() {
            return Err(OrbError::NoSuchType(type_id));
        }
        let data_base = self.alloc(DATA_SEG_BYTES)?;
        let stack_base = self.alloc(STACK_SEG_BYTES)?;
        let data_sel = self
            .segs
            .install(Segment { base: data_base, limit: DATA_SEG_BYTES, kind: SegmentKind::Data })
            .map_err(|_| OrbError::OutOfMemory)?;
        let stack_sel = self
            .segs
            .install(Segment { base: stack_base, limit: STACK_SEG_BYTES, kind: SegmentKind::Stack })
            .map_err(|_| OrbError::OutOfMemory)?;
        let id = ComponentId(self.instances.len() as u32);
        self.instances.push(ComponentInstance { id, type_id, data_sel, stack_sel });
        Ok(id)
    }

    /// Publish an interface on an instance at `entry` (instruction index in
    /// its type's text), returning the interface id.
    ///
    /// The entry must be one the type's [`VerifiedImage`] covered — the
    /// verifier proved control-flow, stack and segment discipline *from the
    /// declared entries*, so publishing anywhere else would run unproven
    /// paths.
    ///
    /// # Errors
    /// [`OrbError::NoSuchComponent`], [`OrbError::UnverifiedEntry`].
    pub fn publish(
        &mut self,
        on: ComponentId,
        entry: u32,
        rights: Rights,
        arg_words: u16,
    ) -> Result<InterfaceId, OrbError> {
        let inst = self.instances.get(on.0 as usize).ok_or(OrbError::NoSuchComponent(on))?.clone();
        let ty = &self.types[inst.type_id.0 as usize];
        if !ty.image.entry_points().contains(&entry) {
            return Err(OrbError::UnverifiedEntry { type_id: ty.id, entry });
        }
        let iface_id = InterfaceId(self.descriptors.len() as u32);
        let desc = InterfaceDescriptor {
            code_sel: ty.code_sel,
            data_sel: inst.data_sel,
            stack_sel: inst.stack_sel,
            entry,
            type_id: inst.type_id,
            iface_id,
            rights,
            arg_words,
        };
        self.descriptors.push((desc, on));
        Ok(iface_id)
    }

    /// Bind a caller to an interface, granting invoke rights when the
    /// interface is [`Rights::BOUND_ONLY`].
    ///
    /// # Errors
    /// [`OrbError::NoSuchComponent`], [`OrbError::NoSuchInterface`].
    pub fn bind(&mut self, caller: ComponentId, iface: InterfaceId) -> Result<(), OrbError> {
        if self.instances.get(caller.0 as usize).is_none() {
            return Err(OrbError::NoSuchComponent(caller));
        }
        if self.descriptors.get(iface.0 as usize).is_none() {
            return Err(OrbError::NoSuchInterface(iface));
        }
        if !self.bindings.contains(&(caller, iface)) {
            self.bindings.push((caller, iface));
        }
        Ok(())
    }

    /// Remove a binding. Idempotent.
    pub fn unbind(&mut self, caller: ComponentId, iface: InterfaceId) {
        self.bindings.retain(|&b| b != (caller, iface));
    }

    /// The protected intra-machine RPC of Figure 6: migrate the calling
    /// thread into the callee component and back.
    ///
    /// # Errors
    /// Access/arity errors before the switch; [`OrbError::CalleeFault`] if
    /// the callee violates its segments (the fault is contained — caller
    /// state is restored).
    pub fn invoke(
        &mut self,
        caller: ComponentId,
        iface: InterfaceId,
        args: &[u32],
    ) -> Result<RpcOutcome, OrbError> {
        let call_index = self.invocations;
        self.invocations += 1;
        if let Some(f) = self.faults.as_mut() {
            if let Some(reason) = f.deny(call_index, caller, iface) {
                if let Some(obs) = self.obs.as_ref() {
                    let mut o = obs.borrow_mut();
                    o.instant("gokernel", "invoke:injected", vec![("reason", reason.clone())]);
                    o.metrics.counter_add("orb.invoke.injected", 1);
                }
                return Err(OrbError::Injected { reason });
            }
        }
        let model = self.cpu.model().clone();
        let start = self.cpu.cycles();
        let start_bd: Vec<(&'static str, Cycles)> = self.cpu.counter().breakdown().to_vec();

        // -- caller side: indirect into the ORB --------------------------
        self.cpu.counter_mut().charge(Primitive::Branch, &model);

        // Descriptor fetch: four loads (the descriptor is four words of
        // protection state — selectors+entry, type, iface, rights).
        self.cpu.counter_mut().charge_all(
            &[Primitive::Load, Primitive::Load, Primitive::Load, Primitive::Load],
            &model,
        );
        let (desc, _owner) =
            *self.descriptors.get(iface.0 as usize).ok_or(OrbError::NoSuchInterface(iface))?;

        // Rights + type check: compares and a conditional branch.
        self.cpu.counter_mut().charge_all(
            &[Primitive::Alu, Primitive::Alu, Primitive::Alu, Primitive::Alu, Primitive::Branch],
            &model,
        );
        let caller_inst =
            self.instances.get(caller.0 as usize).ok_or(OrbError::NoSuchComponent(caller))?.clone();
        let bound = self.bindings.contains(&(caller, iface));
        if !desc.rights.permits(bound) {
            return Err(OrbError::AccessDenied { caller, iface });
        }
        if usize::from(desc.arg_words) != args.len() {
            return Err(OrbError::BadArity { expected: desc.arg_words, got: args.len() });
        }

        // Entry-point limit check against the callee's code segment.
        self.cpu
            .counter_mut()
            .charge_all(&[Primitive::Load, Primitive::Load, Primitive::Alu], &model);

        // Save the caller's continuation (return selectors + pc): 4 stores.
        self.cpu.counter_mut().charge_all(
            &[Primitive::Store, Primitive::Store, Primitive::Store, Primitive::Store],
            &model,
        );

        // Arguments travel in registers; extra words are copied.
        if args.len() > 2 {
            self.cpu.counter_mut().charge(Primitive::CopyWords(args.len() as u32 - 2), &model);
        }
        for (i, &a) in args.iter().enumerate().take(machine::isa::NUM_REGS) {
            self.cpu.regs[i] = a;
        }

        // THE context switch: three segment-register loads (~3 cycles).
        self.cpu.load_selector(SegReg::Cs, desc.code_sel);
        self.cpu.load_selector(SegReg::Ds, desc.data_sel);
        self.cpu.load_selector(SegReg::Ss, desc.stack_sel);

        // Thread-migration record: note which instance the thread is in,
        // and record the borrowed stack's bounds for the return check.
        self.cpu.counter_mut().charge_all(&[Primitive::Store, Primitive::Store], &model);
        self.cpu.counter_mut().charge_all(
            &[Primitive::Load, Primitive::Load, Primitive::Store, Primitive::Store, Primitive::Alu],
            &model,
        );

        // Indirect jump to the entry point.
        self.cpu.counter_mut().charge(Primitive::BranchIndirect, &model);

        // -- callee executes its verified text ----------------------------
        let program = self.types[desc.type_id.0 as usize].image.program().clone();
        let run = self.cpu.run_from(&program, &self.segs, desc.entry, CALL_FUEL);

        // -- return path: migrate the thread back -------------------------
        // Return validation: the migration record must match.
        self.cpu.counter_mut().charge_all(
            &[Primitive::Load, Primitive::Load, Primitive::Alu, Primitive::Alu],
            &model,
        );
        // Restore continuation: 4 loads.
        self.cpu.counter_mut().charge_all(
            &[Primitive::Load, Primitive::Load, Primitive::Load, Primitive::Load],
            &model,
        );
        // Switch back: three segment loads + indirect return.
        self.cpu.load_selector(SegReg::Cs, self.types[caller_inst.type_id.0 as usize].code_sel);
        self.cpu.load_selector(SegReg::Ds, caller_inst.data_sel);
        self.cpu.load_selector(SegReg::Ss, caller_inst.stack_sel);
        self.cpu.counter_mut().charge(Primitive::BranchIndirect, &model);

        let cycles = self.cpu.cycles() - start;
        if let Some(obs) = self.obs.clone() {
            // The span rides the ORB's own cycle counter: its duration is
            // RpcOutcome::cycles to the cycle, so traces reproduce Table 1
            // numbers exactly.
            let mut o = obs.borrow_mut();
            let span = o.begin_at("gokernel", "invoke", start);
            let outcome = match &run {
                Ok(Stop::Halted) | Ok(Stop::Trap(_)) => "ok",
                Ok(Stop::OutOfFuel) => "runaway",
                Err(_) => "fault",
            };
            o.end_at_with(
                span,
                start + cycles,
                vec![
                    ("call", call_index.to_string()),
                    ("iface", iface.0.to_string()),
                    ("cycles", cycles.to_string()),
                    ("outcome", outcome.to_owned()),
                ],
            );
            o.metrics.counter_add("orb.invocations", 1);
            o.metrics.observe("orb.invoke.cycles", cycles);
        }
        match run {
            Ok(Stop::Halted) | Ok(Stop::Trap(_)) => {
                let mut breakdown = Vec::new();
                for &(label, total) in self.cpu.counter().breakdown() {
                    let before = start_bd.iter().find(|(l, _)| *l == label).map_or(0, |(_, v)| *v);
                    if total > before {
                        breakdown.push((label, total - before));
                    }
                }
                Ok(RpcOutcome { result: self.cpu.regs[0], cycles, breakdown })
            }
            Ok(Stop::OutOfFuel) => Err(OrbError::CalleeRunaway),
            Err(e) => Err(OrbError::CalleeFault(e)),
        }
    }

    /// Bytes of protection state the ORB holds: 32 per published interface
    /// plus the segment descriptors. This is the quantity the paper compares
    /// against page-table overheads.
    #[must_use]
    pub fn protection_bytes(&self) -> u64 {
        self.descriptors.len() as u64 * DESCRIPTOR_BYTES as u64 + self.segs.protection_bytes()
    }

    /// Number of published interfaces.
    #[must_use]
    pub fn interfaces(&self) -> usize {
        self.descriptors.len()
    }

    /// Number of live component instances.
    #[must_use]
    pub fn components(&self) -> usize {
        self.instances.len()
    }

    /// Total cycles the ORB's CPU has charged since construction.
    #[must_use]
    pub fn cycles(&self) -> Cycles {
        self.cpu.cycles()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use machine::isa::Instr;

    /// A null service: returns 7 in r0 immediately.
    fn null_service() -> Vec<u8> {
        machine::isa::Program::new(vec![Instr::MovImm(0, 7), Instr::Halt]).to_bytes()
    }

    /// An adder service: r0 <- r0 + r1.
    fn adder_service() -> Vec<u8> {
        machine::isa::Program::new(vec![Instr::Add(0, 1), Instr::Halt]).to_bytes()
    }

    fn orb_with_pair(service: Vec<u8>, arg_words: u16) -> (Orb, ComponentId, InterfaceId) {
        let mut orb = Orb::new(1 << 20, CostModel::pentium());
        let caller_ty = orb.load_type("caller", &null_service()).unwrap();
        let callee_ty = orb.load_type("callee", &service).unwrap();
        let caller = orb.instantiate(caller_ty).unwrap();
        let callee = orb.instantiate(callee_ty).unwrap();
        let iface = orb.publish(callee, 0, Rights::PUBLIC, arg_words).unwrap();
        (orb, caller, iface)
    }

    #[test]
    fn null_rpc_returns_result() {
        let (mut orb, caller, iface) = orb_with_pair(null_service(), 0);
        let out = orb.invoke(caller, iface, &[]).unwrap();
        assert_eq!(out.result, 7);
        assert!(out.cycles > 0);
    }

    #[test]
    fn null_rpc_lands_in_paper_band() {
        // Table 1: Go! RPC = 73 cycles. Accept the 55–95 band.
        let (mut orb, caller, iface) = orb_with_pair(null_service(), 0);
        let out = orb.invoke(caller, iface, &[]).unwrap();
        assert!(
            (55..=95).contains(&out.cycles),
            "Go! null RPC was {} cycles, expected ~73",
            out.cycles
        );
    }

    #[test]
    fn rpc_with_arguments_computes() {
        let (mut orb, caller, iface) = orb_with_pair(adder_service(), 2);
        let out = orb.invoke(caller, iface, &[20, 22]).unwrap();
        assert_eq!(out.result, 42);
    }

    #[test]
    fn arity_is_checked() {
        let (mut orb, caller, iface) = orb_with_pair(adder_service(), 2);
        assert_eq!(
            orb.invoke(caller, iface, &[1]).unwrap_err(),
            OrbError::BadArity { expected: 2, got: 1 }
        );
    }

    #[test]
    fn bound_only_interface_requires_binding() {
        let mut orb = Orb::new(1 << 20, CostModel::pentium());
        let ty = orb.load_type("svc", &null_service()).unwrap();
        let caller = orb.instantiate(ty).unwrap();
        let callee = orb.instantiate(ty).unwrap();
        let iface = orb.publish(callee, 0, Rights::BOUND_ONLY, 0).unwrap();
        assert!(matches!(orb.invoke(caller, iface, &[]), Err(OrbError::AccessDenied { .. })));
        orb.bind(caller, iface).unwrap();
        assert!(orb.invoke(caller, iface, &[]).is_ok());
        orb.unbind(caller, iface);
        assert!(orb.invoke(caller, iface, &[]).is_err());
    }

    #[test]
    fn privileged_text_is_rejected_at_load() {
        let mut orb = Orb::new(1 << 20, CostModel::pentium());
        let evil = machine::isa::Program::new(vec![Instr::Cli, Instr::Halt]).to_bytes();
        assert!(matches!(orb.load_type("evil", &evil), Err(OrbError::Rejected(_))));
        assert_eq!(orb.components(), 0);
    }

    #[test]
    fn statically_wild_store_is_rejected_at_load() {
        // The address is a compile-time constant, so the verifier's
        // segment-discipline pass refuses the image before it ever runs.
        let wild = machine::isa::Program::new(vec![
            Instr::MovImm(0, 100_000),
            Instr::Store(0, 0),
            Instr::Halt,
        ])
        .to_bytes();
        let mut orb = Orb::new(1 << 20, CostModel::pentium());
        let Err(OrbError::Rejected(report)) = orb.load_type("wild", &wild) else {
            panic!("statically wild store must be rejected");
        };
        assert!(
            report.errors().any(|d| d.pass == crate::sisr::Pass::SegmentDiscipline),
            "{report}"
        );
    }

    #[test]
    fn callee_segment_fault_is_contained() {
        // The wild address arrives as an *argument*, so it is statically
        // unknown — the verifier must accept, and the segmentation hardware
        // contains the fault at run time.
        let wild = machine::isa::Program::new(vec![Instr::Store(0, 1), Instr::Halt]).to_bytes();
        let (mut orb, caller, iface) = orb_with_pair(wild, 1);
        assert!(matches!(
            orb.invoke(caller, iface, &[100_000]),
            Err(OrbError::CalleeFault(CpuError::Segment(_)))
        ));
        // The ORB survives and other services still work.
        let ty = orb.load_type("ok", &null_service()).unwrap();
        let c2 = orb.instantiate(ty).unwrap();
        let if2 = orb.publish(c2, 0, Rights::PUBLIC, 0).unwrap();
        assert_eq!(orb.invoke(caller, if2, &[]).unwrap().result, 7);
    }

    #[test]
    fn publishing_an_unverified_entry_is_refused() {
        let (mut orb, _caller, _iface) = orb_with_pair(null_service(), 0);
        let ty = orb.load_type("svc", &null_service()).unwrap();
        let inst = orb.instantiate(ty).unwrap();
        assert_eq!(
            orb.publish(inst, 1, Rights::PUBLIC, 0).unwrap_err(),
            OrbError::UnverifiedEntry { type_id: ty, entry: 1 }
        );
    }

    #[test]
    fn runaway_callee_is_stopped() {
        let spin = machine::isa::Program::new(vec![Instr::Jmp(0)]).to_bytes();
        let (mut orb, caller, iface) = orb_with_pair(spin, 0);
        assert_eq!(orb.invoke(caller, iface, &[]).unwrap_err(), OrbError::CalleeRunaway);
    }

    #[test]
    fn protection_bytes_are_32_per_interface_plus_segments() {
        let (orb, _, _) = orb_with_pair(null_service(), 0);
        // 1 interface × 32 B + 6 segment descriptors × 8 B (2 types' code +
        // 2 instances × data+stack).
        assert_eq!(orb.protection_bytes(), 32 + 6 * 8);
    }

    /// Denies a fixed set of call indices.
    #[derive(Debug)]
    struct DropCalls(std::collections::BTreeSet<u64>);

    impl InvokeFaults for DropCalls {
        fn deny(&mut self, i: u64, _c: ComponentId, _f: InterfaceId) -> Option<String> {
            self.0.contains(&i).then(|| format!("call {i} dropped"))
        }
    }

    #[test]
    fn injected_invocation_faults_are_contained_and_disarmable() {
        let (mut orb, caller, iface) = orb_with_pair(null_service(), 0);
        orb.invoke(caller, iface, &[]).unwrap(); // call 0
        let cycles_before = orb.cycles();
        orb.arm_faults(Box::new(DropCalls([1, 2].into())));
        for _ in 0..2 {
            assert!(matches!(
                orb.invoke(caller, iface, &[]),
                Err(OrbError::Injected { ref reason }) if reason.contains("dropped")
            ));
        }
        // An injected failure happens before the thread migrates: no cycles
        // were charged and the ORB is fully functional afterwards.
        assert_eq!(orb.cycles(), cycles_before);
        assert_eq!(orb.invoke(caller, iface, &[]).unwrap().result, 7);
        orb.disarm_faults();
        assert_eq!(orb.invoke(caller, iface, &[]).unwrap().result, 7);
        assert_eq!(orb.invocations(), 5);
    }

    #[test]
    fn breakdown_sums_to_cycles() {
        let (mut orb, caller, iface) = orb_with_pair(null_service(), 0);
        let out = orb.invoke(caller, iface, &[]).unwrap();
        let sum: Cycles = out.breakdown.iter().map(|(_, v)| v).sum();
        assert_eq!(sum, out.cycles);
        assert!(out.breakdown.iter().any(|(l, _)| *l == "seg-reg-load"));
    }

    #[test]
    fn oversized_summary_is_refused_at_link_time() {
        // Verified cleanly under a generous 64 KiB data grant...
        let roomy = SisrVerifier::with_limits(
            CostModel::pentium(),
            Limits { data_bytes: 64 * 1024, ..Limits::default() },
        );
        let img = roomy
            .verify_program(&machine::isa::Program::new(vec![
                Instr::MovImm(0, 8192),
                Instr::Store(0, 0),
                Instr::Halt,
            ]))
            .expect("clean under roomy limits");
        // ...but this ORB only grants 4 KiB data segments, and the summary
        // says so before any instance exists.
        let mut orb = Orb::new(1 << 20, CostModel::pentium());
        assert_eq!(
            orb.install_type("roomy", img).unwrap_err(),
            OrbError::SummaryExceedsGrant {
                head: 0,
                grant: "data",
                claimed: 8196,
                limit: u64::from(DATA_SEG_BYTES)
            }
        );
        assert_eq!(orb.components(), 0);
    }

    #[test]
    fn in_grant_summaries_link_cleanly() {
        let (orb, _, _) = orb_with_pair(null_service(), 0);
        for ty in &orb.types {
            orb.check_summaries(&ty.image).expect("own-grant images always fit");
            assert!(!ty.image.summaries().is_empty(), "accepted images carry summaries");
        }
    }

    #[test]
    fn seg_load_cost_is_six_per_round_trip() {
        // 3 loads in, 3 loads back — the paper's "3 cycles" context switch,
        // twice.
        let (mut orb, caller, iface) = orb_with_pair(null_service(), 0);
        let out = orb.invoke(caller, iface, &[]).unwrap();
        let seg: Cycles =
            out.breakdown.iter().filter(|(l, _)| *l == "seg-reg-load").map(|(_, v)| v).sum();
        assert_eq!(seg, 6);
    }
}
