//! SISR — Software-based Instruction-Set Reduction.
//!
//! > "on loading, code is scanned for illegal operations and if detected the
//! > code is rejected insuring adequate process protection. That is, SISR
//! > removes the need for two separate processing modes by making use of
//! > code-scanning and segmentation memory protection."
//!
//! The verifier works from the **byte form** of a text section, exactly as a
//! real loader must: it decodes every 8-byte word and rejects the image if
//! any word is (a) undecodable or (b) a privileged instruction. Acceptance is
//! witnessed by the [`VerifiedImage`] typestate — the ORB will only install
//! component types from a `VerifiedImage`, so "unscanned code never runs" is
//! enforced by construction, not by convention.
//!
//! The scan is a *load-time* cost. Go! trades a one-off linear pass per image
//! for the removal of *every* per-call trap — the economics behind Table 1.

use machine::cost::{CostModel, CycleCounter, Cycles, Primitive};
use machine::isa::{Instr, Program};

/// Why an image was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SisrError {
    /// The text length is not a multiple of the instruction width.
    MisalignedText {
        /// Byte length of the offending image.
        len: usize,
    },
    /// A word failed to decode — treated as hostile, never skipped.
    UndecodableWord {
        /// Index (in instructions) of the bad word.
        index: usize,
    },
    /// A privileged instruction was found.
    PrivilegedInstruction {
        /// Index (in instructions) of the offending instruction.
        index: usize,
        /// The instruction.
        instr: Instr,
    },
}

impl std::fmt::Display for SisrError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SisrError::MisalignedText { len } => {
                write!(f, "text section of {len} bytes is not instruction-aligned")
            }
            SisrError::UndecodableWord { index } => {
                write!(f, "undecodable word at instruction index {index}")
            }
            SisrError::PrivilegedInstruction { index, instr } => {
                write!(f, "privileged instruction {instr:?} at index {index}")
            }
        }
    }
}

impl std::error::Error for SisrError {}

/// A text image that has passed the SISR scan. Can only be constructed by
/// [`SisrVerifier::verify`]; holding one is proof the program contains no
/// privileged instructions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifiedImage {
    program: Program,
    scan_cycles: Cycles,
}

impl VerifiedImage {
    /// The verified program.
    #[must_use]
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The one-off load-time cycles the scan cost.
    #[must_use]
    pub fn scan_cycles(&self) -> Cycles {
        self.scan_cycles
    }
}

/// The load-time code scanner.
#[derive(Debug, Clone, Default)]
pub struct SisrVerifier {
    model: CostModel,
}

impl SisrVerifier {
    /// A verifier charging scan work under the given cost model.
    #[must_use]
    pub fn new(model: CostModel) -> Self {
        Self { model }
    }

    /// Scan a raw text section.
    ///
    /// Charges one load + one compare per instruction word (the scan is a
    /// single linear pass) and returns a [`VerifiedImage`] on acceptance.
    ///
    /// # Errors
    /// [`SisrError`] describing the first reason for rejection.
    pub fn verify(&self, text: &[u8]) -> Result<VerifiedImage, SisrError> {
        if !text.len().is_multiple_of(8) {
            return Err(SisrError::MisalignedText { len: text.len() });
        }
        let mut counter = CycleCounter::new();
        let mut instrs = Vec::with_capacity(text.len() / 8);
        for (index, chunk) in text.chunks_exact(8).enumerate() {
            counter.charge(Primitive::Load, &self.model);
            counter.charge(Primitive::Alu, &self.model);
            let mut w = [0u8; 8];
            w.copy_from_slice(chunk);
            let instr =
                Instr::decode(w).ok_or(SisrError::UndecodableWord { index })?;
            if instr.is_privileged() {
                return Err(SisrError::PrivilegedInstruction { index, instr });
            }
            instrs.push(instr);
        }
        Ok(VerifiedImage { program: Program::new(instrs), scan_cycles: counter.total() })
    }

    /// Convenience: verify an already-decoded program by scanning its bytes.
    ///
    /// # Errors
    /// See [`Self::verify`].
    pub fn verify_program(&self, program: &Program) -> Result<VerifiedImage, SisrError> {
        self.verify(&program.to_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use machine::seg::SegReg;

    fn verifier() -> SisrVerifier {
        SisrVerifier::new(CostModel::pentium())
    }

    #[test]
    fn accepts_clean_program() {
        let p = Program::new(vec![
            Instr::MovImm(0, 1),
            Instr::Add(0, 0),
            Instr::Trap(0x30), // traps are fine: they cannot subvert protection
            Instr::Halt,
        ]);
        let img = verifier().verify_program(&p).unwrap();
        assert_eq!(img.program(), &p);
        assert!(img.scan_cycles() > 0);
    }

    #[test]
    fn rejects_each_privileged_instruction() {
        let privileged = [
            Instr::LoadSegReg(SegReg::Ds, 0),
            Instr::Cli,
            Instr::Sti,
            Instr::LoadPageTable(0),
            Instr::IoIn(0, 0x60),
            Instr::IoOut(0, 0x60),
            Instr::Iret,
        ];
        for bad in privileged {
            let p = Program::new(vec![Instr::Nop, bad, Instr::Halt]);
            let err = verifier().verify_program(&p).unwrap_err();
            assert_eq!(
                err,
                SisrError::PrivilegedInstruction { index: 1, instr: bad },
                "{bad:?} must be rejected"
            );
        }
    }

    #[test]
    fn rejects_misaligned_and_undecodable_text() {
        assert_eq!(verifier().verify(&[0u8; 9]), Err(SisrError::MisalignedText { len: 9 }));
        let mut bytes = Program::new(vec![Instr::Nop]).to_bytes();
        bytes.extend_from_slice(&[0xff, 0, 0, 0, 0, 0, 0, 0]);
        assert_eq!(verifier().verify(&bytes), Err(SisrError::UndecodableWord { index: 1 }));
    }

    #[test]
    fn scan_cost_is_linear_in_text_length() {
        let short = Program::new(vec![Instr::Nop; 10]);
        let long = Program::new(vec![Instr::Nop; 1000]);
        let v = verifier();
        let c_short = v.verify_program(&short).unwrap().scan_cycles();
        let c_long = v.verify_program(&long).unwrap().scan_cycles();
        assert_eq!(c_long, c_short * 100);
    }

    #[test]
    fn empty_image_is_valid() {
        let img = verifier().verify(&[]).unwrap();
        assert!(img.program().is_empty());
        assert_eq!(img.scan_cycles(), 0);
    }
}
