//! SISR — Software-based Instruction-Set Reduction.
//!
//! > "on loading, code is scanned for illegal operations and if detected the
//! > code is rejected insuring adequate process protection. That is, SISR
//! > removes the need for two separate processing modes by making use of
//! > code-scanning and segmentation memory protection."
//!
//! The verifier works from the **byte form** of a text section, exactly as a
//! real loader must, and runs a pipeline of passes, each proving one fact the
//! zero-kernel design depends on:
//!
//! 1. **decode** — the text is instruction-aligned, every 8-byte word
//!    decodes, and no decoded word is privileged. Undecodable bytes are
//!    treated as hostile, never skipped.
//! 2. **control-flow** — a CFG is built over the fixed-width ISA: every
//!    declared entry point and every jump/branch/call target lands in-bounds
//!    on an instruction boundary, and no path can fall off the end of the
//!    text into unowned memory.
//! 3. **summaries** — the text is partitioned into *procedures* (entry
//!    points plus call targets), and each procedure's intra-procedural body
//!    and callee set are collected. This is the structural skeleton the two
//!    dataflow passes run over.
//! 4. **stack-discipline** — a bottom-up, per-procedure dataflow proves
//!    calls and returns balance on every path, call depth stays under the
//!    granted limit, and the data stack neither underflows nor outgrows its
//!    segment. Each procedure is analysed once per distinct entry stack
//!    height and its net stack effects become a reusable summary, so cost is
//!    ~linear in procedure count instead of call-*path* count (the v2
//!    verifier keyed states by concrete call stacks, which explodes
//!    combinatorially as components call through each other).
//! 5. **segment-discipline** — constant propagation over the registers,
//!    per procedure and per distinct entry register vector, with callee
//!    transfer summaries applied at call sites. Loads/stores whose address
//!    is statically known to escape the granted data segment are rejected;
//!    statically unknown addresses remain guarded by the segmentation
//!    hardware at run time.
//! 6. **reachability** — instructions no entry point can reach are reported
//!    as dead code (warnings; dead code is suspicious but not unsafe).
//!
//! Recursion is handled by a fixpoint over the call graph: recursive
//! procedures exceed every finite verified call depth, so a visited
//! call-graph cycle is rejected with [`DiagnosticKind::CallDepthExceeded`]
//! — exactly the verdict the v2 path enumeration reached by walking the
//! cycle to the depth bound.
//!
//! Diagnostics are **collected, not first-error bailed**: a rejection names
//! every flaw each pass could prove, with the pass that found it. Acceptance
//! is witnessed by the [`VerifiedImage`] typestate — the ORB will only
//! install component types from a `VerifiedImage`, so "unscanned code never
//! runs" is enforced by construction, not by convention. An accepted image
//! additionally carries one [`ProcedureSummary`] per procedure: the ORB
//! re-checks those summaries against its segment grants at link time.
//!
//! Every pass charges named machine primitives into a cycle counter: the
//! verification pipeline is a *load-time* cost, and Go! trades this one-off
//! linear-ish pass per image for the removal of *every* per-call trap — the
//! economics behind Table 1.
//!
//! All analysis state lives in ordered (`BTree`) containers and worklists
//! are drained in sorted order, so reports — diagnostics, pass bills, and
//! summaries — are byte-identical across replays, matching the golden-trace
//! guarantee the observability layer makes.
//!
//! The retired v2 concrete-dataflow passes survive behind
//! `cfg(any(test, feature = "slow-props"))` in [`oracle`] as the
//! differential-testing oracle for the summary passes.

use machine::cost::{CostModel, CycleCounter, Cycles, Primitive};
use machine::isa::{rel_target, Flow, Instr, Program};
use std::collections::{BTreeMap, BTreeSet};

/// One pass of the verification pipeline, in pipeline order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Pass {
    /// Alignment, decodability, and the privileged-opcode scan.
    Decode,
    /// CFG construction and jump/entry/fallthrough validation.
    ControlFlow,
    /// Procedure partition and call-graph construction.
    Summary,
    /// Call/return balance and data-stack depth, via procedure summaries.
    StackDiscipline,
    /// Constant-propagation check of statically-decidable addresses, via
    /// per-procedure transfer summaries.
    SegmentDiscipline,
    /// Dead-code reporting from the entry points.
    Reachability,
}

impl Pass {
    /// All passes, in the order the pipeline runs them.
    pub const ALL: [Pass; 6] = [
        Pass::Decode,
        Pass::ControlFlow,
        Pass::Summary,
        Pass::StackDiscipline,
        Pass::SegmentDiscipline,
        Pass::Reachability,
    ];

    /// The pass's name as it appears in diagnostics.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Pass::Decode => "decode",
            Pass::ControlFlow => "control-flow",
            Pass::Summary => "summaries",
            Pass::StackDiscipline => "stack-discipline",
            Pass::SegmentDiscipline => "segment-discipline",
            Pass::Reachability => "reachability",
        }
    }
}

impl std::fmt::Display for Pass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// How bad a diagnostic is. Any `Error` rejects the image; `Warning`s ride
/// along on the accepted [`VerifiedImage`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Suspicious but not unsafe (e.g. dead code).
    Warning,
    /// The image must not be installed.
    Error,
}

/// What a pass proved wrong (or suspicious) about the image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DiagnosticKind {
    /// The text length is not a multiple of the instruction width.
    MisalignedText {
        /// Byte length of the offending image.
        len: usize,
    },
    /// A word failed to decode — treated as hostile, never skipped.
    UndecodableWord,
    /// A privileged instruction was found.
    PrivilegedInstruction {
        /// The instruction.
        instr: Instr,
    },
    /// A declared entry point is outside the text.
    BadEntryPoint {
        /// The declared entry (instruction index).
        entry: u32,
    },
    /// A jump or branch target escapes the text section.
    JumpOutOfBounds {
        /// The computed target (instruction index, after wrapping).
        target: u32,
    },
    /// A call target escapes the text section.
    CallOutOfBounds {
        /// The call's absolute target.
        target: u32,
    },
    /// Execution can run off the end of the text into unowned memory.
    FallthroughOffEnd,
    /// A path reaches `Ret` with no matching `Call`.
    ReturnWithoutCall,
    /// A path nests calls deeper than the verifier's bound — including any
    /// reachable call-graph cycle, which exceeds every finite bound.
    CallDepthExceeded {
        /// The depth at which the bound was hit.
        depth: usize,
    },
    /// A path pops the data stack below empty.
    DataStackUnderflow,
    /// A path pushes the data stack past its segment.
    DataStackOverflow {
        /// Stack depth (in words) the path reached.
        words: u32,
    },
    /// A load whose address is statically known to escape the data segment.
    OutOfSegmentLoad {
        /// The offending byte offset.
        addr: u32,
    },
    /// A store whose address is statically known to escape the data segment.
    OutOfSegmentStore {
        /// The offending byte offset.
        addr: u32,
    },
    /// The dataflow state budget was exhausted: the program is too tangled
    /// to verify, and an unverifiable program is a rejected program.
    AnalysisBudgetExceeded {
        /// States explored before giving up.
        states: usize,
    },
    /// An instruction no entry point can reach.
    UnreachableCode,
}

/// One finding of one pass, anchored (where meaningful) to an instruction
/// index in the scanned text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// The pass that proved it.
    pub pass: Pass,
    /// Error (rejects) or warning (rides along).
    pub severity: Severity,
    /// Instruction index the finding is anchored to, when there is one.
    pub index: Option<usize>,
    /// The finding itself.
    pub kind: DiagnosticKind,
}

impl Diagnostic {
    fn error(pass: Pass, index: Option<usize>, kind: DiagnosticKind) -> Self {
        Self { pass, severity: Severity::Error, index, kind }
    }

    fn warning(pass: Pass, index: Option<usize>, kind: DiagnosticKind) -> Self {
        Self { pass, severity: Severity::Warning, index, kind }
    }
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let sev = match self.severity {
            Severity::Warning => "warning",
            Severity::Error => "error",
        };
        write!(f, "[{}] {sev}", self.pass)?;
        if let Some(i) = self.index {
            write!(f, " at {i}")?;
        }
        write!(f, ": ")?;
        match &self.kind {
            DiagnosticKind::MisalignedText { len } => {
                write!(f, "text section of {len} bytes is not instruction-aligned")
            }
            DiagnosticKind::UndecodableWord => write!(f, "undecodable word"),
            DiagnosticKind::PrivilegedInstruction { instr } => {
                write!(f, "privileged instruction {instr:?}")
            }
            DiagnosticKind::BadEntryPoint { entry } => {
                write!(f, "entry point {entry} is outside the text")
            }
            DiagnosticKind::JumpOutOfBounds { target } => {
                write!(f, "jump target {target} is outside the text")
            }
            DiagnosticKind::CallOutOfBounds { target } => {
                write!(f, "call target {target} is outside the text")
            }
            DiagnosticKind::FallthroughOffEnd => {
                write!(f, "execution can fall off the end of the text")
            }
            DiagnosticKind::ReturnWithoutCall => write!(f, "return without a matching call"),
            DiagnosticKind::CallDepthExceeded { depth } => {
                write!(f, "call depth exceeds the verifier bound ({depth})")
            }
            DiagnosticKind::DataStackUnderflow => write!(f, "data stack underflows"),
            DiagnosticKind::DataStackOverflow { words } => {
                write!(f, "data stack grows past its segment ({words} words)")
            }
            DiagnosticKind::OutOfSegmentLoad { addr } => {
                write!(f, "load from byte offset {addr} escapes the data segment")
            }
            DiagnosticKind::OutOfSegmentStore { addr } => {
                write!(f, "store to byte offset {addr} escapes the data segment")
            }
            DiagnosticKind::AnalysisBudgetExceeded { states } => {
                write!(f, "analysis budget exhausted after {states} states; unverifiable")
            }
            DiagnosticKind::UnreachableCode => write!(f, "unreachable from any entry point"),
        }
    }
}

/// What one pass cost and found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PassReport {
    /// Which pass.
    pub pass: Pass,
    /// Load-time cycles the pass charged.
    pub cycles: Cycles,
    /// Errors the pass raised.
    pub errors: usize,
    /// Warnings the pass raised.
    pub warnings: usize,
}

/// The full result of a verification pipeline run: every diagnostic from
/// every pass that ran, per-pass cost/outcome records, and the total
/// load-time cycle bill.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyReport {
    /// All diagnostics, in pass order.
    pub diagnostics: Vec<Diagnostic>,
    /// One record per pass that ran (passes gated out by earlier errors are
    /// absent — their facts were never established).
    pub passes: Vec<PassReport>,
    /// Total load-time cycles across all passes.
    pub cycles: Cycles,
}

impl VerifyReport {
    /// Number of error-severity diagnostics.
    #[must_use]
    pub fn error_count(&self) -> usize {
        self.diagnostics.iter().filter(|d| d.severity == Severity::Error).count()
    }

    /// Number of warning-severity diagnostics.
    #[must_use]
    pub fn warning_count(&self) -> usize {
        self.diagnostics.iter().filter(|d| d.severity == Severity::Warning).count()
    }

    /// Whether any pass raised an error.
    #[must_use]
    pub fn has_errors(&self) -> bool {
        self.error_count() > 0
    }

    /// The error-severity diagnostics.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(|d| d.severity == Severity::Error)
    }

    /// The record for one pass, if it ran.
    #[must_use]
    pub fn pass(&self, pass: Pass) -> Option<&PassReport> {
        self.passes.iter().find(|p| p.pass == pass)
    }
}

impl std::fmt::Display for VerifyReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} error(s), {} warning(s) in {} cycles",
            self.error_count(),
            self.warning_count(),
            self.cycles
        )?;
        for d in &self.diagnostics {
            write!(f, "\n  {d}")?;
        }
        Ok(())
    }
}

impl std::error::Error for VerifyReport {}

/// The resource grants the verifier checks static discipline against — the
/// segment sizes the ORB will actually give an instance, plus the analysis
/// bounds that keep verification decidable. A program that exceeds the
/// analysis bounds is *unverifiable*, and unverifiable code is rejected: the
/// conservative direction is the safe one for a loader.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Limits {
    /// Bytes of data segment an instance will be granted.
    pub data_bytes: u32,
    /// Bytes of stack segment an instance will be granted.
    pub stack_bytes: u32,
    /// Maximum verified call-nesting depth.
    pub max_call_depth: usize,
    /// Maximum abstract states explored per dataflow pass.
    pub state_budget: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Self { data_bytes: 4096, stack_bytes: 4096, max_call_depth: 64, state_budget: 1 << 16 }
    }
}

/// What the verifier proved about one procedure — the bottom-up summary the
/// dataflow passes compute and the ORB re-checks against its segment grants
/// at link time. Procedures are the entry points plus every call target;
/// effects are relative to the procedure's entry so a summary is reusable
/// at every call site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProcedureSummary {
    /// Instruction index of the procedure head.
    pub head: u32,
    /// Instructions in the procedure's intra-procedural body.
    pub instructions: usize,
    /// Heads of the procedures this one calls, sorted.
    pub callees: Vec<u32>,
    /// Whether the procedure sits on a call-graph cycle. Never true on an
    /// accepted image — recursion is rejected — but reported for rejected
    /// ones.
    pub recursive: bool,
    /// Net data-stack effects (in words, relative to entry) observed at
    /// returns; empty when the procedure never returns to a caller.
    pub stack_effects: Vec<i64>,
    /// Peak data-stack growth above the entry height, in words.
    pub max_stack_words: u32,
    /// Lowest/highest byte offset of statically-known loads, if any.
    pub known_loads: Option<(u32, u32)>,
    /// Lowest/highest byte offset of statically-known stores, if any.
    pub known_stores: Option<(u32, u32)>,
    /// Whether any load address is statically unknown (hardware-guarded).
    pub unknown_loads: bool,
    /// Whether any store address is statically unknown (hardware-guarded).
    pub unknown_stores: bool,
}

impl std::fmt::Display for ProcedureSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        fn range(r: Option<(u32, u32)>, unknown: bool) -> String {
            match (r, unknown) {
                (None, false) => "none".to_owned(),
                (None, true) => "dynamic".to_owned(),
                (Some((lo, hi)), false) => format!("[{lo}..{hi}]"),
                (Some((lo, hi)), true) => format!("[{lo}..{hi}]+dynamic"),
            }
        }
        let effects = if self.stack_effects.is_empty() {
            "no-return".to_owned()
        } else {
            let parts: Vec<String> = self.stack_effects.iter().map(|d| format!("{d:+}")).collect();
            parts.join("/")
        };
        write!(
            f,
            "proc@{}: {} instr, callees {:?}, stack peak {}w net {}, loads {}, stores {}",
            self.head,
            self.instructions,
            self.callees,
            self.max_stack_words,
            effects,
            range(self.known_loads, self.unknown_loads),
            range(self.known_stores, self.unknown_stores),
        )
    }
}

/// A text image that has passed every verification pass. Can only be
/// constructed by [`SisrVerifier::verify`]; holding one is proof the program
/// decodes cleanly, contains no privileged instruction, keeps control flow
/// inside the text, balances its calls, respects its stack bound, and makes
/// no statically-decidable out-of-segment access from the declared entries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifiedImage {
    program: Program,
    entry_points: Vec<u32>,
    report: VerifyReport,
    summaries: Vec<ProcedureSummary>,
}

impl VerifiedImage {
    /// The verified program.
    #[must_use]
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The entry points the verification covered. The ORB refuses to publish
    /// an interface at any other entry — facts were only proven from these.
    #[must_use]
    pub fn entry_points(&self) -> &[u32] {
        &self.entry_points
    }

    /// The full pass-by-pass report (warnings included).
    #[must_use]
    pub fn report(&self) -> &VerifyReport {
        &self.report
    }

    /// The one-off load-time cycles the whole pipeline cost.
    #[must_use]
    pub fn scan_cycles(&self) -> Cycles {
        self.report.cycles
    }

    /// The per-procedure summaries the dataflow passes proved, sorted by
    /// head. The ORB checks these against its segment grants at link time.
    #[must_use]
    pub fn summaries(&self) -> &[ProcedureSummary] {
        &self.summaries
    }
}

/// The load-time verifier.
#[derive(Debug, Clone, Default)]
pub struct SisrVerifier {
    model: CostModel,
    limits: Limits,
}

/// Abstract register value for the segment-discipline pass: either a value
/// every path agrees on (a must-fact) or statically unknown. `Ord` so
/// register vectors can key ordered (deterministic) containers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum AbsVal {
    Const(u32),
    Unknown,
}

impl AbsVal {
    fn join(self, other: AbsVal) -> AbsVal {
        if self == other {
            self
        } else {
            AbsVal::Unknown
        }
    }
}

/// Abstract register file (the ISA has 8 registers).
type Regs = [AbsVal; 8];

/// The structural skeleton the summary pass computes: procedure heads,
/// intra-procedural bodies, and the call graph.
struct ProcGraph {
    /// Procedure heads (entries plus call targets), sorted.
    heads: Vec<u32>,
    /// Intra-procedural body of each procedure (sorted instruction indices).
    bodies: BTreeMap<u32, Vec<u32>>,
    /// Call-graph edges, per caller head.
    callees: BTreeMap<u32, BTreeSet<u32>>,
}

/// What the stack pass learned, for the summaries.
struct StackFacts {
    /// Net stack deltas at returns, per head (union over entry heights).
    deltas: BTreeMap<u32, BTreeSet<i64>>,
    /// Peak growth above entry, per head.
    max_height: BTreeMap<u32, u32>,
    /// Heads on a visited call-graph cycle.
    cyclic: BTreeSet<u32>,
}

/// What the segment pass learned, for the summaries.
#[derive(Default)]
struct SegAccess {
    known_loads: Option<(u32, u32)>,
    known_stores: Option<(u32, u32)>,
    unknown_loads: bool,
    unknown_stores: bool,
}

fn widen(range: &mut Option<(u32, u32)>, addr: u32) {
    *range = Some(match *range {
        None => (addr, addr),
        Some((lo, hi)) => (lo.min(addr), hi.max(addr)),
    });
}

impl SisrVerifier {
    /// A verifier charging pass work under the given cost model, with
    /// default [`Limits`].
    #[must_use]
    pub fn new(model: CostModel) -> Self {
        Self { model, limits: Limits::default() }
    }

    /// A verifier with explicit segment grants and analysis bounds.
    #[must_use]
    pub fn with_limits(model: CostModel, limits: Limits) -> Self {
        Self { model, limits }
    }

    /// The limits this verifier checks against.
    #[must_use]
    pub fn limits(&self) -> &Limits {
        &self.limits
    }

    /// Verify a raw text section with the default entry point (index 0; an
    /// empty text has no entries and is trivially valid).
    ///
    /// # Errors
    /// The full [`VerifyReport`] naming every flaw each pass could prove.
    pub fn verify(&self, text: &[u8]) -> Result<VerifiedImage, VerifyReport> {
        if text.is_empty() {
            self.verify_with_entries(text, &[])
        } else {
            self.verify_with_entries(text, &[0])
        }
    }

    /// Verify a raw text section against explicit entry points.
    ///
    /// # Errors
    /// See [`Self::verify`].
    pub fn verify_with_entries(
        &self,
        text: &[u8],
        entries: &[u32],
    ) -> Result<VerifiedImage, VerifyReport> {
        let mut diags: Vec<Diagnostic> = Vec::new();
        let mut passes: Vec<PassReport> = Vec::new();
        let mut counter = CycleCounter::new();

        let program = self.pass_decode(text, &mut diags, &mut passes, &mut counter);
        if let Some(program) = program {
            let cfg_clean =
                self.pass_control_flow(&program, entries, &mut diags, &mut passes, &mut counter);
            let mut summaries = Vec::new();
            if cfg_clean {
                // The dataflow passes walk CFG edges; they only run once the
                // control-flow pass has proven every edge stays in the text.
                let graph = self.pass_summaries(&program, entries, &mut passes, &mut counter);
                let stack = self.pass_stack_discipline(
                    &program,
                    entries,
                    &mut diags,
                    &mut passes,
                    &mut counter,
                );
                let seg = self.pass_segment_discipline(
                    &program,
                    entries,
                    &graph,
                    &mut diags,
                    &mut passes,
                    &mut counter,
                );
                self.pass_reachability(&program, entries, &mut diags, &mut passes, &mut counter);
                summaries = Self::assemble_summaries(&graph, &stack, &seg);
            }
            let report = VerifyReport { diagnostics: diags, passes, cycles: counter.total() };
            if report.has_errors() {
                Err(report)
            } else {
                Ok(VerifiedImage { program, entry_points: entries.to_vec(), report, summaries })
            }
        } else {
            Err(VerifyReport { diagnostics: diags, passes, cycles: counter.total() })
        }
    }

    /// Convenience: verify an already-decoded program by scanning its bytes,
    /// with the default entry point.
    ///
    /// # Errors
    /// See [`Self::verify`].
    pub fn verify_program(&self, program: &Program) -> Result<VerifiedImage, VerifyReport> {
        self.verify(&program.to_bytes())
    }

    /// Convenience: verify an already-decoded program against explicit
    /// entry points.
    ///
    /// # Errors
    /// See [`Self::verify`].
    pub fn verify_program_with_entries(
        &self,
        program: &Program,
        entries: &[u32],
    ) -> Result<VerifiedImage, VerifyReport> {
        self.verify_with_entries(&program.to_bytes(), entries)
    }

    fn charge_visit(&self, counter: &mut CycleCounter) {
        counter.charge(Primitive::Load, &self.model);
        counter.charge(Primitive::Alu, &self.model);
    }

    fn finish_pass(
        pass: Pass,
        diags_before: usize,
        diags: &[Diagnostic],
        snap: Cycles,
        counter: &CycleCounter,
        passes: &mut Vec<PassReport>,
    ) {
        let new = &diags[diags_before..];
        passes.push(PassReport {
            pass,
            cycles: counter.since(snap),
            errors: new.iter().filter(|d| d.severity == Severity::Error).count(),
            warnings: new.iter().filter(|d| d.severity == Severity::Warning).count(),
        });
    }

    /// Pass 1: alignment, decodability, privilege. Returns the decoded
    /// program only when the whole text is clean — later passes analyse
    /// instruction semantics and need every word trustworthy.
    fn pass_decode(
        &self,
        text: &[u8],
        diags: &mut Vec<Diagnostic>,
        passes: &mut Vec<PassReport>,
        counter: &mut CycleCounter,
    ) -> Option<Program> {
        let snap = counter.total();
        let before = diags.len();
        let mut program = None;
        if text.len().is_multiple_of(8) {
            let mut instrs = Vec::with_capacity(text.len() / 8);
            for (index, chunk) in text.chunks_exact(8).enumerate() {
                self.charge_visit(counter);
                let mut w = [0u8; 8];
                w.copy_from_slice(chunk);
                match Instr::decode(w) {
                    None => diags.push(Diagnostic::error(
                        Pass::Decode,
                        Some(index),
                        DiagnosticKind::UndecodableWord,
                    )),
                    Some(instr) if instr.is_privileged() => diags.push(Diagnostic::error(
                        Pass::Decode,
                        Some(index),
                        DiagnosticKind::PrivilegedInstruction { instr },
                    )),
                    Some(instr) => instrs.push(instr),
                }
            }
            if diags.len() == before {
                program = Some(Program::new(instrs));
            }
        } else {
            diags.push(Diagnostic::error(
                Pass::Decode,
                None,
                DiagnosticKind::MisalignedText { len: text.len() },
            ));
        }
        Self::finish_pass(Pass::Decode, before, diags, snap, counter, passes);
        program
    }

    /// Pass 2: entry points and every CFG edge must land in the text, and no
    /// path may fall off its end. Returns whether the CFG is fully valid.
    fn pass_control_flow(
        &self,
        program: &Program,
        entries: &[u32],
        diags: &mut Vec<Diagnostic>,
        passes: &mut Vec<PassReport>,
        counter: &mut CycleCounter,
    ) -> bool {
        let snap = counter.total();
        let before = diags.len();
        let len = program.len() as u32;
        for &entry in entries {
            counter.charge(Primitive::Alu, &self.model);
            if entry >= len {
                diags.push(Diagnostic::error(
                    Pass::ControlFlow,
                    None,
                    DiagnosticKind::BadEntryPoint { entry },
                ));
            }
        }
        for (pc, instr) in program.instrs().iter().enumerate() {
            self.charge_visit(counter);
            let pc32 = pc as u32;
            let falls_through = match instr.flow() {
                Flow::Fall => true,
                Flow::Jump(off) => {
                    counter.charge(Primitive::Alu, &self.model);
                    let target = rel_target(pc32, off);
                    if target >= len {
                        diags.push(Diagnostic::error(
                            Pass::ControlFlow,
                            Some(pc),
                            DiagnosticKind::JumpOutOfBounds { target },
                        ));
                    }
                    false
                }
                Flow::Branch(off) => {
                    counter.charge(Primitive::Alu, &self.model);
                    let target = rel_target(pc32, off);
                    if target >= len {
                        diags.push(Diagnostic::error(
                            Pass::ControlFlow,
                            Some(pc),
                            DiagnosticKind::JumpOutOfBounds { target },
                        ));
                    }
                    true
                }
                Flow::Call(target) => {
                    counter.charge(Primitive::Alu, &self.model);
                    if target >= len {
                        diags.push(Diagnostic::error(
                            Pass::ControlFlow,
                            Some(pc),
                            DiagnosticKind::CallOutOfBounds { target },
                        ));
                    }
                    // The matching Ret resumes at pc + 1.
                    true
                }
                Flow::Ret | Flow::Exit => false,
            };
            if falls_through && pc32 + 1 >= len {
                diags.push(Diagnostic::error(
                    Pass::ControlFlow,
                    Some(pc),
                    DiagnosticKind::FallthroughOffEnd,
                ));
            }
        }
        Self::finish_pass(Pass::ControlFlow, before, diags, snap, counter, passes);
        diags.len() == before
    }

    /// Pass 3: partition the text into procedures (entry points plus call
    /// targets), collect each procedure's intra-procedural body, and build
    /// the call graph. Emits no diagnostics — it is the structural skeleton
    /// the two dataflow passes consume and the summaries report over.
    fn pass_summaries(
        &self,
        program: &Program,
        entries: &[u32],
        passes: &mut Vec<PassReport>,
        counter: &mut CycleCounter,
    ) -> ProcGraph {
        let snap = counter.total();
        let text = program.instrs();
        let mut heads: BTreeSet<u32> = entries.iter().copied().collect();
        for instr in text {
            counter.charge(Primitive::Alu, &self.model);
            if let Flow::Call(t) = instr.flow() {
                heads.insert(t);
            }
        }
        let mut bodies = BTreeMap::new();
        let mut callees = BTreeMap::new();
        // One visited-marker vector shared across heads, stamped with the
        // head's ordinal instead of re-zeroed per head: procedure bodies sum
        // to ~text length, so partitioning stays linear even with thousands
        // of procedures.
        let mut seen = vec![u32::MAX; program.len()];
        for (gen, &h) in heads.iter().enumerate() {
            let gen = gen as u32;
            let mut work = vec![h];
            let mut body = Vec::new();
            let mut cs: BTreeSet<u32> = BTreeSet::new();
            while let Some(pc) = work.pop() {
                let slot = &mut seen[pc as usize];
                if *slot == gen {
                    continue;
                }
                *slot = gen;
                self.charge_visit(counter);
                body.push(pc);
                match text[pc as usize].flow() {
                    Flow::Fall => work.push(pc + 1),
                    Flow::Jump(off) => work.push(rel_target(pc, off)),
                    Flow::Branch(off) => {
                        work.push(pc + 1);
                        work.push(rel_target(pc, off));
                    }
                    Flow::Call(t) => {
                        cs.insert(t);
                        // The callee returns here; its body is its own.
                        work.push(pc + 1);
                    }
                    Flow::Ret | Flow::Exit => {}
                }
            }
            body.sort_unstable();
            bodies.insert(h, body);
            callees.insert(h, cs);
        }
        Self::finish_pass(Pass::Summary, 0, &[], snap, counter, passes);
        ProcGraph { heads: heads.into_iter().collect(), bodies, callees }
    }

    /// Pass 4: bottom-up stack discipline over procedure summaries. Each
    /// procedure is analysed once per distinct entry stack height; its net
    /// stack effects at returns become a summary applied at every call site,
    /// with a fixpoint over the call graph. A visited call-graph cycle
    /// exceeds every finite call depth and is rejected.
    #[allow(clippy::too_many_lines)]
    fn pass_stack_discipline(
        &self,
        program: &Program,
        entries: &[u32],
        diags: &mut Vec<Diagnostic>,
        passes: &mut Vec<PassReport>,
        counter: &mut CycleCounter,
    ) -> StackFacts {
        let snap = counter.total();
        let before = diags.len();
        let stack_words = self.limits.stack_bytes / 4;
        let text = program.instrs();
        let push_diag = |diags: &mut Vec<Diagnostic>, d: Diagnostic| {
            if !diags[before..].contains(&d) {
                diags.push(d);
            }
        };

        // One analysis context per (procedure head, entry stack height).
        struct Ctx {
            seen: BTreeSet<(u32, u32)>,
            work: Vec<(u32, u32)>,
            /// Call continuations awaiting callee deltas, keyed by callee
            /// context `(target, entry sp)` → call sites, so a returning
            /// callee resumes exactly its own sites instead of scanning
            /// every pending continuation in the caller.
            pending: BTreeMap<(u32, u32), BTreeSet<u32>>,
        }
        let mut ctxs: BTreeMap<(u32, u32), Ctx> = BTreeMap::new();
        let mut depth: BTreeMap<(u32, u32), usize> = BTreeMap::new();
        let mut deltas: BTreeMap<(u32, u32), BTreeSet<i64>> = BTreeMap::new();
        let mut callers: BTreeMap<(u32, u32), BTreeSet<(u32, u32)>> = BTreeMap::new();
        let mut edges: BTreeSet<(u32, u32)> = BTreeSet::new();
        let mut sites: BTreeSet<(u32, u32, u32)> = BTreeSet::new(); // (site, from, to)
        let mut queue: BTreeSet<(u32, u32)> = BTreeSet::new();
        let roots: BTreeSet<(u32, u32)> = entries.iter().map(|&e| (e, 0)).collect();
        for &r in &roots {
            ctxs.insert(r, Ctx { seen: BTreeSet::new(), work: vec![r], pending: BTreeMap::new() });
            depth.insert(r, 0);
            queue.insert(r);
        }
        let mut facts = StackFacts {
            deltas: BTreeMap::new(),
            max_height: BTreeMap::new(),
            cyclic: BTreeSet::new(),
        };
        let mut states = 0usize;
        let mut blown = false;
        'fixpoint: while let Some(id) = queue.pop_first() {
            loop {
                let ctx = ctxs.get_mut(&id).expect("queued ctx exists");
                let Some((pc, sp)) = ctx.work.pop() else { break };
                if !ctx.seen.insert((pc, sp)) {
                    continue;
                }
                states += 1;
                if states > self.limits.state_budget {
                    push_diag(
                        diags,
                        Diagnostic::error(
                            Pass::StackDiscipline,
                            None,
                            DiagnosticKind::AnalysisBudgetExceeded { states },
                        ),
                    );
                    blown = true;
                    break 'fixpoint;
                }
                self.charge_visit(counter);
                let (head, entry_sp) = id;
                let peak = facts.max_height.entry(head).or_insert(0);
                *peak = (*peak).max(sp.saturating_sub(entry_sp));
                let instr = text[pc as usize];
                let sp = match instr {
                    Instr::Push(_) => {
                        if sp + 1 > stack_words {
                            push_diag(
                                diags,
                                Diagnostic::error(
                                    Pass::StackDiscipline,
                                    Some(pc as usize),
                                    DiagnosticKind::DataStackOverflow { words: sp + 1 },
                                ),
                            );
                            continue;
                        }
                        sp + 1
                    }
                    Instr::Pop(_) => {
                        if sp == 0 {
                            push_diag(
                                diags,
                                Diagnostic::error(
                                    Pass::StackDiscipline,
                                    Some(pc as usize),
                                    DiagnosticKind::DataStackUnderflow,
                                ),
                            );
                            continue;
                        }
                        sp - 1
                    }
                    _ => sp,
                };
                match instr.flow() {
                    Flow::Fall => ctx.work.push((pc + 1, sp)),
                    Flow::Jump(off) => ctx.work.push((rel_target(pc, off), sp)),
                    Flow::Branch(off) => {
                        ctx.work.push((pc + 1, sp));
                        ctx.work.push((rel_target(pc, off), sp));
                    }
                    Flow::Call(target) => {
                        counter.charge(Primitive::Alu, &self.model);
                        edges.insert((head, target));
                        sites.insert((pc, head, target));
                        let d = depth[&id];
                        if d >= self.limits.max_call_depth {
                            push_diag(
                                diags,
                                Diagnostic::error(
                                    Pass::StackDiscipline,
                                    Some(pc as usize),
                                    DiagnosticKind::CallDepthExceeded { depth: d },
                                ),
                            );
                        } else {
                            let callee = (target, sp);
                            ctx.pending.entry(callee).or_default().insert(pc);
                            // Apply callee deltas already known; future ones
                            // re-queue us through `callers`.
                            let known: Vec<i64> = deltas
                                .get(&callee)
                                .map(|s| s.iter().copied().collect())
                                .unwrap_or_default();
                            for dlt in known {
                                counter.charge(Primitive::Alu, &self.model);
                                let ret_sp = (i64::from(sp) + dlt) as u32;
                                ctx.work.push((pc + 1, ret_sp));
                            }
                            callers.entry(callee).or_default().insert(id);
                            if let Some(cur) = depth.get_mut(&callee) {
                                *cur = (*cur).min(d + 1);
                            } else {
                                depth.insert(callee, d + 1);
                                ctxs.insert(
                                    callee,
                                    Ctx {
                                        seen: BTreeSet::new(),
                                        work: vec![callee],
                                        pending: BTreeMap::new(),
                                    },
                                );
                                queue.insert(callee);
                            }
                        }
                    }
                    Flow::Ret => {
                        counter.charge(Primitive::Alu, &self.model);
                        if roots.contains(&id) {
                            push_diag(
                                diags,
                                Diagnostic::error(
                                    Pass::StackDiscipline,
                                    Some(pc as usize),
                                    DiagnosticKind::ReturnWithoutCall,
                                ),
                            );
                        }
                        let dlt = i64::from(sp) - i64::from(entry_sp);
                        if deltas.entry(id).or_default().insert(dlt) {
                            facts.deltas.entry(head).or_default().insert(dlt);
                            // Resume every caller waiting on this summary.
                            let waiting: Vec<(u32, u32)> = callers
                                .get(&id)
                                .map(|s| s.iter().copied().collect())
                                .unwrap_or_default();
                            for caller in waiting {
                                let c = ctxs.get_mut(&caller).expect("registered caller");
                                let ret_sp = (i64::from(id.1) + dlt) as u32;
                                let conts: Vec<(u32, u32)> = c
                                    .pending
                                    .get(&id)
                                    .into_iter()
                                    .flatten()
                                    .map(|&site| (site + 1, ret_sp))
                                    .collect();
                                for cont in conts {
                                    counter.charge(Primitive::Alu, &self.model);
                                    c.work.push(cont);
                                }
                                queue.insert(caller);
                            }
                        }
                    }
                    Flow::Exit => {}
                }
            }
        }
        if !blown {
            // Recursion check: any visited call-graph cycle exceeds every
            // finite call depth — report it at each participating call site.
            let mut adj: BTreeMap<u32, BTreeSet<u32>> = BTreeMap::new();
            for &(from, to) in &edges {
                counter.charge(Primitive::Alu, &self.model);
                adj.entry(from).or_default().insert(to);
            }
            let reaches = |from: u32, to: u32| -> bool {
                let mut seen = BTreeSet::new();
                let mut work = vec![from];
                while let Some(n) = work.pop() {
                    if !seen.insert(n) {
                        continue;
                    }
                    if n == to {
                        return true;
                    }
                    if let Some(next) = adj.get(&n) {
                        work.extend(next.iter().copied());
                    }
                }
                false
            };
            if edges.iter().any(|&(from, to)| reaches(to, from)) {
                for &(site, from, to) in &sites {
                    counter.charge(Primitive::Alu, &self.model);
                    if reaches(to, from) {
                        facts.cyclic.insert(from);
                        facts.cyclic.insert(to);
                        push_diag(
                            diags,
                            Diagnostic::error(
                                Pass::StackDiscipline,
                                Some(site as usize),
                                DiagnosticKind::CallDepthExceeded {
                                    depth: self.limits.max_call_depth,
                                },
                            ),
                        );
                    }
                }
            }
        }
        Self::finish_pass(Pass::StackDiscipline, before, diags, snap, counter, passes);
        facts
    }

    /// Pass 5: constant propagation over the registers (must-facts only:
    /// joining disagreeing paths yields Unknown), analysed per procedure and
    /// per distinct entry register vector, with callee transfer summaries
    /// applied at call sites. A load/store whose address register is a known
    /// constant that escapes the granted data segment is rejected here
    /// instead of faulting at run time; unknown addresses stay the
    /// segmentation hardware's job.
    #[allow(clippy::too_many_lines)]
    fn pass_segment_discipline(
        &self,
        program: &Program,
        entries: &[u32],
        graph: &ProcGraph,
        diags: &mut Vec<Diagnostic>,
        passes: &mut Vec<PassReport>,
        counter: &mut CycleCounter,
    ) -> BTreeMap<u32, SegAccess> {
        let snap = counter.total();
        let before = diags.len();
        let data_bytes = u64::from(self.limits.data_bytes);
        let text = program.instrs();

        struct Ctx {
            facts: BTreeMap<u32, Regs>,
            work: Vec<u32>,
        }
        type CtxId = (u32, Regs);
        let mut ctxs: BTreeMap<CtxId, Ctx> = BTreeMap::new();
        let mut depth: BTreeMap<CtxId, usize> = BTreeMap::new();
        let mut exits: BTreeMap<CtxId, Regs> = BTreeMap::new();
        let mut callers: BTreeMap<CtxId, BTreeSet<(CtxId, u32)>> = BTreeMap::new();
        let mut queue: BTreeSet<CtxId> = BTreeSet::new();
        for &e in entries {
            let id = (e, [AbsVal::Unknown; 8]);
            ctxs.insert(
                id,
                Ctx { facts: BTreeMap::from([(e, [AbsVal::Unknown; 8])]), work: vec![e] },
            );
            depth.insert(id, 0);
            queue.insert(id);
        }
        // Propagate regs into a pc of a context: join, queue on change.
        fn propagate(ctx: &mut Ctx, pc: u32, regs: Regs) {
            match ctx.facts.get_mut(&pc) {
                None => {
                    ctx.facts.insert(pc, regs);
                    ctx.work.push(pc);
                }
                Some(stored) => {
                    let mut changed = false;
                    for (s, n) in stored.iter_mut().zip(regs) {
                        let joined = s.join(n);
                        if joined != *s {
                            *s = joined;
                            changed = true;
                        }
                    }
                    if changed {
                        ctx.work.push(pc);
                    }
                }
            }
        }
        let mut states = 0usize;
        let mut blown = false;
        'fixpoint: while let Some(id) = queue.pop_first() {
            loop {
                let ctx = ctxs.get_mut(&id).expect("queued ctx exists");
                let Some(pc) = ctx.work.pop() else { break };
                states += 1;
                if states > self.limits.state_budget {
                    diags.push(Diagnostic::error(
                        Pass::SegmentDiscipline,
                        None,
                        DiagnosticKind::AnalysisBudgetExceeded { states },
                    ));
                    blown = true;
                    break 'fixpoint;
                }
                self.charge_visit(counter);
                let regs = ctx.facts[&pc];
                let instr = text[pc as usize];
                let mut out = regs;
                match instr {
                    Instr::MovImm(d, i) => out[d as usize] = AbsVal::Const(i),
                    Instr::MovReg(d, s) => out[d as usize] = out[s as usize],
                    Instr::Add(d, s) => {
                        out[d as usize] = match (out[d as usize], out[s as usize]) {
                            (AbsVal::Const(a), AbsVal::Const(b)) => {
                                AbsVal::Const(a.wrapping_add(b))
                            }
                            _ => AbsVal::Unknown,
                        }
                    }
                    Instr::Sub(d, s) => {
                        out[d as usize] = match (out[d as usize], out[s as usize]) {
                            (AbsVal::Const(a), AbsVal::Const(b)) => {
                                AbsVal::Const(a.wrapping_sub(b))
                            }
                            _ => AbsVal::Unknown,
                        }
                    }
                    Instr::Xor(d, s) => {
                        out[d as usize] = match (out[d as usize], out[s as usize]) {
                            (AbsVal::Const(a), AbsVal::Const(b)) => AbsVal::Const(a ^ b),
                            _ => AbsVal::Unknown,
                        }
                    }
                    Instr::Load(d, _) => out[d as usize] = AbsVal::Unknown,
                    Instr::Pop(r) => out[r as usize] = AbsVal::Unknown,
                    _ => {}
                }
                match instr.flow() {
                    Flow::Fall => propagate(ctx, pc + 1, out),
                    Flow::Jump(off) => propagate(ctx, rel_target(pc, off), out),
                    Flow::Branch(off) => {
                        // A branch on a known register takes exactly one edge.
                        let cond = match instr {
                            Instr::Jz(r, _) => out[r as usize],
                            _ => AbsVal::Unknown,
                        };
                        if cond != AbsVal::Const(0) {
                            propagate(ctx, pc + 1, out);
                        }
                        if !matches!(cond, AbsVal::Const(v) if v != 0) {
                            propagate(ctx, rel_target(pc, off), out);
                        }
                    }
                    Flow::Call(target) => {
                        counter.charge(Primitive::Alu, &self.model);
                        let d = depth[&id];
                        if d < self.limits.max_call_depth {
                            let callee = (target, out);
                            callers.entry(callee).or_default().insert((id, pc));
                            if let Some(x) = exits.get(&callee) {
                                let x = *x;
                                propagate(ctx, pc + 1, x);
                            }
                            if let Some(cur) = depth.get_mut(&callee) {
                                *cur = (*cur).min(d + 1);
                            } else {
                                depth.insert(callee, d + 1);
                                ctxs.insert(
                                    callee,
                                    Ctx {
                                        facts: BTreeMap::from([(target, out)]),
                                        work: vec![target],
                                    },
                                );
                                queue.insert(callee);
                            }
                        }
                        // Depth overrun already reported by the stack pass.
                    }
                    Flow::Ret => {
                        counter.charge(Primitive::Alu, &self.model);
                        let joined = match exits.get(&id) {
                            None => out,
                            Some(prev) => {
                                let mut j = *prev;
                                for (a, b) in j.iter_mut().zip(out) {
                                    *a = a.join(b);
                                }
                                j
                            }
                        };
                        if exits.get(&id) != Some(&joined) {
                            exits.insert(id, joined);
                            let waiting: Vec<(CtxId, u32)> = callers
                                .get(&id)
                                .map(|s| s.iter().copied().collect())
                                .unwrap_or_default();
                            for (caller, site) in waiting {
                                counter.charge(Primitive::Alu, &self.model);
                                let c = ctxs.get_mut(&caller).expect("registered caller");
                                propagate(c, site + 1, joined);
                                queue.insert(caller);
                            }
                        }
                        // A root-context return was already reported by the
                        // stack pass; register facts simply stop here.
                    }
                    Flow::Exit => {}
                }
            }
        }
        let mut access: BTreeMap<u32, SegAccess> = BTreeMap::new();
        for &h in &graph.heads {
            access.entry(h).or_default();
        }
        if !blown {
            // Check every memory access against the fixpoint facts, in
            // deterministic (context, pc) order.
            for (id, ctx) in &ctxs {
                let acc = access.entry(id.0).or_default();
                for (&pc, regs) in &ctx.facts {
                    counter.charge(Primitive::Alu, &self.model);
                    let (addr_reg, store) = match text[pc as usize] {
                        Instr::Load(_, a) => (a, false),
                        Instr::Store(a, _) => (a, true),
                        _ => continue,
                    };
                    match regs[addr_reg as usize] {
                        AbsVal::Const(addr) => {
                            if store {
                                widen(&mut acc.known_stores, addr);
                            } else {
                                widen(&mut acc.known_loads, addr);
                            }
                            if u64::from(addr) + 4 > data_bytes {
                                let kind = if store {
                                    DiagnosticKind::OutOfSegmentStore { addr }
                                } else {
                                    DiagnosticKind::OutOfSegmentLoad { addr }
                                };
                                let d = Diagnostic::error(
                                    Pass::SegmentDiscipline,
                                    Some(pc as usize),
                                    kind,
                                );
                                if !diags[before..].contains(&d) {
                                    diags.push(d);
                                }
                            }
                        }
                        AbsVal::Unknown => {
                            if store {
                                acc.unknown_stores = true;
                            } else {
                                acc.unknown_loads = true;
                            }
                        }
                    }
                }
            }
        }
        Self::finish_pass(Pass::SegmentDiscipline, before, diags, snap, counter, passes);
        access
    }

    /// Pass 6: warn about instructions no entry point can reach. Dead code
    /// cannot execute, so this never rejects — but a component shipping text
    /// it can never run is worth flagging to its author.
    fn pass_reachability(
        &self,
        program: &Program,
        entries: &[u32],
        diags: &mut Vec<Diagnostic>,
        passes: &mut Vec<PassReport>,
        counter: &mut CycleCounter,
    ) {
        let snap = counter.total();
        let before = diags.len();
        let mut reached = vec![false; program.len()];
        let mut work: Vec<u32> = entries.to_vec();
        while let Some(pc) = work.pop() {
            let slot = &mut reached[pc as usize];
            if *slot {
                continue;
            }
            *slot = true;
            counter.charge(Primitive::Load, &self.model);
            for succ in program.successors(pc) {
                counter.charge(Primitive::Alu, &self.model);
                work.push(succ);
            }
            // A call's return point is reachable once the callee returns.
            if let Flow::Call(_) = program.instrs()[pc as usize].flow() {
                work.push(pc + 1);
            }
        }
        for (pc, seen) in reached.iter().enumerate() {
            if !seen {
                diags.push(Diagnostic::warning(
                    Pass::Reachability,
                    Some(pc),
                    DiagnosticKind::UnreachableCode,
                ));
            }
        }
        Self::finish_pass(Pass::Reachability, before, diags, snap, counter, passes);
    }

    /// Fold the pass artifacts into one [`ProcedureSummary`] per procedure.
    fn assemble_summaries(
        graph: &ProcGraph,
        stack: &StackFacts,
        seg: &BTreeMap<u32, SegAccess>,
    ) -> Vec<ProcedureSummary> {
        graph
            .heads
            .iter()
            .map(|&h| {
                let acc = seg.get(&h);
                ProcedureSummary {
                    head: h,
                    instructions: graph.bodies.get(&h).map_or(0, Vec::len),
                    callees: graph
                        .callees
                        .get(&h)
                        .map(|s| s.iter().copied().collect())
                        .unwrap_or_default(),
                    recursive: stack.cyclic.contains(&h),
                    stack_effects: stack
                        .deltas
                        .get(&h)
                        .map(|s| s.iter().copied().collect())
                        .unwrap_or_default(),
                    max_stack_words: stack.max_height.get(&h).copied().unwrap_or(0),
                    known_loads: acc.and_then(|a| a.known_loads),
                    known_stores: acc.and_then(|a| a.known_stores),
                    unknown_loads: acc.is_some_and(|a| a.unknown_loads),
                    unknown_stores: acc.is_some_and(|a| a.unknown_stores),
                }
            })
            .collect()
    }
}

/// The retired v2 verifier: concrete call-stack-keyed stack/segment
/// dataflow. Kept compiled under `cfg(any(test, feature = "slow-props"))`
/// purely as the **differential-testing oracle** for the v3 summary passes —
/// on any image both verifiers must agree on the verdict and on the set of
/// diagnostic kinds. Its cost explodes with call-path count (each distinct
/// concrete call stack is a separate dataflow key), which is exactly what
/// the summary passes fix; never use it on a load path.
#[cfg(any(test, feature = "slow-props"))]
pub mod oracle {
    use super::*;
    use std::collections::{HashMap, HashSet};

    /// Verify `text` against `entries` with the v2 pipeline. `Ok` carries
    /// the accepting report, `Err` the rejecting one; both hold every
    /// diagnostic the v2 passes could prove.
    ///
    /// # Errors
    /// The rejecting [`VerifyReport`].
    pub fn verify_with_entries_v2(
        v: &SisrVerifier,
        text: &[u8],
        entries: &[u32],
    ) -> Result<VerifyReport, VerifyReport> {
        let mut diags: Vec<Diagnostic> = Vec::new();
        let mut passes: Vec<PassReport> = Vec::new();
        let mut counter = CycleCounter::new();
        let program = v.pass_decode(text, &mut diags, &mut passes, &mut counter);
        if let Some(program) = program {
            let cfg_clean =
                v.pass_control_flow(&program, entries, &mut diags, &mut passes, &mut counter);
            if cfg_clean {
                pass_stack_v2(v, &program, entries, &mut diags, &mut passes, &mut counter);
                pass_segment_v2(v, &program, entries, &mut diags, &mut passes, &mut counter);
                v.pass_reachability(&program, entries, &mut diags, &mut passes, &mut counter);
            }
        }
        let report = VerifyReport { diagnostics: diags, passes, cycles: counter.total() };
        if report.has_errors() {
            Err(report)
        } else {
            Ok(report)
        }
    }

    /// v2 stack discipline: explore (pc, concrete call stack, data-stack
    /// depth) states from every entry.
    fn pass_stack_v2(
        v: &SisrVerifier,
        program: &Program,
        entries: &[u32],
        diags: &mut Vec<Diagnostic>,
        passes: &mut Vec<PassReport>,
        counter: &mut CycleCounter,
    ) {
        let snap = counter.total();
        let before = diags.len();
        let stack_words = v.limits.stack_bytes / 4;
        let text = program.instrs();
        let push_diag = |diags: &mut Vec<Diagnostic>, d: Diagnostic| {
            if !diags[before..].contains(&d) {
                diags.push(d);
            }
        };
        let mut seen: HashSet<(u32, Vec<u32>, u32)> = HashSet::new();
        let mut work: Vec<(u32, Vec<u32>, u32)> =
            entries.iter().map(|&e| (e, Vec::new(), 0)).collect();
        let mut states = 0usize;
        while let Some((pc, calls, sp)) = work.pop() {
            if !seen.insert((pc, calls.clone(), sp)) {
                continue;
            }
            states += 1;
            if states > v.limits.state_budget {
                push_diag(
                    diags,
                    Diagnostic::error(
                        Pass::StackDiscipline,
                        None,
                        DiagnosticKind::AnalysisBudgetExceeded { states },
                    ),
                );
                break;
            }
            v.charge_visit(counter);
            let instr = text[pc as usize];
            let sp = match instr {
                Instr::Push(_) => {
                    if sp + 1 > stack_words {
                        push_diag(
                            diags,
                            Diagnostic::error(
                                Pass::StackDiscipline,
                                Some(pc as usize),
                                DiagnosticKind::DataStackOverflow { words: sp + 1 },
                            ),
                        );
                        continue;
                    }
                    sp + 1
                }
                Instr::Pop(_) => {
                    if sp == 0 {
                        push_diag(
                            diags,
                            Diagnostic::error(
                                Pass::StackDiscipline,
                                Some(pc as usize),
                                DiagnosticKind::DataStackUnderflow,
                            ),
                        );
                        continue;
                    }
                    sp - 1
                }
                _ => sp,
            };
            match instr.flow() {
                Flow::Fall => work.push((pc + 1, calls, sp)),
                Flow::Jump(off) => work.push((rel_target(pc, off), calls, sp)),
                Flow::Branch(off) => {
                    work.push((pc + 1, calls.clone(), sp));
                    work.push((rel_target(pc, off), calls, sp));
                }
                Flow::Call(target) => {
                    if calls.len() >= v.limits.max_call_depth {
                        push_diag(
                            diags,
                            Diagnostic::error(
                                Pass::StackDiscipline,
                                Some(pc as usize),
                                DiagnosticKind::CallDepthExceeded { depth: calls.len() },
                            ),
                        );
                    } else {
                        let mut calls = calls;
                        calls.push(pc + 1);
                        work.push((target, calls, sp));
                    }
                }
                Flow::Ret => {
                    let mut calls = calls;
                    match calls.pop() {
                        Some(ret) => work.push((ret, calls, sp)),
                        None => push_diag(
                            diags,
                            Diagnostic::error(
                                Pass::StackDiscipline,
                                Some(pc as usize),
                                DiagnosticKind::ReturnWithoutCall,
                            ),
                        ),
                    }
                }
                Flow::Exit => {}
            }
        }
        SisrVerifier::finish_pass(Pass::StackDiscipline, before, diags, snap, counter, passes);
    }

    /// v2 segment discipline: constant propagation with register facts
    /// keyed by (pc, concrete call stack).
    #[allow(clippy::too_many_lines)]
    fn pass_segment_v2(
        v: &SisrVerifier,
        program: &Program,
        entries: &[u32],
        diags: &mut Vec<Diagnostic>,
        passes: &mut Vec<PassReport>,
        counter: &mut CycleCounter,
    ) {
        let snap = counter.total();
        let before = diags.len();
        let data_bytes = u64::from(v.limits.data_bytes);
        let text = program.instrs();
        let mut facts: HashMap<(u32, Vec<u32>), Regs> = HashMap::new();
        let mut work: Vec<(u32, Vec<u32>)> = Vec::new();
        for &e in entries {
            facts.insert((e, Vec::new()), [AbsVal::Unknown; 8]);
            work.push((e, Vec::new()));
        }
        let mut states = 0usize;
        let mut budget_blown = false;
        while let Some(key) = work.pop() {
            states += 1;
            if states > v.limits.state_budget {
                diags.push(Diagnostic::error(
                    Pass::SegmentDiscipline,
                    None,
                    DiagnosticKind::AnalysisBudgetExceeded { states },
                ));
                budget_blown = true;
                break;
            }
            v.charge_visit(counter);
            let Some(&regs) = facts.get(&key) else { continue };
            let (pc, ref calls) = key;
            let instr = text[pc as usize];
            let mut out = regs;
            match instr {
                Instr::MovImm(d, i) => out[d as usize] = AbsVal::Const(i),
                Instr::MovReg(d, s) => out[d as usize] = out[s as usize],
                Instr::Add(d, s) => {
                    out[d as usize] = match (out[d as usize], out[s as usize]) {
                        (AbsVal::Const(a), AbsVal::Const(b)) => AbsVal::Const(a.wrapping_add(b)),
                        _ => AbsVal::Unknown,
                    }
                }
                Instr::Sub(d, s) => {
                    out[d as usize] = match (out[d as usize], out[s as usize]) {
                        (AbsVal::Const(a), AbsVal::Const(b)) => AbsVal::Const(a.wrapping_sub(b)),
                        _ => AbsVal::Unknown,
                    }
                }
                Instr::Xor(d, s) => {
                    out[d as usize] = match (out[d as usize], out[s as usize]) {
                        (AbsVal::Const(a), AbsVal::Const(b)) => AbsVal::Const(a ^ b),
                        _ => AbsVal::Unknown,
                    }
                }
                Instr::Load(d, _) => out[d as usize] = AbsVal::Unknown,
                Instr::Pop(r) => out[r as usize] = AbsVal::Unknown,
                _ => {}
            }
            let propagate = |facts: &mut HashMap<(u32, Vec<u32>), Regs>,
                             work: &mut Vec<(u32, Vec<u32>)>,
                             key: (u32, Vec<u32>),
                             regs: Regs| {
                match facts.get_mut(&key) {
                    None => {
                        facts.insert(key.clone(), regs);
                        work.push(key);
                    }
                    Some(stored) => {
                        let mut changed = false;
                        for (s, n) in stored.iter_mut().zip(regs) {
                            let joined = s.join(n);
                            if joined != *s {
                                *s = joined;
                                changed = true;
                            }
                        }
                        if changed {
                            work.push(key);
                        }
                    }
                }
            };
            match instr.flow() {
                Flow::Fall => propagate(&mut facts, &mut work, (pc + 1, calls.clone()), out),
                Flow::Jump(off) => {
                    propagate(&mut facts, &mut work, (rel_target(pc, off), calls.clone()), out);
                }
                Flow::Branch(off) => {
                    let cond = match instr {
                        Instr::Jz(r, _) => out[r as usize],
                        _ => AbsVal::Unknown,
                    };
                    if cond != AbsVal::Const(0) {
                        propagate(&mut facts, &mut work, (pc + 1, calls.clone()), out);
                    }
                    if !matches!(cond, AbsVal::Const(v) if v != 0) {
                        propagate(&mut facts, &mut work, (rel_target(pc, off), calls.clone()), out);
                    }
                }
                Flow::Call(target) => {
                    if calls.len() < v.limits.max_call_depth {
                        let mut calls = calls.clone();
                        calls.push(pc + 1);
                        propagate(&mut facts, &mut work, (target, calls), out);
                    }
                }
                Flow::Ret => {
                    let mut calls = calls.clone();
                    if let Some(ret) = calls.pop() {
                        propagate(&mut facts, &mut work, (ret, calls), out);
                    }
                }
                Flow::Exit => {}
            }
        }
        if !budget_blown {
            let mut keys: Vec<&(u32, Vec<u32>)> = facts.keys().collect();
            keys.sort();
            for key in keys {
                counter.charge(Primitive::Alu, &v.model);
                let (addr_reg, store) = match text[key.0 as usize] {
                    Instr::Load(_, a) => (a, false),
                    Instr::Store(a, _) => (a, true),
                    _ => continue,
                };
                if let AbsVal::Const(addr) = facts[key][addr_reg as usize] {
                    if u64::from(addr) + 4 > data_bytes {
                        let kind = if store {
                            DiagnosticKind::OutOfSegmentStore { addr }
                        } else {
                            DiagnosticKind::OutOfSegmentLoad { addr }
                        };
                        let d =
                            Diagnostic::error(Pass::SegmentDiscipline, Some(key.0 as usize), kind);
                        if !diags[before..].contains(&d) {
                            diags.push(d);
                        }
                    }
                }
            }
        }
        SisrVerifier::finish_pass(Pass::SegmentDiscipline, before, diags, snap, counter, passes);
    }
}
#[cfg(test)]
mod tests {
    use super::*;
    use machine::seg::SegReg;

    fn verifier() -> SisrVerifier {
        SisrVerifier::new(CostModel::pentium())
    }

    fn kinds(report: &VerifyReport) -> Vec<&DiagnosticKind> {
        report.diagnostics.iter().map(|d| &d.kind).collect()
    }

    #[test]
    fn accepts_clean_program() {
        let p = Program::new(vec![
            Instr::MovImm(0, 1),
            Instr::Add(0, 0),
            Instr::Trap(0x30), // traps are fine: they cannot subvert protection
            Instr::Halt,
        ]);
        let img = verifier().verify_program(&p).unwrap();
        assert_eq!(img.program(), &p);
        assert_eq!(img.entry_points(), &[0]);
        assert!(img.scan_cycles() > 0);
        assert_eq!(img.report().passes.len(), Pass::ALL.len(), "every pass ran");
    }

    #[test]
    fn rejects_each_privileged_instruction() {
        let privileged = [
            Instr::LoadSegReg(SegReg::Ds, 0),
            Instr::Cli,
            Instr::Sti,
            Instr::LoadPageTable(0),
            Instr::IoIn(0, 0x60),
            Instr::IoOut(0, 0x60),
            Instr::Iret,
        ];
        for bad in privileged {
            let p = Program::new(vec![Instr::Nop, bad, Instr::Halt]);
            let report = verifier().verify_program(&p).unwrap_err();
            let d = report.errors().next().expect("one error");
            assert_eq!(d.pass, Pass::Decode);
            assert_eq!(d.index, Some(1));
            assert_eq!(
                d.kind,
                DiagnosticKind::PrivilegedInstruction { instr: bad },
                "{bad:?} must be rejected"
            );
        }
    }

    #[test]
    fn collects_every_privileged_instruction_not_just_the_first() {
        let p = Program::new(vec![Instr::Cli, Instr::Nop, Instr::Sti, Instr::Halt]);
        let report = verifier().verify_program(&p).unwrap_err();
        assert_eq!(report.error_count(), 2);
        let indices: Vec<_> = report.errors().map(|d| d.index).collect();
        assert_eq!(indices, vec![Some(0), Some(2)]);
    }

    #[test]
    fn rejects_misaligned_and_undecodable_text() {
        let report = verifier().verify(&[0u8; 9]).unwrap_err();
        assert_eq!(kinds(&report), vec![&DiagnosticKind::MisalignedText { len: 9 }]);

        let mut bytes = Program::new(vec![Instr::Nop]).to_bytes();
        bytes.extend_from_slice(&[0xff, 0, 0, 0, 0, 0, 0, 0]);
        let report = verifier().verify(&bytes).unwrap_err();
        let d = &report.diagnostics[0];
        assert_eq!(
            (d.pass, d.index, &d.kind),
            (Pass::Decode, Some(1), &DiagnosticKind::UndecodableWord)
        );
    }

    #[test]
    fn privileged_opcode_at_first_and_last_index_is_caught() {
        for text in [vec![Instr::Iret, Instr::Halt], vec![Instr::Nop, Instr::Halt, Instr::Iret]] {
            let report = verifier().verify_program(&Program::new(text.clone())).unwrap_err();
            let idx = text.iter().position(|i| i.is_privileged()).unwrap();
            let d = report.errors().next().unwrap();
            assert_eq!(d.index, Some(idx));
            assert_eq!(d.pass, Pass::Decode);
        }
    }

    #[test]
    fn rejects_out_of_bounds_jump_target() {
        // The program's only flaw: the branch escapes the text.
        let p = Program::new(vec![Instr::Nop, Instr::Jmp(100), Instr::Halt]);
        let report = verifier().verify_program(&p).unwrap_err();
        assert_eq!(report.error_count(), 1);
        let d = report.errors().next().unwrap();
        assert_eq!(d.pass, Pass::ControlFlow);
        assert_eq!(d.index, Some(1));
        assert_eq!(d.kind, DiagnosticKind::JumpOutOfBounds { target: 101 });
    }

    #[test]
    fn rejects_backward_wrapping_jump() {
        let p = Program::new(vec![Instr::Jmp(-1), Instr::Halt]);
        let report = verifier().verify_program(&p).unwrap_err();
        assert_eq!(kinds(&report), vec![&DiagnosticKind::JumpOutOfBounds { target: u32::MAX }]);
    }

    #[test]
    fn rejects_out_of_bounds_call_and_conditional_branch() {
        let p = Program::new(vec![Instr::Call(40), Instr::Jz(0, 40), Instr::Halt]);
        let report = verifier().verify_program(&p).unwrap_err();
        assert_eq!(report.error_count(), 2, "both bad edges reported: {report}");
        assert!(kinds(&report).contains(&&DiagnosticKind::CallOutOfBounds { target: 40 }));
        assert!(kinds(&report).contains(&&DiagnosticKind::JumpOutOfBounds { target: 41 }));
    }

    #[test]
    fn rejects_fallthrough_off_end_of_text() {
        let p = Program::new(vec![Instr::Nop, Instr::MovImm(0, 1)]);
        let report = verifier().verify_program(&p).unwrap_err();
        let d = report.errors().next().unwrap();
        assert_eq!(d.pass, Pass::ControlFlow);
        assert_eq!(d.index, Some(1));
        assert_eq!(d.kind, DiagnosticKind::FallthroughOffEnd);
    }

    #[test]
    fn rejects_unbalanced_return() {
        // The program's only flaw: Ret with an empty call stack.
        let p = Program::new(vec![Instr::Nop, Instr::Ret, Instr::Halt]);
        let report = verifier().verify_program(&p).unwrap_err();
        assert_eq!(report.error_count(), 1);
        let d = report.errors().next().unwrap();
        assert_eq!(d.pass, Pass::StackDiscipline);
        assert_eq!(d.index, Some(1));
        assert_eq!(d.kind, DiagnosticKind::ReturnWithoutCall);
        // The warning-only reachability pass still saw index 2 as dead... no:
        // 2 is unreachable only if Ret stops the path; the CFG treats Ret as
        // having no static successor, so index 2 is dead code.
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.kind == DiagnosticKind::UnreachableCode && d.index == Some(2)));
    }

    #[test]
    fn accepts_balanced_call_and_return() {
        let p = Program::new(vec![
            Instr::Call(2), // 0
            Instr::Halt,    // 1
            Instr::MovImm(0, 7),
            Instr::Ret, // 3 -> returns to 1
        ]);
        let img = verifier().verify_program(&p).unwrap();
        assert_eq!(img.report().error_count(), 0);
        assert_eq!(img.report().warning_count(), 0, "everything reachable");
    }

    #[test]
    fn rejects_unbounded_recursion() {
        // f calls itself forever: exceeds any finite verified call depth.
        let p = Program::new(vec![Instr::Call(0), Instr::Halt]);
        let report = verifier().verify_program(&p).unwrap_err();
        assert!(
            kinds(&report).iter().any(|k| matches!(k, DiagnosticKind::CallDepthExceeded { .. })),
            "{report}"
        );
    }

    #[test]
    fn rejects_pop_of_empty_stack_and_statically_deep_push() {
        let p = Program::new(vec![Instr::Pop(0), Instr::Halt]);
        let report = verifier().verify_program(&p).unwrap_err();
        assert!(kinds(&report).contains(&&DiagnosticKind::DataStackUnderflow));

        // Push in an infinite loop blows past the 4 KiB stack segment.
        let p = Program::new(vec![Instr::Push(0), Instr::Jmp(-1), Instr::Halt]);
        let report = verifier().verify_program(&p).unwrap_err();
        assert!(
            kinds(&report).iter().any(|k| matches!(k, DiagnosticKind::DataStackOverflow { .. })),
            "{report}"
        );
    }

    #[test]
    fn balanced_push_pop_loop_verifies() {
        let p = Program::new(vec![
            Instr::Push(0),   // 0
            Instr::Pop(1),    // 1
            Instr::Jz(1, -2), // 2: loop while r1 == 0
            Instr::Halt,      // 3
        ]);
        assert!(verifier().verify_program(&p).is_ok());
    }

    #[test]
    fn rejects_statically_out_of_segment_store() {
        // MovImm 100_000 then Store: address is a must-fact, 100_000 + 4
        // escapes the default 4 KiB data grant.
        let p = Program::new(vec![Instr::MovImm(0, 100_000), Instr::Store(0, 1), Instr::Halt]);
        let report = verifier().verify_program(&p).unwrap_err();
        assert_eq!(report.error_count(), 1);
        let d = report.errors().next().unwrap();
        assert_eq!(d.pass, Pass::SegmentDiscipline);
        assert_eq!(d.index, Some(1));
        assert_eq!(d.kind, DiagnosticKind::OutOfSegmentStore { addr: 100_000 });
    }

    #[test]
    fn rejects_statically_out_of_segment_load_through_arithmetic() {
        // The address is computed: 4000 + 4000 = 8000, still a must-fact.
        let p = Program::new(vec![
            Instr::MovImm(0, 4000),
            Instr::MovReg(1, 0),
            Instr::Add(0, 1),
            Instr::Load(2, 0),
            Instr::Halt,
        ]);
        let report = verifier().verify_program(&p).unwrap_err();
        assert_eq!(kinds(&report), vec![&DiagnosticKind::OutOfSegmentLoad { addr: 8000 }]);
    }

    #[test]
    fn unknown_addresses_are_left_to_the_hardware() {
        // The address arrives in a register (an argument): statically
        // unknown, so the verifier must accept and let segmentation guard it.
        let p = Program::new(vec![Instr::Store(0, 1), Instr::Halt]);
        assert!(verifier().verify_program(&p).is_ok());
    }

    #[test]
    fn disagreeing_paths_join_to_unknown() {
        // r0 is 0 on one path and 100_000 on the other; after the join it is
        // not a must-fact, so the store is accepted (hardware guards it).
        let p = Program::new(vec![
            Instr::Jz(1, 3),           // 0: if r1 == 0 jump to 3
            Instr::MovImm(0, 0),       // 1
            Instr::Jmp(2),             // 2 -> 4
            Instr::MovImm(0, 100_000), // 3
            Instr::Store(0, 2),        // 4: joined r0 is Unknown
            Instr::Halt,               // 5
        ]);
        assert!(verifier().verify_program(&p).is_ok());
    }

    #[test]
    fn constant_branch_prunes_the_dead_edge() {
        // r0 = 1, so Jz never jumps: the out-of-segment store behind the
        // taken edge is unreachable in any execution — but the *CFG* pass
        // still requires the edge to stay in text, and the segment pass
        // (which follows only feasible edges) accepts.
        let p = Program::new(vec![
            Instr::MovImm(0, 1),       // 0
            Instr::Jz(0, 2),           // 1: never taken
            Instr::Jmp(2),             // 2 -> 4
            Instr::MovImm(1, 100_000), // 3: feasibly dead
            Instr::Store(1, 0),        // 4: r1 unknown on the live path? no —
            Instr::Halt,               //    r1 never written on it: Unknown.
        ]);
        assert!(verifier().verify_program(&p).is_ok());
    }

    #[test]
    fn multiple_flaws_collect_into_one_report() {
        // An out-of-bounds jump AND a fallthrough off the end: both named.
        let p = Program::new(vec![Instr::Jz(0, 100), Instr::MovImm(0, 1)]);
        let report = verifier().verify_program(&p).unwrap_err();
        assert_eq!(report.error_count(), 2, "{report}");
        assert!(kinds(&report).contains(&&DiagnosticKind::JumpOutOfBounds { target: 100 }));
        assert!(kinds(&report).contains(&&DiagnosticKind::FallthroughOffEnd));
        // And the report names the pass both came from.
        assert!(report.errors().all(|d| d.pass == Pass::ControlFlow));
    }

    #[test]
    fn dead_code_is_a_warning_not_an_error() {
        let p = Program::new(vec![
            Instr::Jmp(2),       // 0 -> 2
            Instr::MovImm(0, 9), // 1: dead
            Instr::Halt,         // 2
        ]);
        let img = verifier().verify_program(&p).unwrap();
        assert_eq!(img.report().warning_count(), 1);
        let w = &img.report().diagnostics[0];
        assert_eq!((w.pass, w.severity), (Pass::Reachability, Severity::Warning));
        assert_eq!((w.index, &w.kind), (Some(1), &DiagnosticKind::UnreachableCode));
    }

    #[test]
    fn extra_entry_points_make_more_code_reachable() {
        let p = Program::new(vec![
            Instr::Halt,         // 0: entry a
            Instr::MovImm(0, 1), // 1: entry b
            Instr::Halt,         // 2
        ]);
        let img = verifier().verify_program_with_entries(&p, &[0, 1]).unwrap();
        assert_eq!(img.report().warning_count(), 0);
        assert_eq!(img.entry_points(), &[0, 1]);
        // With only entry 0, indices 1-2 are dead.
        let img = verifier().verify_program(&p).unwrap();
        assert_eq!(img.report().warning_count(), 2);
    }

    #[test]
    fn bad_entry_point_is_rejected() {
        let p = Program::new(vec![Instr::Halt]);
        let report = verifier().verify_program_with_entries(&p, &[3]).unwrap_err();
        assert_eq!(kinds(&report), vec![&DiagnosticKind::BadEntryPoint { entry: 3 }]);
    }

    #[test]
    fn each_pass_reports_its_cycle_bill() {
        let p = Program::new(vec![Instr::MovImm(0, 1), Instr::Halt]);
        let img = verifier().verify_program(&p).unwrap();
        let report = img.report();
        let per_pass: Cycles = report.passes.iter().map(|p| p.cycles).sum();
        assert_eq!(per_pass, report.cycles, "pass bills sum to the total");
        for pass in Pass::ALL {
            assert!(report.pass(pass).is_some(), "{pass} ran");
        }
        assert!(report.pass(Pass::Decode).unwrap().cycles > 0);
    }

    #[test]
    fn later_passes_are_gated_on_earlier_proofs() {
        // Decode fails => only the decode pass ran.
        let report =
            verifier().verify_program(&Program::new(vec![Instr::Cli, Instr::Halt])).unwrap_err();
        assert_eq!(report.passes.len(), 1);
        // CFG fails => dataflow passes don't chase invalid edges.
        let report = verifier()
            .verify_program(&Program::new(vec![Instr::Jmp(100), Instr::Halt]))
            .unwrap_err();
        assert_eq!(report.passes.len(), 2);
    }

    #[test]
    fn scan_cost_is_linear_in_text_length() {
        // Each pass does work proportional to text size (plus a constant),
        // so cycle deltas between sizes scale exactly with the size deltas.
        let v = verifier();
        let cost = |n: usize| {
            let mut text = vec![Instr::Nop; n - 1];
            text.push(Instr::Halt);
            v.verify_program(&Program::new(text)).unwrap().scan_cycles()
        };
        let (c10, c100, c1000) = (cost(10), cost(100), cost(1000));
        assert!(c10 < c100 && c100 < c1000);
        assert_eq!(c1000 - c100, 10 * (c100 - c10), "affine in program size");
    }

    #[test]
    fn empty_image_is_valid() {
        let img = verifier().verify(&[]).unwrap();
        assert!(img.program().is_empty());
        assert!(img.entry_points().is_empty());
        assert_eq!(img.scan_cycles(), 0);
    }

    #[test]
    fn analysis_budget_rejects_tangled_programs() {
        // A tiny budget makes even a clean program unverifiable — and
        // unverifiable means rejected, conservatively.
        let limits = Limits { state_budget: 2, ..Limits::default() };
        let v = SisrVerifier::with_limits(CostModel::pentium(), limits);
        let p = Program::new(vec![Instr::Nop, Instr::Nop, Instr::Nop, Instr::Halt]);
        let report = v.verify_program(&p).unwrap_err();
        assert!(
            kinds(&report)
                .iter()
                .any(|k| matches!(k, DiagnosticKind::AnalysisBudgetExceeded { .. })),
            "{report}"
        );
    }

    #[test]
    fn report_display_names_pass_and_index() {
        let p = Program::new(vec![Instr::Jmp(100), Instr::Halt]);
        let report = verifier().verify_program(&p).unwrap_err();
        let text = report.to_string();
        assert!(text.contains("[control-flow] error at 0"), "{text}");
        assert!(text.contains("jump target 100"), "{text}");
    }

    #[test]
    fn accepted_image_carries_procedure_summaries() {
        let p = Program::new(vec![
            Instr::Call(3),      // 0: main calls helper
            Instr::Push(0),      // 1
            Instr::Halt,         // 2
            Instr::MovImm(0, 8), // 3: helper
            Instr::Store(0, 1),  // 4: statically-known store at byte 8
            Instr::Ret,          // 5
        ]);
        let img = verifier().verify_program(&p).unwrap();
        let summaries = img.summaries();
        assert_eq!(summaries.len(), 2, "main and helper");
        let main = &summaries[0];
        assert_eq!((main.head, main.callees.as_slice()), (0, &[3][..]));
        assert_eq!(main.max_stack_words, 1, "one push above entry");
        assert!(!main.recursive);
        let helper = &summaries[1];
        assert_eq!(helper.head, 3);
        assert_eq!(helper.stack_effects, vec![0], "balanced callee");
        assert_eq!(helper.known_stores, Some((8, 8)));
        assert!(!helper.unknown_stores);
        // Summaries render for the pass-report printers.
        assert!(main.to_string().starts_with("proc@0:"), "{main}");
    }

    #[test]
    fn constants_flow_through_calls_into_the_callee() {
        // The caller passes an out-of-segment address in r0; the callee does
        // the store. Only an interprocedural analysis catches this.
        let p = Program::new(vec![
            Instr::MovImm(0, 100_000), // 0
            Instr::Call(3),            // 1
            Instr::Halt,               // 2
            Instr::Store(0, 1),        // 3: callee stores through r0
            Instr::Ret,                // 4
        ]);
        let report = verifier().verify_program(&p).unwrap_err();
        assert_eq!(report.error_count(), 1, "{report}");
        let d = report.errors().next().unwrap();
        assert_eq!(d.pass, Pass::SegmentDiscipline);
        assert_eq!(d.index, Some(3));
        assert_eq!(d.kind, DiagnosticKind::OutOfSegmentStore { addr: 100_000 });
    }

    #[test]
    fn callee_summary_is_shared_across_call_sites() {
        // Two sites call the same callee with different constants; the
        // callee is analysed per entry vector, so the safe site stays safe
        // and the hostile one is named.
        let p = Program::new(vec![
            Instr::MovImm(0, 0),       // 0
            Instr::Call(5),            // 1
            Instr::MovImm(0, 100_000), // 2
            Instr::Call(5),            // 3
            Instr::Halt,               // 4
            Instr::Load(1, 0),         // 5: callee loads through r0
            Instr::Ret,                // 6
        ]);
        let report = verifier().verify_program(&p).unwrap_err();
        assert_eq!(
            kinds(&report),
            vec![&DiagnosticKind::OutOfSegmentLoad { addr: 100_000 }],
            "only the hostile context is rejected"
        );
    }

    #[test]
    fn mutual_recursion_is_rejected_as_depth_exceeded() {
        let p = Program::new(vec![
            Instr::Call(2), // 0: entry calls f
            Instr::Halt,    // 1
            Instr::Call(4), // 2: f calls g
            Instr::Ret,     // 3
            Instr::Call(2), // 4: g calls f — cycle
            Instr::Ret,     // 5
        ]);
        let report = verifier().verify_program(&p).unwrap_err();
        assert!(
            kinds(&report).iter().any(|k| matches!(k, DiagnosticKind::CallDepthExceeded { .. })),
            "{report}"
        );
    }

    #[test]
    fn verification_cost_is_linear_in_procedure_count() {
        // k procedures, each called once from a dispatcher. v2 cost grew
        // with call *paths*; the summary passes are affine in procedure
        // count — the whole point of v3.
        let v = verifier();
        let cost = |k: u32| {
            let mut text = Vec::new();
            for i in 0..k {
                // Procedure bodies live after the k-call dispatcher + halt.
                text.push(Instr::Call(k + 1 + 3 * i));
            }
            text.push(Instr::Halt);
            for _ in 0..k {
                text.push(Instr::Push(0));
                text.push(Instr::Pop(1));
                text.push(Instr::Ret);
            }
            v.verify_program(&Program::new(text)).unwrap().scan_cycles()
        };
        let (c1, c4, c16) = (cost(1), cost(4), cost(16));
        assert!(c1 < c4 && c4 < c16);
        assert_eq!(c16 - c4, 4 * (c4 - c1), "affine in procedure count");
    }

    #[test]
    fn deep_linear_call_chains_stay_cheap() {
        // A chain main -> p1 -> p2 -> ... -> p40: one summary each, no
        // path enumeration. Must verify (depth 41 < 64) and stay linear.
        let depth = 40u32;
        let mut text = vec![Instr::Call(2), Instr::Halt];
        for i in 0..depth {
            if i + 1 < depth {
                text.push(Instr::Call(2 + 2 * (i + 1)));
            } else {
                text.push(Instr::Nop);
            }
            text.push(Instr::Ret);
        }
        let img = verifier().verify_program(&Program::new(text)).unwrap();
        assert_eq!(img.summaries().len(), 1 + depth as usize);
    }

    #[test]
    fn summary_pass_bills_cycles_like_the_others() {
        let p = Program::new(vec![Instr::Call(2), Instr::Halt, Instr::Ret]);
        let img = verifier().verify_program(&p).unwrap();
        let s = img.report().pass(Pass::Summary).expect("summary pass ran");
        assert!(s.cycles > 0);
        assert_eq!((s.errors, s.warnings), (0, 0), "structural pass never rejects");
    }

    #[cfg(feature = "slow-props")]
    mod differential {
        use super::*;
        use adm_rng::{run_cases, Pcg32};
        use std::collections::BTreeSet;

        /// The kinds a report proved, payload included, as a set — v2 and
        /// v3 may differ in diagnostic *indices* (v2 anchors a recursion
        /// error at whichever call executes at the depth bound, v3 at the
        /// cycle's call sites) and in duplicate counts, but never in the
        /// set of proven kinds.
        fn kind_set(r: &VerifyReport) -> BTreeSet<String> {
            r.diagnostics.iter().map(|d| format!("{:?}", d.kind)).collect()
        }

        fn assert_agree(v: &SisrVerifier, text: &[u8], entries: &[u32], what: &str) {
            let v3 = v.verify_with_entries(text, entries);
            let v2 = oracle::verify_with_entries_v2(v, text, entries);
            assert_eq!(v3.is_ok(), v2.is_ok(), "verdict differs on {what}");
            let (k3, k2) = match (&v3, &v2) {
                (Ok(img), Ok(rep)) => (kind_set(img.report()), kind_set(rep)),
                (Err(r3), Err(r2)) => (kind_set(r3), kind_set(r2)),
                _ => unreachable!(),
            };
            assert_eq!(k3, k2, "diagnostic kinds differ on {what}");
        }

        /// The corpus of hand-written seed images: every shape the unit
        /// tests exercise, good and evil.
        fn seed_corpus() -> Vec<Program> {
            vec![
                Program::new(vec![Instr::MovImm(0, 1), Instr::Add(0, 0), Instr::Halt]),
                Program::new(vec![Instr::Nop, Instr::Ret, Instr::Halt]),
                Program::new(vec![Instr::Call(2), Instr::Halt, Instr::MovImm(0, 7), Instr::Ret]),
                Program::new(vec![Instr::Call(0), Instr::Halt]),
                Program::new(vec![Instr::Pop(0), Instr::Halt]),
                Program::new(vec![Instr::Push(0), Instr::Jmp(-1), Instr::Halt]),
                Program::new(vec![Instr::Push(0), Instr::Pop(1), Instr::Jz(1, -2), Instr::Halt]),
                Program::new(vec![Instr::MovImm(0, 100_000), Instr::Store(0, 1), Instr::Halt]),
                Program::new(vec![
                    Instr::MovImm(0, 4000),
                    Instr::MovReg(1, 0),
                    Instr::Add(0, 1),
                    Instr::Load(2, 0),
                    Instr::Halt,
                ]),
                Program::new(vec![Instr::Store(0, 1), Instr::Halt]),
                Program::new(vec![
                    Instr::Jz(1, 3),
                    Instr::MovImm(0, 0),
                    Instr::Jmp(2),
                    Instr::MovImm(0, 100_000),
                    Instr::Store(0, 2),
                    Instr::Halt,
                ]),
                Program::new(vec![
                    Instr::MovImm(0, 1),
                    Instr::Jz(0, 2),
                    Instr::Jmp(2),
                    Instr::MovImm(1, 100_000),
                    Instr::Store(1, 0),
                    Instr::Halt,
                ]),
                Program::new(vec![Instr::Jmp(2), Instr::MovImm(0, 9), Instr::Halt]),
                Program::new(vec![Instr::Jz(0, 100), Instr::MovImm(0, 1)]),
                Program::new(vec![Instr::Nop, Instr::Jmp(100), Instr::Halt]),
                Program::new(vec![Instr::Jmp(-1), Instr::Halt]),
                Program::new(vec![Instr::Call(40), Instr::Jz(0, 40), Instr::Halt]),
                Program::new(vec![
                    Instr::MovImm(0, 100_000),
                    Instr::Call(3),
                    Instr::Halt,
                    Instr::Store(0, 1),
                    Instr::Ret,
                ]),
                Program::new(vec![
                    Instr::Call(2),
                    Instr::Halt,
                    Instr::Call(4),
                    Instr::Ret,
                    Instr::Call(2),
                    Instr::Ret,
                ]),
            ]
        }

        /// A random straight-line-ish instruction (no calls). Offsets stay
        /// within ±(len+2) so out-of-bounds edges occur but rarely drown
        /// out the interesting dataflow cases.
        fn random_instr(rng: &mut Pcg32, len: u32, calls: bool) -> Instr {
            let r = |rng: &mut Pcg32| rng.range_u32(0, 8) as u8;
            let off =
                |rng: &mut Pcg32| rng.range_i64(-i64::from(len + 2), i64::from(len + 2)) as i32;
            match rng.below(if calls { 14 } else { 13 }) {
                0 => Instr::Nop,
                1 => Instr::MovImm(r(rng), rng.range_u32(0, 200_000)),
                2 => Instr::MovReg(r(rng), r(rng)),
                3 => Instr::Add(r(rng), r(rng)),
                4 => Instr::Sub(r(rng), r(rng)),
                5 => Instr::Xor(r(rng), r(rng)),
                6 => Instr::Load(r(rng), r(rng)),
                7 => Instr::Store(r(rng), r(rng)),
                8 => Instr::Jmp(off(rng)),
                9 => Instr::Jz(r(rng), off(rng)),
                10 => Instr::Push(r(rng)),
                11 => Instr::Pop(r(rng)),
                12 => Instr::Halt,
                _ => Instr::Call(rng.range_u32(0, len + 2)),
            }
        }

        #[test]
        fn v3_matches_v2_on_the_seed_corpus() {
            let v = verifier();
            assert_agree(&v, &[], &[], "empty image");
            for (i, p) in seed_corpus().iter().enumerate() {
                assert_agree(&v, &p.to_bytes(), &[0], &format!("seed image {i}"));
            }
        }

        #[test]
        fn v3_matches_v2_on_random_call_free_images() {
            // Call-free programs up to 48 instructions: the dataflow
            // domains are identical, so verdict and kinds must agree.
            let v = verifier();
            run_cases(0xD1FF_0001, 192, |rng| {
                let len = rng.range_u32(1, 49);
                let mut text: Vec<Instr> =
                    (0..len).map(|_| random_instr(rng, len, false)).collect();
                if rng.chance(0.7) {
                    text.push(Instr::Halt);
                }
                let len = text.len() as u32;
                let entries: Vec<u32> =
                    if rng.chance(0.2) { vec![0, rng.range_u32(0, len + 1)] } else { vec![0] };
                let p = Program::new(text);
                assert_agree(&v, &p.to_bytes(), &entries, &format!("{:?}", p.instrs()));
            });
        }

        #[test]
        fn v3_matches_v2_on_random_call_heavy_images() {
            // With calls the program is kept to <= 12 instructions: small
            // enough that a procedure can never push the whole stack
            // segment within the verified call depth, which is the regime
            // where the v2 path walk and the v3 summary fixpoint provably
            // prove the same kinds (see DESIGN.md §12).
            let v = verifier();
            run_cases(0xD1FF_0002, 192, |rng| {
                let len = rng.range_u32(2, 13);
                let mut text: Vec<Instr> = (0..len).map(|_| random_instr(rng, len, true)).collect();
                if rng.chance(0.7) {
                    text.push(Instr::Halt);
                }
                let p = Program::new(text);
                assert_agree(&v, &p.to_bytes(), &[0], &format!("{:?}", p.instrs()));
            });
        }

        #[test]
        fn v3_matches_v2_on_byte_fuzzed_images() {
            // Raw byte corruption: decode/alignment flaws are shared-pass
            // territory but the agreement must still hold end to end.
            let v = verifier();
            run_cases(0xD1FF_0003, 64, |rng| {
                let len = rng.range_u32(1, 17);
                let mut text: Vec<Instr> =
                    (0..len).map(|_| random_instr(rng, len, false)).collect();
                text.push(Instr::Halt);
                let mut bytes = Program::new(text).to_bytes();
                let flips = rng.range_u32(0, 4);
                for _ in 0..flips {
                    let i = rng.index(bytes.len());
                    bytes[i] ^= 1 << rng.range_u32(0, 8);
                }
                if rng.chance(0.1) {
                    bytes.push(0);
                }
                assert_agree(&v, &bytes, &[0], "byte-fuzzed image");
            });
        }
    }
}
