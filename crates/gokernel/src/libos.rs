//! The library OS: kernel services as ordinary Go! components.
//!
//! > "A truly component-based OS can be seen as a *zero-kernel* system,
//! > where the kernel has been replaced by a set of components that
//! > cooperate to provide services usually found in traditional kernels."
//!
//! > "ideally any service that has nothing to do with component management
//! > (e.g. interrupt and device management) would be handled outside that
//! > core."
//!
//! The only privileged citizen is the ORB; the scheduler, the memory
//! manager and the interrupt dispatcher below are *components*: their text
//! is SISR-verified, they live in their own segments, and every call to
//! them is an ORB thread-migration RPC paying the Table 1 Go! price
//! (~70 cycles) — not a trap. Their service semantics execute natively in
//! the simulator (the standard device-model compromise), but the protection
//! and invocation costs are the real ORB path, charged per call.

use crate::component::{ComponentId, InterfaceId, Rights};
use crate::orb::{Orb, OrbError};
use machine::cost::{CostModel, Cycles};
use machine::isa::{Instr, Program};
use std::collections::VecDeque;

/// A thread known to the scheduler component.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ThreadId(pub u32);

/// The zero-kernel service suite.
#[derive(Debug)]
pub struct LibOs {
    orb: Orb,
    client: ComponentId,
    sched_iface: InterfaceId,
    mem_iface: InterfaceId,
    irq_iface: InterfaceId,
    // Native service state (the components' data segments, modelled).
    runq: VecDeque<ThreadId>,
    free_list: Vec<(u32, u32)>,
    allocated: Vec<(u32, u32)>,
    irq_handlers: Vec<(u8, InterfaceId)>,
    service_cycles: Cycles,
}

/// Library-OS errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LibOsError {
    /// Underlying ORB failure.
    Orb(OrbError),
    /// Out of heap.
    OutOfMemory {
        /// Bytes requested.
        requested: u32,
    },
    /// Freeing a region that was never allocated.
    BadFree {
        /// Offending base address.
        base: u32,
    },
    /// No handler registered for the vector.
    NoHandler(u8),
}

impl From<OrbError> for LibOsError {
    fn from(e: OrbError) -> Self {
        LibOsError::Orb(e)
    }
}

impl LibOs {
    /// Boot a zero-kernel system: an ORB, a client component, and the three
    /// service components with published interfaces.
    ///
    /// # Panics
    /// Never: boot uses known-good verified programs.
    #[must_use]
    pub fn boot(model: CostModel, heap_bytes: u32) -> Self {
        let mut orb = Orb::new(8 << 20, model);
        let stub = Program::new(vec![Instr::Halt]).to_bytes();
        let client_ty = orb.load_type("client", &stub).expect("stub verifies");
        let sched_ty = orb.load_type("scheduler", &stub).expect("stub verifies");
        let mem_ty = orb.load_type("memory-manager", &stub).expect("stub verifies");
        let irq_ty = orb.load_type("interrupt-dispatcher", &stub).expect("stub verifies");
        let client = orb.instantiate(client_ty).expect("arena");
        let sched = orb.instantiate(sched_ty).expect("arena");
        let mem = orb.instantiate(mem_ty).expect("arena");
        let irq = orb.instantiate(irq_ty).expect("arena");
        let sched_iface = orb.publish(sched, 0, Rights::PUBLIC, 1).expect("publish");
        let mem_iface = orb.publish(mem, 0, Rights::PUBLIC, 2).expect("publish");
        let irq_iface = orb.publish(irq, 0, Rights::PUBLIC, 1).expect("publish");
        Self {
            orb,
            client,
            sched_iface,
            mem_iface,
            irq_iface,
            runq: VecDeque::new(),
            free_list: vec![(0, heap_bytes)],
            allocated: Vec::new(),
            irq_handlers: Vec::new(),
            service_cycles: 0,
        }
    }

    /// Total cycles spent *invoking* services (the componentisation cost).
    #[must_use]
    pub fn service_cycles(&self) -> Cycles {
        self.service_cycles
    }

    /// The underlying ORB (e.g. for protection-byte accounting).
    #[must_use]
    pub fn orb(&self) -> &Orb {
        &self.orb
    }

    fn call(&mut self, iface: InterfaceId, args: &[u32]) -> Result<(), LibOsError> {
        let out = self.orb.invoke(self.client, iface, args)?;
        self.service_cycles += out.cycles;
        Ok(())
    }

    // ---- scheduler component ------------------------------------------

    /// Make a thread runnable.
    ///
    /// # Errors
    /// Only on ORB faults (never for the built-in configuration).
    pub fn sched_add(&mut self, t: ThreadId) -> Result<(), LibOsError> {
        self.call(self.sched_iface, &[t.0])?;
        if !self.runq.contains(&t) {
            self.runq.push_back(t);
        }
        Ok(())
    }

    /// Yield: rotate the queue and return the next thread to run.
    ///
    /// # Errors
    /// ORB faults only.
    pub fn sched_yield(&mut self, current: ThreadId) -> Result<Option<ThreadId>, LibOsError> {
        self.call(self.sched_iface, &[current.0])?;
        if let Some(pos) = self.runq.iter().position(|&t| t == current) {
            let t = self.runq.remove(pos).expect("position valid");
            self.runq.push_back(t);
        }
        Ok(self.runq.front().copied())
    }

    /// Remove a thread (it exited).
    ///
    /// # Errors
    /// ORB faults only.
    pub fn sched_remove(&mut self, t: ThreadId) -> Result<(), LibOsError> {
        self.call(self.sched_iface, &[t.0])?;
        self.runq.retain(|&x| x != t);
        Ok(())
    }

    /// Current run-queue snapshot (front = next to run).
    #[must_use]
    pub fn run_queue(&self) -> Vec<ThreadId> {
        self.runq.iter().copied().collect()
    }

    // ---- memory-manager component --------------------------------------

    /// Allocate `bytes` from the component heap (first-fit free list).
    ///
    /// # Errors
    /// [`LibOsError::OutOfMemory`] when no region fits.
    pub fn alloc(&mut self, bytes: u32) -> Result<u32, LibOsError> {
        self.call(self.mem_iface, &[bytes, 0])?;
        let idx = self
            .free_list
            .iter()
            .position(|&(_, len)| len >= bytes)
            .ok_or(LibOsError::OutOfMemory { requested: bytes })?;
        let (base, len) = self.free_list[idx];
        if len == bytes {
            self.free_list.remove(idx);
        } else {
            self.free_list[idx] = (base + bytes, len - bytes);
        }
        self.allocated.push((base, bytes));
        Ok(base)
    }

    /// Free a previously allocated region (coalescing adjacent free space).
    ///
    /// # Errors
    /// [`LibOsError::BadFree`] for unknown regions.
    pub fn free(&mut self, base: u32) -> Result<(), LibOsError> {
        self.call(self.mem_iface, &[base, 1])?;
        let idx = self
            .allocated
            .iter()
            .position(|&(b, _)| b == base)
            .ok_or(LibOsError::BadFree { base })?;
        let (b, len) = self.allocated.remove(idx);
        self.free_list.push((b, len));
        self.free_list.sort_unstable();
        // Coalesce.
        let mut merged: Vec<(u32, u32)> = Vec::with_capacity(self.free_list.len());
        for &(b, l) in &self.free_list {
            match merged.last_mut() {
                Some((pb, pl)) if *pb + *pl == b => *pl += l,
                _ => merged.push((b, l)),
            }
        }
        self.free_list = merged;
        Ok(())
    }

    /// Free heap bytes remaining.
    #[must_use]
    pub fn free_bytes(&self) -> u32 {
        self.free_list.iter().map(|&(_, l)| l).sum()
    }

    // ---- interrupt-dispatcher component ---------------------------------

    /// Register a driver component's interface as the handler for a vector.
    ///
    /// # Errors
    /// ORB faults only.
    pub fn irq_register(&mut self, vector: u8, handler: InterfaceId) -> Result<(), LibOsError> {
        self.call(self.irq_iface, &[u32::from(vector)])?;
        self.irq_handlers.retain(|&(v, _)| v != vector);
        self.irq_handlers.push((vector, handler));
        Ok(())
    }

    /// Deliver a hardware interrupt: the dispatcher migrates the interrupt
    /// thread into the registered driver component — two ORB hops, zero
    /// traps.
    ///
    /// # Errors
    /// [`LibOsError::NoHandler`] for unregistered vectors; ORB faults.
    pub fn irq_deliver(&mut self, vector: u8) -> Result<u32, LibOsError> {
        self.call(self.irq_iface, &[u32::from(vector)])?;
        let handler = self
            .irq_handlers
            .iter()
            .find(|&&(v, _)| v == vector)
            .map(|&(_, h)| h)
            .ok_or(LibOsError::NoHandler(vector))?;
        let out = self.orb.invoke(self.client, handler, &[])?;
        self.service_cycles += out.cycles;
        Ok(out.result)
    }

    /// Publish a new driver component whose handler returns `result`.
    ///
    /// # Errors
    /// ORB faults (e.g. a rejected image).
    pub fn install_driver(&mut self, name: &str, result: u32) -> Result<InterfaceId, LibOsError> {
        let text = Program::new(vec![Instr::MovImm(0, result), Instr::Halt]).to_bytes();
        let ty = self.orb.load_type(name, &text)?;
        let inst = self.orb.instantiate(ty)?;
        Ok(self.orb.publish(inst, 0, Rights::PUBLIC, 0)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn libos() -> LibOs {
        LibOs::boot(CostModel::pentium(), 1 << 16)
    }

    #[test]
    fn scheduler_is_round_robin_and_fair() {
        let mut os = libos();
        for t in 0..3 {
            os.sched_add(ThreadId(t)).unwrap();
        }
        // Yielding from 0 puts it at the back; next is 1, then 2, then 0.
        assert_eq!(os.sched_yield(ThreadId(0)).unwrap(), Some(ThreadId(1)));
        assert_eq!(os.sched_yield(ThreadId(1)).unwrap(), Some(ThreadId(2)));
        assert_eq!(os.sched_yield(ThreadId(2)).unwrap(), Some(ThreadId(0)));
        os.sched_remove(ThreadId(1)).unwrap();
        assert_eq!(os.run_queue(), vec![ThreadId(0), ThreadId(2)]);
    }

    #[test]
    fn duplicate_add_is_idempotent() {
        let mut os = libos();
        os.sched_add(ThreadId(7)).unwrap();
        os.sched_add(ThreadId(7)).unwrap();
        assert_eq!(os.run_queue().len(), 1);
    }

    #[test]
    fn allocator_first_fit_free_and_coalesce() {
        let mut os = libos();
        let total = os.free_bytes();
        let a = os.alloc(100).unwrap();
        let b = os.alloc(200).unwrap();
        let c = os.alloc(50).unwrap();
        assert!(a < b && b < c);
        assert_eq!(os.free_bytes(), total - 350);
        os.free(b).unwrap();
        os.free(a).unwrap();
        os.free(c).unwrap();
        assert_eq!(os.free_bytes(), total);
        // Fully coalesced: one region serving a big allocation again.
        let big = os.alloc(total).unwrap();
        assert_eq!(big, 0);
    }

    #[test]
    fn allocator_errors() {
        let mut os = libos();
        assert!(matches!(os.alloc(1 << 30), Err(LibOsError::OutOfMemory { .. })));
        assert_eq!(os.free(12345), Err(LibOsError::BadFree { base: 12345 }));
    }

    #[test]
    fn interrupts_dispatch_to_driver_components_without_traps() {
        let mut os = libos();
        let eth = os.install_driver("eth-driver", 0xE0).unwrap();
        let disk = os.install_driver("disk-driver", 0xD0).unwrap();
        os.irq_register(0x21, eth).unwrap();
        os.irq_register(0x22, disk).unwrap();
        assert_eq!(os.irq_deliver(0x21).unwrap(), 0xE0);
        assert_eq!(os.irq_deliver(0x22).unwrap(), 0xD0);
        assert_eq!(os.irq_deliver(0x30), Err(LibOsError::NoHandler(0x30)));
        // Re-registration replaces the handler.
        os.irq_register(0x21, disk).unwrap();
        assert_eq!(os.irq_deliver(0x21).unwrap(), 0xD0);
    }

    #[test]
    fn every_service_call_pays_the_orb_price_not_a_trap() {
        let mut os = libos();
        let before = os.service_cycles();
        os.sched_add(ThreadId(1)).unwrap();
        let per_call = os.service_cycles() - before;
        // One ORB RPC: the Table 1 Go! cost band, nowhere near a trap pair.
        assert!((55..=110).contains(&per_call), "service call cost {per_call} cycles");
        let model = CostModel::pentium();
        assert!(per_call < model.trap_enter + model.trap_exit + 500);
    }

    #[test]
    fn services_are_ordinary_protected_components() {
        let os = libos();
        // client + scheduler + memory + irq = 4 instances; 3 interfaces.
        assert_eq!(os.orb().components(), 4);
        assert_eq!(os.orb().interfaces(), 3);
        // Their protection state is descriptor-sized, not page-sized.
        assert!(os.orb().protection_bytes() < 4096);
    }
}
