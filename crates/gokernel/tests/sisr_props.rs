//! The SISR soundness property: load-time scanning and runtime privilege
//! faulting must agree. This is the safety argument of Section 5.1 — SISR
//! may remove the user/kernel mode split *because* anything the scanner
//! accepts can never execute a privileged instruction.

use gokernel::sisr::{SisrError, SisrVerifier};
use machine::cost::CostModel;
use machine::cpu::{Cpu, CpuError, Mode};
use machine::isa::{Instr, Program};
use machine::seg::{SegReg, Segment, SegmentKind, SegmentTable};
use proptest::prelude::*;

/// Straight-line programs only (no jumps), so that every instruction is
/// reachable and the runtime oracle is decisive.
fn straight_line_instr() -> impl Strategy<Value = Instr> {
    let reg = 0u8..8;
    prop_oneof![
        Just(Instr::Nop),
        (reg.clone(), 0u32..64).prop_map(|(r, i)| Instr::MovImm(r, i)),
        (reg.clone(), reg.clone()).prop_map(|(a, b)| Instr::MovReg(a, b)),
        (reg.clone(), reg.clone()).prop_map(|(a, b)| Instr::Add(a, b)),
        (reg.clone(), reg.clone()).prop_map(|(a, b)| Instr::Xor(a, b)),
        // Loads/stores at small immediate addresses stay inside the segment.
        (reg.clone(), reg.clone()).prop_map(|(a, b)| Instr::Load(a, b)),
        (reg.clone(), reg.clone()).prop_map(|(a, b)| Instr::Store(a, b)),
        // Privileged candidates the scanner must catch:
        Just(Instr::Cli),
        Just(Instr::Sti),
        Just(Instr::Iret),
        (0u8..3, reg.clone()).prop_map(|(s, r)| Instr::LoadSegReg(SegReg::from_u8(s).unwrap(), r)),
        reg.clone().prop_map(Instr::LoadPageTable),
        (reg, any::<u16>()).prop_map(|(r, p)| Instr::IoOut(r, p)),
    ]
}

fn user_cpu() -> (Cpu, SegmentTable) {
    let mut segs = SegmentTable::new();
    let data = segs
        .install(Segment { base: 0, limit: 1024, kind: SegmentKind::Data })
        .unwrap();
    let stack = segs
        .install(Segment { base: 1024, limit: 1024, kind: SegmentKind::Stack })
        .unwrap();
    let mut cpu = Cpu::new(1 << 16, Mode::User, CostModel::pentium());
    cpu.load_selector(SegReg::Ds, data);
    cpu.load_selector(SegReg::Ss, stack);
    (cpu, segs)
}

proptest! {
    /// Scanner accepts ⇒ execution in the single (user) mode never raises a
    /// privilege violation. Scanner rejects with `PrivilegedInstruction` ⇒
    /// executing the straight-line program *does* fault at that instruction.
    #[test]
    fn scanner_and_hardware_agree(body in prop::collection::vec(straight_line_instr(), 0..40)) {
        let mut text = body;
        text.push(Instr::Halt);
        let program = Program::new(text);
        let verdict = SisrVerifier::new(CostModel::pentium()).verify_program(&program);
        let (mut cpu, segs) = user_cpu();
        // Registers start at 0 so loads/stores hit offset 0: always legal.
        let run = cpu.run(&program, &segs, 10_000);
        match verdict {
            Ok(_) => {
                let priv_fault = matches!(run, Err(CpuError::PrivilegeViolation { .. }));
                prop_assert!(!priv_fault, "accepted program privilege-faulted: {:?}", run);
            }
            Err(SisrError::PrivilegedInstruction { index, .. }) => {
                match run {
                    Err(CpuError::PrivilegeViolation { pc, .. }) => {
                        prop_assert!(
                            pc as usize <= index,
                            "hardware faulted later ({}) than first scan hit ({})", pc, index
                        );
                    }
                    other => {
                        prop_assert!(
                            false,
                            "rejected program ran without privilege fault: {:?}", other
                        );
                    }
                }
            }
            Err(e) => prop_assert!(false, "unexpected scan error {:?}", e),
        }
    }

    /// Verified images never fault the ORB's protection even with
    /// adversarial (but in-range) register contents.
    #[test]
    fn verified_programs_cannot_escape_their_segments(
        body in prop::collection::vec(straight_line_instr(), 0..30),
        seed in 0u32..1024,
    ) {
        let clean: Vec<Instr> = body.into_iter().filter(|i| !i.is_privileged()).collect();
        let mut text = vec![Instr::MovImm(0, seed % 1020)];
        text.extend(clean);
        text.push(Instr::Halt);
        let program = Program::new(text);
        let img = SisrVerifier::new(CostModel::pentium()).verify_program(&program);
        prop_assert!(img.is_ok());
        let (mut cpu, segs) = user_cpu();
        let run = cpu.run(&program, &segs, 10_000);
        // The program may fault on a segment limit (that's protection
        // working), but must never privilege-fault, and any store it makes
        // lands inside [0, 1024) — enforced by the segment translation
        // itself, which proptest exercises with random addresses.
        let priv_fault = matches!(run, Err(CpuError::PrivilegeViolation { .. }));
        prop_assert!(!priv_fault);
    }
}
