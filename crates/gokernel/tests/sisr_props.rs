//! The SISR soundness property: load-time verification and runtime faulting
//! must agree. This is the safety argument of Section 5.1 — SISR may remove
//! the user/kernel mode split *because* anything the verifier accepts can
//! never execute a privileged instruction.
//!
//! Randomised suites are opt-in: `cargo test -p gokernel --features slow-props`.
#![cfg(feature = "slow-props")]

use adm_rng::{run_cases, Pcg32};
use gokernel::sisr::{DiagnosticKind, Pass, SisrVerifier};
use machine::cost::CostModel;
use machine::cpu::{Cpu, CpuError, Mode};
use machine::isa::{Instr, Program};
use machine::seg::{SegReg, Segment, SegmentKind, SegmentTable};

fn reg(rng: &mut Pcg32) -> u8 {
    rng.below(8) as u8
}

/// Straight-line instructions only (no jumps), so that every instruction is
/// reachable and the runtime oracle is decisive. Mixes in the privileged
/// candidates the verifier must catch.
fn straight_line_instr(rng: &mut Pcg32) -> Instr {
    match rng.below(13) {
        0 => Instr::Nop,
        1 => Instr::MovImm(reg(rng), rng.below(64) as u32),
        2 => Instr::MovReg(reg(rng), reg(rng)),
        3 => Instr::Add(reg(rng), reg(rng)),
        4 => Instr::Xor(reg(rng), reg(rng)),
        // Register-addressed loads/stores: the address is data-dependent.
        5 => Instr::Load(reg(rng), reg(rng)),
        6 => Instr::Store(reg(rng), reg(rng)),
        // Privileged:
        7 => Instr::Cli,
        8 => Instr::Sti,
        9 => Instr::Iret,
        10 => Instr::LoadSegReg(SegReg::from_u8(rng.below(3) as u8).unwrap(), reg(rng)),
        11 => Instr::LoadPageTable(reg(rng)),
        _ => Instr::IoOut(reg(rng), rng.below(1 << 16) as u16),
    }
}

fn body(rng: &mut Pcg32, max_len: usize) -> Vec<Instr> {
    (0..rng.index(max_len)).map(|_| straight_line_instr(rng)).collect()
}

fn user_cpu() -> (Cpu, SegmentTable) {
    let mut segs = SegmentTable::new();
    let data = segs.install(Segment { base: 0, limit: 1024, kind: SegmentKind::Data }).unwrap();
    let stack =
        segs.install(Segment { base: 1024, limit: 1024, kind: SegmentKind::Stack }).unwrap();
    let mut cpu = Cpu::new(1 << 16, Mode::User, CostModel::pentium());
    cpu.load_selector(SegReg::Ds, data);
    cpu.load_selector(SegReg::Ss, stack);
    (cpu, segs)
}

/// Soundness both ways:
/// * verifier accepts ⇒ execution never raises a privilege violation;
/// * hardware privilege-faults at `pc` ⇒ the verifier rejected with a
///   decode-pass `PrivilegedInstruction` diagnostic at exactly that index.
#[test]
fn verifier_and_hardware_agree_on_privilege() {
    run_cases(0x5150, 512, |rng| {
        let mut text = body(rng, 40);
        text.push(Instr::Halt);
        let program = Program::new(text);
        let verdict = SisrVerifier::new(CostModel::pentium()).verify_program(&program);
        let (mut cpu, segs) = user_cpu();
        let run = cpu.run(&program, &segs, 10_000);
        if verdict.is_ok() {
            assert!(
                !matches!(run, Err(CpuError::PrivilegeViolation { .. })),
                "accepted program privilege-faulted: {run:?}"
            );
        }
        if let Err(CpuError::PrivilegeViolation { pc, .. }) = run {
            let report = verdict.expect_err("hardware fault implies rejection");
            assert!(
                report.errors().any(|d| {
                    d.pass == Pass::Decode
                        && d.index == Some(pc as usize)
                        && matches!(d.kind, DiagnosticKind::PrivilegedInstruction { .. })
                }),
                "hardware faulted at {pc} but the verifier missed it: {report}"
            );
        }
    });
}

/// Unprivileged straight-line programs either verify or are refused only by
/// the segment-discipline pass (a statically-escaping constant address) —
/// and when they verify, running them never privilege-faults.
#[test]
fn verified_programs_cannot_escape_their_segments() {
    run_cases(0x5151, 512, |rng| {
        let seed = rng.below(1020) as u32;
        let mut text = vec![Instr::MovImm(0, seed)];
        text.extend(body(rng, 30).into_iter().filter(|i| !i.is_privileged()));
        text.push(Instr::Halt);
        let program = Program::new(text);
        match SisrVerifier::new(CostModel::pentium()).verify_program(&program) {
            Ok(_) => {
                let (mut cpu, segs) = user_cpu();
                let run = cpu.run(&program, &segs, 10_000);
                // A segment-limit fault is protection *working*; a privilege
                // fault on verified text would break the SISR argument.
                assert!(!matches!(run, Err(CpuError::PrivilegeViolation { .. })));
            }
            Err(report) => {
                assert!(
                    report.errors().all(|d| d.pass == Pass::SegmentDiscipline),
                    "unprivileged straight-line code rejected for the wrong reason: {report}"
                );
            }
        }
    });
}

/// Planting a single privileged instruction anywhere in otherwise-clean text
/// is always caught, at the planted index.
#[test]
fn a_planted_privileged_instruction_is_always_caught() {
    run_cases(0x5152, 512, |rng| {
        let mut text: Vec<Instr> =
            body(rng, 30).into_iter().filter(|i| !i.is_privileged()).collect();
        text.push(Instr::Halt);
        let planted = *rng.choose(&[Instr::Cli, Instr::Sti, Instr::Iret, Instr::LoadPageTable(0)]);
        let at = rng.index(text.len());
        text.insert(at, planted);
        let report = SisrVerifier::new(CostModel::pentium())
            .verify_program(&Program::new(text))
            .expect_err("privileged text must be rejected");
        assert!(
            report.errors().any(|d| d.index == Some(at)
                && d.kind == DiagnosticKind::PrivilegedInstruction { instr: planted }),
            "planted {planted:?} at {at} not named: {report}"
        );
    });
}

/// The verifier works from bytes, and acceptance preserves them: the
/// verified image's program re-encodes to exactly the scanned text.
#[test]
fn verification_roundtrips_the_byte_image() {
    run_cases(0x5153, 512, |rng| {
        let mut text: Vec<Instr> =
            body(rng, 40).into_iter().filter(|i| !i.is_privileged()).collect();
        text.push(Instr::Halt);
        let bytes = Program::new(text).to_bytes();
        if let Ok(img) = SisrVerifier::new(CostModel::pentium()).verify(&bytes) {
            assert_eq!(img.program().to_bytes(), bytes);
        }
    });
}

/// Verification is deterministic: the same text yields byte-identical
/// reports (diagnostics, pass records, and cycle bills).
#[test]
fn verification_is_deterministic() {
    run_cases(0x5154, 256, |rng| {
        let mut text = body(rng, 40);
        text.push(Instr::Halt);
        let bytes = Program::new(text).to_bytes();
        let v = SisrVerifier::new(CostModel::pentium());
        match (v.verify(&bytes), v.verify(&bytes)) {
            (Ok(a), Ok(b)) => assert_eq!(a, b),
            (Err(a), Err(b)) => assert_eq!(a, b),
            (a, b) => panic!("verdicts disagree: {a:?} vs {b:?}"),
        }
    });
}
