//! Table 2: the atom-constraint metadata.
//!
//! > | Constraint | Atom | Constraint logic |
//! > |------------|------|------------------|
//! > | 450 | 123 | `Select BEST (node1.Page1.html, node2.Page1.html)` |
//! > | 455 | 123 | `If processor-util > 90% then SWITCH ((node1.Page1.html, node2.Page1.html)` |
//! > | 595 | 153 | `If bandwidth > 30 < 100 Kbps then BEST(node1.videohalf..., node2..., node3...) else node3.videosmall.ram` |

use crate::atom::AtomId;

/// The constraint logic forms Table 2 uses.
#[derive(Debug, Clone, PartialEq)]
pub enum ConstraintLogic {
    /// `Select BEST(candidates)`: serve from the best-capacity node among
    /// the candidate replicas.
    SelectBest {
        /// Candidate `node.object` locations (node names).
        candidates: Vec<String>,
    },
    /// `If processor-util > threshold then SWITCH(candidates)`: migrate the
    /// serving agent (data + processing state) to the best candidate.
    SwitchOnCpu {
        /// Utilisation threshold in \[0, 1\] (the paper's 90 %).
        threshold: f64,
        /// Candidate destination nodes.
        candidates: Vec<String>,
    },
    /// `If lo < bandwidth < hi then BEST(preferred) else fallback`:
    /// bandwidth-conditional version selection.
    BandwidthVersion {
        /// Exclusive lower bandwidth bound (kbps).
        lo: f64,
        /// Exclusive upper bandwidth bound (kbps).
        hi: f64,
        /// Version ids preferred inside the band (e.g. the `videohalf`s).
        preferred: Vec<u32>,
        /// Version id served outside the band (e.g. `videosmall`).
        fallback: u32,
    },
}

/// One row of the atom-constraint table.
#[derive(Debug, Clone, PartialEq)]
pub struct AtomConstraint {
    /// Constraint id (450, 455, 595...).
    pub id: u32,
    /// The atom it governs.
    pub atom: AtomId,
    /// The logic.
    pub logic: ConstraintLogic,
}

impl AtomConstraint {
    /// Render in the paper's Table 2 syntax.
    #[must_use]
    pub fn render(&self) -> String {
        match &self.logic {
            ConstraintLogic::SelectBest { candidates } => {
                format!("Select BEST ({})", candidates.join(", "))
            }
            ConstraintLogic::SwitchOnCpu { threshold, candidates } => format!(
                "If processor-util > {:.0}% then SWITCH (({}))",
                threshold * 100.0,
                candidates.join(", ")
            ),
            ConstraintLogic::BandwidthVersion { lo, hi, preferred, fallback } => format!(
                "If bandwidth > {lo:.0} < {hi:.0} Kbps then BEST(versions {preferred:?}) else version {fallback}"
            ),
        }
    }
}

/// The exact constraint rows of the paper's Table 2. Version ids follow the
/// construction in [`crate::server::ServerConfig::paper_fleet`]: atom 153's
/// `videohalf` renditions are versions 1–3 on node1..node3 and
/// `videosmall` is version 4 on node3.
#[must_use]
pub fn paper_table2() -> Vec<AtomConstraint> {
    vec![
        AtomConstraint {
            id: 450,
            atom: AtomId(123),
            logic: ConstraintLogic::SelectBest { candidates: vec!["node1".into(), "node2".into()] },
        },
        AtomConstraint {
            id: 455,
            atom: AtomId(123),
            logic: ConstraintLogic::SwitchOnCpu {
                threshold: 0.9,
                candidates: vec!["node1".into(), "node2".into()],
            },
        },
        AtomConstraint {
            id: 595,
            atom: AtomId(153),
            logic: ConstraintLogic::BandwidthVersion {
                lo: 30.0,
                hi: 100.0,
                preferred: vec![1, 2, 3],
                fallback: 4,
            },
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_rows_match_table2() {
        let t2 = paper_table2();
        assert_eq!(t2.len(), 3);
        assert_eq!(t2[0].id, 450);
        assert_eq!(t2[0].atom, AtomId(123));
        assert_eq!(t2[1].id, 455);
        assert!(matches!(
            t2[1].logic,
            ConstraintLogic::SwitchOnCpu { threshold, .. } if (threshold - 0.9).abs() < 1e-12
        ));
        assert_eq!(t2[2].id, 595);
        assert!(matches!(
            t2[2].logic,
            ConstraintLogic::BandwidthVersion { lo, hi, .. }
                if (lo - 30.0).abs() < 1e-12 && (hi - 100.0).abs() < 1e-12
        ));
    }

    #[test]
    fn rendering_matches_paper_syntax() {
        let t2 = paper_table2();
        assert_eq!(t2[0].render(), "Select BEST (node1, node2)");
        assert!(t2[1].render().starts_with("If processor-util > 90% then SWITCH"));
        assert!(t2[2].render().starts_with("If bandwidth > 30 < 100 Kbps"));
    }
}
