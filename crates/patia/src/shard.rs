//! Shard handles: carving the fleet into transaction shards.
//!
//! The unbundled transaction core (`txn` crate) coordinates cross-shard
//! SWITCH as two-phase commit over per-shard data components, but it is
//! deliberately ignorant of the fleet: it sees opaque shard ids and
//! per-shard [`ReconfigurationPlan`]s. This module is the bridge — a
//! [`ShardHandle`] names a shard and lists the fleet nodes whose glue
//! instances it owns, and [`cross_shard_plans`] re-expresses an atom
//! migration (`atom:<id>` moving from one node's `host:<node>` slot to
//! another's) as one plan per involved shard, using exactly the glue
//! naming the chaos mirror established.

use crate::atom::AtomId;
use adl::ast::{Binding, PortRef};
use adl::diff::ReconfigurationPlan;
use std::collections::BTreeMap;

/// The glue component instance standing for a fleet node.
#[must_use]
pub fn host_instance(node: &str) -> String {
    format!("host:{node}")
}

/// The glue component instance standing for an atom's service.
#[must_use]
pub fn atom_instance(atom: AtomId) -> String {
    format!("atom:{}", atom.0)
}

/// The binding that records "this atom's service runs on this node".
#[must_use]
pub fn route_binding(atom: AtomId, node: &str) -> Binding {
    Binding {
        from: PortRef::on(&atom_instance(atom), "route"),
        to: PortRef::on(&host_instance(node), "slot"),
    }
}

/// One shard of the fleet: a stable numeric id (the `txn` crate's shard
/// identity), a display name, and the nodes whose glue instances live in
/// this shard's data component.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardHandle {
    id: u32,
    name: String,
    nodes: Vec<String>,
}

impl ShardHandle {
    /// A shard `id` named `name` owning `nodes`.
    #[must_use]
    pub fn new(id: u32, name: &str, nodes: Vec<String>) -> Self {
        Self { id, name: name.to_owned(), nodes }
    }

    /// The shard's numeric id.
    #[must_use]
    pub fn id(&self) -> u32 {
        self.id
    }

    /// The shard's display name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The nodes this shard owns.
    #[must_use]
    pub fn nodes(&self) -> &[String] {
        &self.nodes
    }

    /// Whether `node`'s glue instances live in this shard.
    #[must_use]
    pub fn owns(&self, node: &str) -> bool {
        self.nodes.iter().any(|n| n == node)
    }
}

/// The shard owning `node`, if any.
#[must_use]
pub fn shard_of<'a>(shards: &'a [ShardHandle], node: &str) -> Option<&'a ShardHandle> {
    shards.iter().find(|s| s.owns(node))
}

/// Per-shard plans for migrating `atom` from `from_node` to `to_node`.
///
/// The source shard unbinds the atom's route and stops its instance; the
/// target shard starts the instance (type `Agent`, matching the chaos
/// glue) and binds the route to the new host. When both nodes live in the
/// same shard the two halves merge into one plan — the coordinator then
/// degenerates into single-shard commit, which must behave identically.
///
/// Returns an empty map when either node is unowned: an unroutable
/// migration is the caller's bug to surface, not a half-planned txn.
#[must_use]
pub fn cross_shard_plans(
    shards: &[ShardHandle],
    atom: AtomId,
    from_node: &str,
    to_node: &str,
) -> BTreeMap<u32, ReconfigurationPlan> {
    let (Some(from), Some(to)) = (shard_of(shards, from_node), shard_of(shards, to_node)) else {
        return BTreeMap::new();
    };
    let mut plans: BTreeMap<u32, ReconfigurationPlan> = BTreeMap::new();
    let source = plans.entry(from.id()).or_default();
    source.unbind.push(route_binding(atom, from_node));
    source.stop.push((atom_instance(atom), "Agent".to_owned()));
    let target = plans.entry(to.id()).or_default();
    target.start.push((atom_instance(atom), "Agent".to_owned()));
    target.bind.push(route_binding(atom, to_node));
    plans
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fleet() -> Vec<ShardHandle> {
        vec![
            ShardHandle::new(0, "east", vec!["node1".into(), "node2".into()]),
            ShardHandle::new(1, "west", vec!["wp1".into()]),
        ]
    }

    #[test]
    fn shard_of_resolves_ownership() {
        let shards = fleet();
        assert_eq!(shard_of(&shards, "node2").map(ShardHandle::id), Some(0));
        assert_eq!(shard_of(&shards, "wp1").map(ShardHandle::name), Some("west"));
        assert!(shard_of(&shards, "ghost").is_none());
    }

    #[test]
    fn cross_shard_migration_splits_into_one_plan_per_shard() {
        let shards = fleet();
        let plans = cross_shard_plans(&shards, AtomId(123), "node1", "wp1");
        assert_eq!(plans.len(), 2);
        let source = &plans[&0];
        assert_eq!(source.unbind, vec![route_binding(AtomId(123), "node1")]);
        assert_eq!(source.stop, vec![("atom:123".to_owned(), "Agent".to_owned())]);
        assert!(source.start.is_empty() && source.bind.is_empty());
        let target = &plans[&1];
        assert_eq!(target.start, vec![("atom:123".to_owned(), "Agent".to_owned())]);
        assert_eq!(target.bind, vec![route_binding(AtomId(123), "wp1")]);
        assert!(target.unbind.is_empty() && target.stop.is_empty());
    }

    #[test]
    fn same_shard_migration_merges_into_one_plan() {
        let shards = fleet();
        let plans = cross_shard_plans(&shards, AtomId(153), "node1", "node2");
        assert_eq!(plans.len(), 1);
        let plan = &plans[&0];
        assert_eq!(plan.unbind.len(), 1);
        assert_eq!(plan.stop.len(), 1);
        assert_eq!(plan.start.len(), 1);
        assert_eq!(plan.bind, vec![route_binding(AtomId(153), "node2")]);
    }

    #[test]
    fn unowned_nodes_yield_no_plans() {
        let shards = fleet();
        assert!(cross_shard_plans(&shards, AtomId(123), "ghost", "wp1").is_empty());
        assert!(cross_shard_plans(&shards, AtomId(123), "node1", "ghost").is_empty());
    }
}
