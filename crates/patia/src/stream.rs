//! Intra-request adaptivity: mid-delivery codec swapping.
//!
//! > "Intra-request adaptivity could be that while the server is delivering
//! > some streaming media (e.g. audio) the codec of the stream is chosen to
//! > best suit the bandwidth, and if the bandwidth should change during mid
//! > delivery, then a new less bandwidth hungry codec is swapped in."
//!
//! This is also the paper's Kendra system ("a simple adaptive audio
//! server") distilled: a [`StreamSession`] delivers media at the bitrate of
//! its current codec; a bandwidth monitor feeds each tick; when the
//! smoothed bandwidth can no longer sustain the codec (or comfortably
//! affords a better one), the session swaps codecs **at the next frame
//! boundary** — the stream-level safe point — and the listener experiences
//! a quality change instead of a stall.

use std::fmt;

/// A media codec: a bitrate/quality point.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamCodec {
    /// Codec name (`pcm`, `half`, `small`...).
    pub name: String,
    /// Bytes per media-second this codec needs on the wire.
    pub bytes_per_sec: f64,
    /// Perceptual quality in (0, 1].
    pub quality: f64,
}

/// The standard ladder used by the examples/benches: full, half, small —
/// mirroring Table 2's `video`, `videohalf`, `videosmall`.
#[must_use]
pub fn default_ladder() -> Vec<StreamCodec> {
    vec![
        StreamCodec { name: "full".into(), bytes_per_sec: 120.0, quality: 1.0 },
        StreamCodec { name: "half".into(), bytes_per_sec: 60.0, quality: 0.6 },
        StreamCodec { name: "small".into(), bytes_per_sec: 25.0, quality: 0.3 },
    ]
}

/// One tick's delivery outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TickOutcome {
    /// A media second was delivered on time.
    Played,
    /// Bandwidth could not sustain the codec: the listener heard silence.
    Stalled,
    /// Delivery finished.
    Finished,
}

/// A codec swap record.
#[derive(Debug, Clone, PartialEq)]
pub struct Swap {
    /// Media position (seconds) of the frame boundary where the swap
    /// took effect.
    pub at_media_sec: u64,
    /// Codec swapped from.
    pub from: String,
    /// Codec swapped to.
    pub to: String,
}

impl fmt::Display for Swap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{}s {} -> {}", self.at_media_sec, self.from, self.to)
    }
}

/// A streaming session delivering `duration_secs` of media, one media
/// second per tick when bandwidth allows.
#[derive(Debug, Clone)]
pub struct StreamSession {
    ladder: Vec<StreamCodec>,
    current: usize,
    /// Whether mid-delivery swapping is enabled.
    pub adaptive: bool,
    /// Frame-boundary (safe-point) spacing in media seconds.
    pub frame_boundary: u64,
    duration_secs: u64,
    position_secs: u64,
    /// Headroom factor: a codec is sustainable when its rate ≤ bandwidth ×
    /// this (guards against flapping on noisy links).
    pub headroom: f64,
    ewma_bw: Option<f64>,
    stalls: u64,
    delivered_bytes: f64,
    quality_integral: f64,
    swaps: Vec<Swap>,
}

impl StreamSession {
    /// A session over a codec ladder (must be sorted best-first).
    ///
    /// # Panics
    /// If the ladder is empty.
    #[must_use]
    pub fn new(ladder: Vec<StreamCodec>, duration_secs: u64, adaptive: bool) -> Self {
        assert!(!ladder.is_empty(), "need at least one codec");
        Self {
            ladder,
            current: 0,
            adaptive,
            frame_boundary: 5,
            duration_secs,
            position_secs: 0,
            headroom: 0.9,
            ewma_bw: None,
            stalls: 0,
            delivered_bytes: 0.0,
            quality_integral: 0.0,
            swaps: Vec::new(),
        }
    }

    /// The codec currently in use.
    #[must_use]
    pub fn codec(&self) -> &StreamCodec {
        &self.ladder[self.current]
    }

    /// Stall count so far.
    #[must_use]
    pub fn stalls(&self) -> u64 {
        self.stalls
    }

    /// Bytes delivered so far.
    #[must_use]
    pub fn delivered_bytes(&self) -> f64 {
        self.delivered_bytes
    }

    /// Mean quality of the media seconds delivered so far.
    #[must_use]
    pub fn mean_quality(&self) -> f64 {
        if self.position_secs == 0 {
            0.0
        } else {
            self.quality_integral / self.position_secs as f64
        }
    }

    /// Codec swaps performed.
    #[must_use]
    pub fn swaps(&self) -> &[Swap] {
        &self.swaps
    }

    /// Media position (seconds delivered).
    #[must_use]
    pub fn position(&self) -> u64 {
        self.position_secs
    }

    fn best_sustainable(&self, bw: f64) -> usize {
        self.ladder
            .iter()
            .position(|c| c.bytes_per_sec <= bw * self.headroom)
            .unwrap_or(self.ladder.len() - 1)
    }

    /// Deliver one tick of media under `bandwidth` (bytes per tick).
    pub fn tick(&mut self, bandwidth: f64) -> TickOutcome {
        if self.position_secs >= self.duration_secs {
            return TickOutcome::Finished;
        }
        // Smooth the monitored bandwidth (a gauge, not a raw monitor).
        let bw = match self.ewma_bw {
            None => bandwidth,
            Some(prev) => 0.4 * bandwidth + 0.6 * prev,
        };
        self.ewma_bw = Some(bw);

        // Up-swaps wait for a frame boundary (the intra-request safe
        // point); down-swaps may also happen while stalled — a rebuffering
        // stream is delivering nothing, which is trivially a safe point.
        if self.adaptive {
            let target = self.best_sustainable(bw);
            let at_boundary = self.position_secs.is_multiple_of(self.frame_boundary);
            let emergency = target > self.current; // worse codec needed now
            if target != self.current && (at_boundary || emergency) {
                self.swaps.push(Swap {
                    at_media_sec: self.position_secs,
                    from: self.ladder[self.current].name.clone(),
                    to: self.ladder[target].name.clone(),
                });
                self.current = target;
            }
        }

        let need = self.ladder[self.current].bytes_per_sec;
        if bandwidth < need {
            self.stalls += 1;
            return TickOutcome::Stalled;
        }
        self.delivered_bytes += need;
        self.quality_integral += self.ladder[self.current].quality;
        self.position_secs += 1;
        if self.position_secs >= self.duration_secs {
            TickOutcome::Finished
        } else {
            TickOutcome::Played
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ubinet::link::BandwidthProfile;

    fn run(profile: &BandwidthProfile, adaptive: bool, secs: u64) -> StreamSession {
        let mut s = StreamSession::new(default_ladder(), secs, adaptive);
        let mut tick = 0u64;
        loop {
            tick += 1;
            assert!(tick < 100_000, "stream never finished");
            if s.tick(profile.at(tick)) == TickOutcome::Finished {
                return s;
            }
        }
    }

    #[test]
    fn rich_bandwidth_streams_full_quality_without_swaps() {
        let s = run(&BandwidthProfile::Constant(500.0), true, 60);
        assert_eq!(s.codec().name, "full");
        assert!(s.swaps().is_empty());
        assert_eq!(s.stalls(), 0);
        assert!((s.mean_quality() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn bandwidth_drop_mid_delivery_swaps_down_at_a_boundary() {
        // 500 B/t for 30 ticks, then 40 B/t: full (120 B/s) unsustainable.
        // (Recovers at tick 4000 so the non-adaptive baseline can finish
        // at all — it spends the whole trough stalled.)
        let profile = BandwidthProfile::Steps(vec![(0, 500.0), (30, 40.0), (4000, 500.0)]);
        let s = run(&profile, true, 60);
        assert!(!s.swaps().is_empty(), "must swap down");
        let swap = &s.swaps()[0];
        assert_eq!(swap.from, "full");
        assert!(s.mean_quality() < 1.0);
        // A few stalls while the EWMA catches up are allowed; far fewer
        // than the non-adaptive session's.
        let fixed = run(&profile, false, 60);
        assert!(s.stalls() < fixed.stalls() / 3, "{} vs {}", s.stalls(), fixed.stalls());
    }

    #[test]
    fn bandwidth_recovery_swaps_back_up() {
        let profile = BandwidthProfile::Steps(vec![(0, 40.0), (60, 500.0)]);
        let s = run(&profile, true, 90);
        let up = s
            .swaps()
            .iter()
            .find(|sw| sw.to == "full" && sw.at_media_sec > 0)
            .unwrap_or_else(|| panic!("{:?}", s.swaps()));
        assert_eq!(up.at_media_sec % 5, 0, "up-swaps only at frame boundaries");
        assert!(s.mean_quality() > 0.3, "ends at better quality");
    }

    #[test]
    fn static_session_stalls_through_the_trough() {
        let profile = BandwidthProfile::Steps(vec![(0, 500.0), (20, 40.0), (120, 500.0)]);
        let fixed = run(&profile, false, 60);
        let adaptive = run(&profile, true, 60);
        assert!(fixed.stalls() > 50, "fixed codec must stall through the trough");
        assert!(adaptive.stalls() < 10);
        // The trade: adaptive sacrifices quality, never delivery.
        assert!(adaptive.mean_quality() < fixed.mean_quality());
        assert!(adaptive.delivered_bytes() < fixed.delivered_bytes());
    }

    #[test]
    fn walk_profile_keeps_swaps_bounded() {
        // Noisy wireless: EWMA + headroom must avoid flapping every tick.
        let profile = BandwidthProfile::Walk { lo: 30.0, hi: 200.0, seed: 5 };
        let s = run(&profile, true, 200);
        assert!(s.swaps().len() < 40, "smoothing should bound swap churn, got {}", s.swaps().len());
        assert!(s.position() == 200);
    }

    #[test]
    #[should_panic(expected = "at least one codec")]
    fn empty_ladder_rejected() {
        let _ = StreamSession::new(vec![], 10, true);
    }
}
