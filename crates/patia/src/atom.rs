//! Atoms: `Atom = <a_id, name, type, <constraint>>`, replicated over nodes.
//!
//! Atoms are no longer in-memory-only: [`Atom::encode`]/[`Atom::decode`]
//! give each atom a deterministic byte form, and
//! [`AtomStore::persist_into`]/[`AtomStore::load_from`] move the whole
//! store through the cycle-billed [`store::StorageEngine`] — one record
//! per atom, keyed by `a_id`, written as one committed WAL transaction.
//! A crash below the adaptation journal now recovers atom metadata via
//! WAL replay instead of losing it.

use datacomp::version::{SelectionConstraints, Version, VersionKind, VersionList};
use std::collections::BTreeMap;

/// An atom identifier (the paper's `a_id`: 123, 153, ...).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AtomId(pub u32);

/// What kind of web object the atom is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AtomType {
    /// A whole HTML page.
    Html,
    /// A graphic.
    Graphic,
    /// A text frame.
    Text,
    /// A navigation button.
    Button,
    /// A video stream (`.ram` in the paper's Table 2).
    VideoStream,
    /// An audio stream (the Kendra lineage).
    AudioStream,
}

/// An atom: the smallest web object that cannot be subdivided.
#[derive(Debug, Clone, PartialEq)]
pub struct Atom {
    /// Identifier.
    pub id: AtomId,
    /// Name (`Page1.html`, `videohalf.ram`, ...).
    pub name: String,
    /// Type.
    pub ty: AtomType,
    /// Base size in bytes (the full-quality version).
    pub size_bytes: u64,
    /// Constraint ids attached to this atom (bodies live in the server's
    /// constraint table, mirroring Table 2's separate metadata table).
    pub constraint_ids: Vec<u32>,
    /// Versions of this atom: replicas on nodes, lower-quality renditions.
    pub versions: VersionList,
}

impl Atom {
    /// A new atom with no versions yet.
    #[must_use]
    pub fn new(id: AtomId, name: &str, ty: AtomType, size_bytes: u64) -> Self {
        Self {
            id,
            name: name.to_owned(),
            ty,
            size_bytes,
            constraint_ids: Vec::new(),
            versions: VersionList::new(),
        }
    }

    /// Register a full-quality replica on `node`.
    pub fn add_replica(&mut self, version_id: u32, node: &str) {
        self.versions.add(Version {
            id: version_id,
            location: node.to_owned(),
            kind: VersionKind::Replica,
            size_bytes: self.size_bytes,
            age: 0,
            bytes: None,
        });
    }

    /// Register a lower-quality rendition (e.g. `videohalf` at 0.5 quality
    /// and half the bytes) on `node`.
    pub fn add_rendition(&mut self, version_id: u32, node: &str, quality: f64, size_bytes: u64) {
        self.versions.add(Version {
            id: version_id,
            location: node.to_owned(),
            kind: VersionKind::LowerQuality { quality },
            size_bytes,
            age: 0,
            bytes: None,
        });
    }

    /// Nodes holding any version of this atom.
    #[must_use]
    pub fn holders(&self) -> Vec<&str> {
        let mut out: Vec<&str> = self.versions.all().iter().map(|v| v.location.as_str()).collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// `BEST` version under the given constraints.
    ///
    /// # Errors
    /// [`datacomp::version::SelectError`] when nothing satisfies.
    pub fn best_version(
        &self,
        c: &SelectionConstraints,
    ) -> Result<&Version, datacomp::version::SelectError> {
        self.versions.best(c)
    }

    /// Deterministic byte form for the storage engine (little-endian,
    /// length-prefixed strings). [`Atom::decode`] inverts it exactly.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        out.extend_from_slice(&self.id.0.to_le_bytes());
        out.push(self.ty.code());
        out.extend_from_slice(&self.size_bytes.to_le_bytes());
        put_str(&mut out, &self.name);
        out.extend_from_slice(&(self.constraint_ids.len() as u16).to_le_bytes());
        for c in &self.constraint_ids {
            out.extend_from_slice(&c.to_le_bytes());
        }
        let versions = self.versions.all();
        out.extend_from_slice(&(versions.len() as u16).to_le_bytes());
        for v in versions {
            out.extend_from_slice(&v.id.to_le_bytes());
            match &v.kind {
                VersionKind::Replica => out.push(0),
                VersionKind::Compressed { codec } => {
                    out.push(1);
                    put_str(&mut out, codec);
                }
                VersionKind::Summary { fraction } => {
                    out.push(2);
                    out.extend_from_slice(&fraction.to_bits().to_le_bytes());
                }
                VersionKind::LowerQuality { quality } => {
                    out.push(3);
                    out.extend_from_slice(&quality.to_bits().to_le_bytes());
                }
            }
            put_str(&mut out, &v.location);
            out.extend_from_slice(&v.size_bytes.to_le_bytes());
            out.extend_from_slice(&v.age.to_le_bytes());
            match &v.bytes {
                None => out.push(0),
                Some(b) => {
                    out.push(1);
                    out.extend_from_slice(&(b.len() as u32).to_le_bytes());
                    out.extend_from_slice(b);
                }
            }
        }
        out
    }

    /// Decode an atom from its [`Atom::encode`] byte form.
    #[must_use]
    pub fn decode(bytes: &[u8]) -> Option<Atom> {
        let mut c = Cursor { bytes, pos: 0 };
        let id = AtomId(c.u32()?);
        let ty = AtomType::from_code(c.u8()?)?;
        let size_bytes = c.u64()?;
        let name = c.str()?;
        let n_constraints = c.u16()? as usize;
        let mut constraint_ids = Vec::with_capacity(n_constraints);
        for _ in 0..n_constraints {
            constraint_ids.push(c.u32()?);
        }
        let n_versions = c.u16()? as usize;
        let mut versions = VersionList::new();
        for _ in 0..n_versions {
            let vid = c.u32()?;
            let kind = match c.u8()? {
                0 => VersionKind::Replica,
                1 => VersionKind::Compressed { codec: c.str()? },
                2 => VersionKind::Summary { fraction: f64::from_bits(c.u64()?) },
                3 => VersionKind::LowerQuality { quality: f64::from_bits(c.u64()?) },
                _ => return None,
            };
            let location = c.str()?;
            let vsize = c.u64()?;
            let age = c.u64()?;
            let vbytes = match c.u8()? {
                0 => None,
                1 => {
                    let len = c.u32()? as usize;
                    Some(c.take(len)?.to_vec())
                }
                _ => return None,
            };
            versions.add(Version {
                id: vid,
                location,
                kind,
                size_bytes: vsize,
                age,
                bytes: vbytes,
            });
        }
        if c.pos != bytes.len() {
            return None; // trailing garbage
        }
        Some(Atom { id, name, ty, size_bytes, constraint_ids, versions })
    }
}

impl AtomType {
    /// Wire code for [`Atom::encode`].
    #[must_use]
    pub fn code(self) -> u8 {
        match self {
            AtomType::Html => 0,
            AtomType::Graphic => 1,
            AtomType::Text => 2,
            AtomType::Button => 3,
            AtomType::VideoStream => 4,
            AtomType::AudioStream => 5,
        }
    }

    /// Inverse of [`AtomType::code`].
    #[must_use]
    pub fn from_code(code: u8) -> Option<Self> {
        Some(match code {
            0 => AtomType::Html,
            1 => AtomType::Graphic,
            2 => AtomType::Text,
            3 => AtomType::Button,
            4 => AtomType::VideoStream,
            5 => AtomType::AudioStream,
            _ => return None,
        })
    }
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u16).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

/// A bounds-checked little-endian reader for [`Atom::decode`].
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Cursor<'_> {
    fn take(&mut self, n: usize) -> Option<&[u8]> {
        let s = self.bytes.get(self.pos..self.pos + n)?;
        self.pos += n;
        Some(s)
    }

    fn u8(&mut self) -> Option<u8> {
        Some(self.take(1)?[0])
    }

    fn u16(&mut self) -> Option<u16> {
        Some(u16::from_le_bytes(self.take(2)?.try_into().ok()?))
    }

    fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.take(4)?.try_into().ok()?))
    }

    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }

    fn str(&mut self) -> Option<String> {
        let len = self.u16()? as usize;
        String::from_utf8(self.take(len)?.to_vec()).ok()
    }
}

/// The distributed atom store.
#[derive(Debug, Clone, Default)]
pub struct AtomStore {
    atoms: BTreeMap<AtomId, Atom>,
}

impl AtomStore {
    /// An empty store.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert (or replace) an atom.
    pub fn insert(&mut self, atom: Atom) {
        self.atoms.insert(atom.id, atom);
    }

    /// Look up an atom.
    #[must_use]
    pub fn get(&self, id: AtomId) -> Option<&Atom> {
        self.atoms.get(&id)
    }

    /// Mutable lookup.
    pub fn get_mut(&mut self, id: AtomId) -> Option<&mut Atom> {
        self.atoms.get_mut(&id)
    }

    /// All atom ids.
    pub fn ids(&self) -> impl Iterator<Item = AtomId> + '_ {
        self.atoms.keys().copied()
    }

    /// Number of atoms.
    #[must_use]
    pub fn len(&self) -> usize {
        self.atoms.len()
    }

    /// Whether the store is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.atoms.is_empty()
    }

    /// Persist every atom into the storage engine as one committed WAL
    /// transaction (one record per atom, keyed by `a_id`). Page IO and
    /// the commit's log force are billed by the engine.
    ///
    /// # Errors
    /// [`store::StoreError`] — a crashed engine or an atom whose encoded
    /// form exceeds one page.
    pub fn persist_into(
        &self,
        engine: &mut store::StorageEngine,
    ) -> Result<store::TxnSummary, store::StoreError> {
        let ops: Vec<store::StoreOp> = self
            .atoms
            .values()
            .map(|a| store::StoreOp::Put { key: u64::from(a.id.0), value: a.encode() })
            .collect();
        engine.apply(&ops)
    }

    /// Load a store from the engine's current committed state (for
    /// example, right after [`store::StorageEngine::recover`]).
    ///
    /// # Errors
    /// The engine's error as a string, or a description of the first
    /// undecodable record.
    pub fn load_from(engine: &mut store::StorageEngine) -> Result<Self, String> {
        let mut out = AtomStore::new();
        for (key, bytes) in engine.scan_all().map_err(|e| e.to_string())? {
            let atom =
                Atom::decode(&bytes).ok_or_else(|| format!("undecodable atom record {key}"))?;
            if u64::from(atom.id.0) != key {
                return Err(format!("atom {} stored under key {key}", atom.id.0));
            }
            out.insert(atom);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page() -> Atom {
        let mut a = Atom::new(AtomId(123), "Page1.html", AtomType::Html, 40_000);
        a.add_replica(1, "node1");
        a.add_replica(2, "node2");
        a
    }

    #[test]
    fn holders_deduplicate_and_sort() {
        let mut a = page();
        a.add_rendition(3, "node1", 0.5, 20_000);
        assert_eq!(a.holders(), vec!["node1", "node2"]);
    }

    #[test]
    fn best_version_prefers_small_rendition_when_quality_allows() {
        let mut video = Atom::new(AtomId(153), "video.ram", AtomType::VideoStream, 1_000_000);
        video.add_replica(1, "node1");
        video.add_rendition(2, "node2", 0.5, 500_000);
        video.add_rendition(3, "node3", 0.2, 150_000);
        let slow = SelectionConstraints { min_quality: 0.4, bandwidth: 10.0, ..Default::default() };
        assert_eq!(video.best_version(&slow).unwrap().id, 2, "videohalf");
        let strict =
            SelectionConstraints { min_quality: 1.0, bandwidth: 10.0, ..Default::default() };
        assert_eq!(video.best_version(&strict).unwrap().id, 1, "full only");
        let any = SelectionConstraints { min_quality: 0.0, bandwidth: 10.0, ..Default::default() };
        assert_eq!(video.best_version(&any).unwrap().id, 3, "videosmall");
    }

    #[test]
    fn codec_roundtrips_every_version_kind() {
        let mut a = Atom::new(AtomId(153), "video.ram", AtomType::VideoStream, 1_000_000);
        a.add_replica(1, "node1");
        a.add_rendition(2, "node2", 0.5, 500_000);
        a.versions.add(Version {
            id: 3,
            location: "laptop".to_owned(),
            kind: VersionKind::Compressed { codec: "rle".to_owned() },
            size_bytes: 9_000,
            age: 4,
            bytes: Some(vec![1, 2, 3]),
        });
        a.versions.add(Version {
            id: 4,
            location: "sensor".to_owned(),
            kind: VersionKind::Summary { fraction: 0.1 },
            size_bytes: 100,
            age: 0,
            bytes: None,
        });
        a.constraint_ids = vec![450, 451];
        let decoded = Atom::decode(&a.encode()).unwrap();
        assert_eq!(decoded, a);
    }

    #[test]
    fn decode_rejects_malformed_bytes() {
        let good = page().encode();
        assert!(Atom::decode(&good[..good.len() - 1]).is_none(), "truncated");
        let mut trailing = good;
        trailing.push(0);
        assert!(Atom::decode(&trailing).is_none(), "trailing garbage");
        assert!(Atom::decode(&[]).is_none(), "empty");
    }

    #[test]
    fn persist_load_roundtrip_and_crash_recovery() {
        let mut s = AtomStore::new();
        s.insert(page());
        let mut video = Atom::new(AtomId(153), "video.ram", AtomType::VideoStream, 1_000_000);
        video.add_rendition(2, "node2", 0.5, 500_000);
        s.insert(video);

        let mut eng = store::StorageEngine::new(4);
        s.persist_into(&mut eng).unwrap();
        let loaded = AtomStore::load_from(&mut eng).unwrap();
        assert_eq!(loaded.len(), 2);
        assert_eq!(loaded.get(AtomId(123)).unwrap(), s.get(AtomId(123)).unwrap());

        // Below-the-journal crash: the committed atoms come back via WAL
        // replay, not from anything volatile.
        eng.crash();
        eng.recover(&mut store::NoCrash).unwrap();
        let recovered = AtomStore::load_from(&mut eng).unwrap();
        assert_eq!(recovered.get(AtomId(153)).unwrap(), s.get(AtomId(153)).unwrap());
    }

    #[test]
    fn store_roundtrip() {
        let mut s = AtomStore::new();
        assert!(s.is_empty());
        s.insert(page());
        assert_eq!(s.len(), 1);
        assert_eq!(s.get(AtomId(123)).unwrap().name, "Page1.html");
        s.get_mut(AtomId(123)).unwrap().constraint_ids.push(450);
        assert_eq!(s.get(AtomId(123)).unwrap().constraint_ids, vec![450]);
        assert!(s.get(AtomId(999)).is_none());
    }
}
