//! Atoms: `Atom = <a_id, name, type, <constraint>>`, replicated over nodes.

use datacomp::version::{SelectionConstraints, Version, VersionKind, VersionList};
use std::collections::BTreeMap;

/// An atom identifier (the paper's `a_id`: 123, 153, ...).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AtomId(pub u32);

/// What kind of web object the atom is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AtomType {
    /// A whole HTML page.
    Html,
    /// A graphic.
    Graphic,
    /// A text frame.
    Text,
    /// A navigation button.
    Button,
    /// A video stream (`.ram` in the paper's Table 2).
    VideoStream,
    /// An audio stream (the Kendra lineage).
    AudioStream,
}

/// An atom: the smallest web object that cannot be subdivided.
#[derive(Debug, Clone, PartialEq)]
pub struct Atom {
    /// Identifier.
    pub id: AtomId,
    /// Name (`Page1.html`, `videohalf.ram`, ...).
    pub name: String,
    /// Type.
    pub ty: AtomType,
    /// Base size in bytes (the full-quality version).
    pub size_bytes: u64,
    /// Constraint ids attached to this atom (bodies live in the server's
    /// constraint table, mirroring Table 2's separate metadata table).
    pub constraint_ids: Vec<u32>,
    /// Versions of this atom: replicas on nodes, lower-quality renditions.
    pub versions: VersionList,
}

impl Atom {
    /// A new atom with no versions yet.
    #[must_use]
    pub fn new(id: AtomId, name: &str, ty: AtomType, size_bytes: u64) -> Self {
        Self {
            id,
            name: name.to_owned(),
            ty,
            size_bytes,
            constraint_ids: Vec::new(),
            versions: VersionList::new(),
        }
    }

    /// Register a full-quality replica on `node`.
    pub fn add_replica(&mut self, version_id: u32, node: &str) {
        self.versions.add(Version {
            id: version_id,
            location: node.to_owned(),
            kind: VersionKind::Replica,
            size_bytes: self.size_bytes,
            age: 0,
            bytes: None,
        });
    }

    /// Register a lower-quality rendition (e.g. `videohalf` at 0.5 quality
    /// and half the bytes) on `node`.
    pub fn add_rendition(&mut self, version_id: u32, node: &str, quality: f64, size_bytes: u64) {
        self.versions.add(Version {
            id: version_id,
            location: node.to_owned(),
            kind: VersionKind::LowerQuality { quality },
            size_bytes,
            age: 0,
            bytes: None,
        });
    }

    /// Nodes holding any version of this atom.
    #[must_use]
    pub fn holders(&self) -> Vec<&str> {
        let mut out: Vec<&str> = self.versions.all().iter().map(|v| v.location.as_str()).collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// `BEST` version under the given constraints.
    ///
    /// # Errors
    /// [`datacomp::version::SelectError`] when nothing satisfies.
    pub fn best_version(
        &self,
        c: &SelectionConstraints,
    ) -> Result<&Version, datacomp::version::SelectError> {
        self.versions.best(c)
    }
}

/// The distributed atom store.
#[derive(Debug, Clone, Default)]
pub struct AtomStore {
    atoms: BTreeMap<AtomId, Atom>,
}

impl AtomStore {
    /// An empty store.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert (or replace) an atom.
    pub fn insert(&mut self, atom: Atom) {
        self.atoms.insert(atom.id, atom);
    }

    /// Look up an atom.
    #[must_use]
    pub fn get(&self, id: AtomId) -> Option<&Atom> {
        self.atoms.get(&id)
    }

    /// Mutable lookup.
    pub fn get_mut(&mut self, id: AtomId) -> Option<&mut Atom> {
        self.atoms.get_mut(&id)
    }

    /// All atom ids.
    pub fn ids(&self) -> impl Iterator<Item = AtomId> + '_ {
        self.atoms.keys().copied()
    }

    /// Number of atoms.
    #[must_use]
    pub fn len(&self) -> usize {
        self.atoms.len()
    }

    /// Whether the store is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.atoms.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page() -> Atom {
        let mut a = Atom::new(AtomId(123), "Page1.html", AtomType::Html, 40_000);
        a.add_replica(1, "node1");
        a.add_replica(2, "node2");
        a
    }

    #[test]
    fn holders_deduplicate_and_sort() {
        let mut a = page();
        a.add_rendition(3, "node1", 0.5, 20_000);
        assert_eq!(a.holders(), vec!["node1", "node2"]);
    }

    #[test]
    fn best_version_prefers_small_rendition_when_quality_allows() {
        let mut video = Atom::new(AtomId(153), "video.ram", AtomType::VideoStream, 1_000_000);
        video.add_replica(1, "node1");
        video.add_rendition(2, "node2", 0.5, 500_000);
        video.add_rendition(3, "node3", 0.2, 150_000);
        let slow = SelectionConstraints { min_quality: 0.4, bandwidth: 10.0, ..Default::default() };
        assert_eq!(video.best_version(&slow).unwrap().id, 2, "videohalf");
        let strict =
            SelectionConstraints { min_quality: 1.0, bandwidth: 10.0, ..Default::default() };
        assert_eq!(video.best_version(&strict).unwrap().id, 1, "full only");
        let any = SelectionConstraints { min_quality: 0.0, bandwidth: 10.0, ..Default::default() };
        assert_eq!(video.best_version(&any).unwrap().id, 3, "videosmall");
    }

    #[test]
    fn store_roundtrip() {
        let mut s = AtomStore::new();
        assert!(s.is_empty());
        s.insert(page());
        assert_eq!(s.len(), 1);
        assert_eq!(s.get(AtomId(123)).unwrap().name, "Page1.html");
        s.get_mut(AtomId(123)).unwrap().constraint_ids.push(450);
        assert_eq!(s.get(AtomId(123)).unwrap().constraint_ids, vec![450]);
        assert!(s.get(AtomId(999)).is_none());
    }
}
