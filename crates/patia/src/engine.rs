//! The event-driven serving core: a [`TimerWheel`] of engine events over
//! the virtual clock, driving [`PatiaServer::step_at`] only on ticks
//! where something is due.
//!
//! The legacy loop ticks the server unconditionally; this engine inverts
//! control. Arrivals (either explicit batches or lazily-expanded
//! [`FlowSpec`] cohorts), node kills/revivals, and wake-ups are all
//! events on the wheel; ticks with no due events are *skipped* — but only
//! when the server is provably quiescent
//! ([`PatiaServer::is_quiescent`]). After any "hot" tick (arrivals,
//! completions, switches, or non-zero recorded utilisation) the engine
//! schedules a wake-up for the next tick, so the last processed tick
//! before a skip always recorded all-zero utilisation — which is what
//! makes the gauge re-sample at the next event boundary
//! ([`PatiaServer::resample_gauges`]) carry forward exactly the values
//! the legacy per-tick loop would have recorded.

use crate::atom::AtomId;
use crate::server::{PatiaServer, TickStats};
use crate::wheel::TimerWheel;
use crate::workload::{FlowSpec, FlowState};

/// An event on the engine's timer wheel.
#[derive(Debug, Clone)]
pub enum EngineEvent {
    /// Explicit arrival batches for one tick (the differential harness's
    /// path: the legacy workload generators enqueue their requests here).
    Arrivals(Vec<(AtomId, u64)>),
    /// A flow's per-tick pulse: expand flow `i` at the due tick and
    /// re-arm for the next one while the flow stays active.
    FlowPulse(usize),
    /// Process the tick even with no arrivals — the cooldown scheduled
    /// after every hot tick, and the drain driver once flows end.
    Wake,
    /// Kill a node at the due tick, before serving.
    Kill(String),
    /// Revive a node at the due tick, before serving.
    Revive(String),
}

/// Cumulative counters over an engine run — the scenario-level report
/// surface (golden comparisons use the per-tick [`TickStats`] instead).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineTotals {
    /// Requests admitted into the server (arrivals seen by `step_at`).
    pub arrivals: u64,
    /// Requests shed at the engine boundary by the admission cap.
    pub shed: u64,
    /// Requests completed.
    pub completed: u64,
    /// Requests dropped by the server (unknown/holderless atoms).
    pub dropped: u64,
    /// Requests served degraded.
    pub degraded: u64,
    /// SWITCH events performed (migrations + spreads + evacuations).
    pub switches: u64,
    /// Evacuations among those switches.
    pub evacuations: u64,
    /// Failed SWITCH attempts.
    pub failed_switches: u64,
    /// Failed attempts that were retries.
    pub switch_retries: u64,
    /// Ticks actually processed.
    pub ticks_processed: u64,
    /// Quiescent ticks skipped outright.
    pub ticks_skipped: u64,
    /// Sum of completion latencies (ticks).
    pub latency_sum: u64,
    /// Largest completion latency seen.
    pub latency_max: u64,
}

impl EngineTotals {
    /// Mean completion latency in ticks, `None` before any completion.
    #[must_use]
    pub fn latency_mean(&self) -> Option<f64> {
        (self.completed > 0).then(|| self.latency_sum as f64 / self.completed as f64)
    }
}

/// The event engine wrapping a [`PatiaServer`].
#[derive(Debug)]
pub struct EventEngine {
    server: PatiaServer,
    wheel: TimerWheel<EngineEvent>,
    flows: Vec<FlowState>,
    /// Admission cap: once this many requests have been admitted, the
    /// rest are shed (and counted) instead of queued.
    shed_cap: Option<u64>,
    totals: EngineTotals,
}

impl EventEngine {
    /// Wrap a server. The wheel starts at the server's current clock.
    #[must_use]
    pub fn new(server: PatiaServer) -> Self {
        let mut wheel = TimerWheel::new();
        // Align the wheel with a server that has already ticked.
        let _ = wheel.pop_due(server.now());
        Self { server, wheel, flows: Vec::new(), shed_cap: None, totals: EngineTotals::default() }
    }

    /// The wrapped server.
    #[must_use]
    pub fn server(&self) -> &PatiaServer {
        &self.server
    }

    /// Mutable access to the wrapped server — how drivers inject faults
    /// between ticks, exactly as they would against the legacy loop.
    pub fn server_mut(&mut self) -> &mut PatiaServer {
        &mut self.server
    }

    /// The cumulative run totals so far.
    #[must_use]
    pub fn totals(&self) -> &EngineTotals {
        &self.totals
    }

    /// The engine's timer wheel, read-only — the row source for
    /// `sys.timers` introspection.
    #[must_use]
    pub fn wheel(&self) -> &TimerWheel<EngineEvent> {
        &self.wheel
    }

    /// Cap total admitted requests; arrivals beyond the cap are shed and
    /// counted in [`EngineTotals::shed`].
    pub fn set_shed_cap(&mut self, cap: u64) {
        self.shed_cap = Some(cap);
    }

    /// Register a flow: its first pulse is scheduled at `spec.start`, and
    /// each pulse re-arms the next while the flow is active — lazily
    /// expanded, never materialised per request.
    pub fn add_flow(&mut self, spec: FlowSpec) {
        let idx = self.flows.len();
        self.flows.push(FlowState::new(spec));
        if spec.start < spec.end {
            self.wheel.schedule(spec.start, EngineEvent::FlowPulse(idx));
        }
    }

    /// Enqueue explicit arrival batches for `tick`.
    pub fn enqueue_arrivals(&mut self, tick: u64, batches: Vec<(AtomId, u64)>) {
        self.wheel.schedule(tick, EngineEvent::Arrivals(batches));
    }

    /// Schedule a node kill at `tick` (applied before that tick serves).
    pub fn schedule_kill(&mut self, tick: u64, node: &str) {
        self.wheel.schedule(tick, EngineEvent::Kill(node.to_owned()));
    }

    /// Schedule a node revival at `tick`.
    pub fn schedule_revive(&mut self, tick: u64, node: &str) {
        self.wheel.schedule(tick, EngineEvent::Revive(node.to_owned()));
    }

    /// Schedule a bare wake-up at `tick`.
    pub fn schedule_wake(&mut self, tick: u64) {
        self.wheel.schedule(tick, EngineEvent::Wake);
    }

    /// Process exactly tick `now`: drain every event due at or before it,
    /// apply faults, expand flows, shed against the admission cap, and
    /// run one batched server step. Returns the tick's stats.
    ///
    /// # Panics
    /// If `now` does not advance the server's clock.
    pub fn run_tick(&mut self, now: u64, client_bandwidth_kbps: f64) -> TickStats {
        let skipped = now - self.server.now() - 1;
        if skipped > 0 {
            // The gap was provably quiescent: re-sample the gauges up to
            // the tick before this one so windowed gauges see the same
            // per-tick series the legacy loop would have recorded.
            self.server.resample_gauges(now - 1);
            self.totals.ticks_skipped += skipped;
        }
        let mut batches: Vec<(AtomId, u64)> = Vec::new();
        for (_, ev) in self.wheel.pop_due(now) {
            match ev {
                EngineEvent::Arrivals(b) => batches.extend(b),
                EngineEvent::FlowPulse(i) => {
                    let n = self.flows[i].emit(now);
                    if n > 0 {
                        batches.push((self.flows[i].spec().atom, n));
                    }
                    if self.flows[i].active_at(now + 1) {
                        self.wheel.schedule(now + 1, EngineEvent::FlowPulse(i));
                    }
                }
                EngineEvent::Wake => {}
                EngineEvent::Kill(node) => {
                    self.server.kill_node(&node);
                }
                EngineEvent::Revive(node) => {
                    self.server.revive_node(&node);
                }
            }
        }
        if let Some(cap) = self.shed_cap {
            let mut room = cap.saturating_sub(self.totals.arrivals);
            for b in &mut batches {
                let admit = b.1.min(room);
                self.totals.shed += b.1 - admit;
                b.1 = admit;
                room -= admit;
            }
            batches.retain(|&(_, n)| n > 0);
        }
        let stats = self.server.step_at(now, &batches, client_bandwidth_kbps);
        self.absorb(&stats);
        // A hot tick earns a cooldown: the next tick always processes, so
        // a skip can only begin after a tick that recorded all-zero
        // utilisation and left the server quiescent.
        let hot = stats.arrivals > 0
            || !stats.latencies.is_empty()
            || !stats.migrations.is_empty()
            || stats.utilisation.values().any(|&u| u != 0.0);
        if hot || !self.server.is_quiescent() {
            self.wheel.schedule(now + 1, EngineEvent::Wake);
        }
        stats
    }

    /// Run the engine until the wheel is exhausted or the next due tick
    /// would pass `end`. Returns the totals. Ticks with no due events are
    /// skipped wholesale — the whole point of the wheel.
    pub fn run_to(&mut self, end: u64, client_bandwidth_kbps: f64) -> EngineTotals {
        while let Some(due) = self.wheel.next_deadline() {
            if due > end {
                break;
            }
            let now = due.max(self.server.now() + 1);
            self.run_tick(now, client_bandwidth_kbps);
        }
        self.totals
    }

    /// Fold one tick's stats into the run totals.
    fn absorb(&mut self, stats: &TickStats) {
        self.totals.arrivals += stats.arrivals as u64;
        self.totals.completed += stats.latencies.len() as u64;
        for &l in &stats.latencies {
            self.totals.latency_sum += l;
            self.totals.latency_max = self.totals.latency_max.max(l);
        }
        self.totals.dropped += stats.faults.dropped;
        self.totals.degraded += stats.faults.degraded;
        self.totals.switches += stats.migrations.len() as u64;
        self.totals.evacuations += stats.faults.evacuations;
        self.totals.failed_switches += stats.faults.failed_switches;
        self.totals.switch_retries += stats.faults.switch_retries;
        self.totals.ticks_processed += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::ServerConfig;
    use crate::workload::FlowBurst;

    fn engine(work_per_request: u64) -> EventEngine {
        let (net, atoms, constraints) = ServerConfig::paper_fleet();
        EventEngine::new(PatiaServer::new(
            net,
            atoms,
            constraints,
            ServerConfig { adaptive: true, work_per_request },
        ))
    }

    #[test]
    fn quiescent_gaps_are_skipped_not_processed() {
        let mut e = engine(400);
        e.enqueue_arrivals(5, vec![(AtomId(123), 3)]);
        e.enqueue_arrivals(1_000, vec![(AtomId(123), 2)]);
        let totals = e.run_to(2_000, 500.0);
        assert_eq!(totals.arrivals, 5);
        assert_eq!(totals.completed, 5);
        assert!(
            totals.ticks_processed < 20,
            "two small bursts must not process ~1000 ticks (got {})",
            totals.ticks_processed
        );
        assert!(
            totals.ticks_skipped > 900,
            "the gap must be skipped (got {})",
            totals.ticks_skipped
        );
        assert_eq!(
            totals.ticks_processed + totals.ticks_skipped,
            e.server().now(),
            "every tick is either processed or skipped"
        );
    }

    #[test]
    fn engine_totals_match_a_legacy_tick_loop() {
        // Same workload through the shim and the engine, tick by tick:
        // identical TickStats, hence identical totals.
        let reqs_at = |t: u64| -> Vec<AtomId> {
            if (10..30).contains(&t) {
                vec![AtomId(123); 4]
            } else {
                Vec::new()
            }
        };
        let (net, atoms, constraints) = ServerConfig::paper_fleet();
        let mut legacy = PatiaServer::new(
            net,
            atoms,
            constraints,
            ServerConfig { adaptive: true, work_per_request: 400 },
        );
        let mut legacy_stats = Vec::new();
        for t in 1..=200 {
            legacy_stats.push(legacy.tick(&reqs_at(t), 500.0));
        }
        let mut e = engine(400);
        let mut engine_stats = Vec::new();
        for t in 1..=200 {
            let batches: Vec<(AtomId, u64)> = reqs_at(t).iter().map(|&a| (a, 1)).collect();
            e.enqueue_arrivals(t, batches);
            engine_stats.push(e.run_tick(t, 500.0));
        }
        assert_eq!(legacy_stats, engine_stats);
    }

    #[test]
    fn flows_expand_lazily_and_conserve_totals() {
        let spec = FlowSpec {
            atom: AtomId(123),
            start: 10,
            end: 60,
            rate: 3.5,
            ramp: 10,
            burst: Some(FlowBurst { at: 30, len: 5, multiplier: 2.0 }),
        };
        let mut e = engine(1);
        e.add_flow(spec);
        let totals = e.run_to(5_000, 500.0);
        assert_eq!(totals.arrivals, spec.total_requests());
        assert_eq!(totals.completed + e.server().queued_requests(), totals.arrivals);
        assert_eq!(totals.shed, 0);
    }

    #[test]
    fn shed_cap_bounds_admissions_and_counts_the_rest() {
        let spec =
            FlowSpec { atom: AtomId(123), start: 1, end: 41, rate: 5.0, ramp: 0, burst: None };
        let mut e = engine(1);
        e.add_flow(spec);
        e.set_shed_cap(120);
        let totals = e.run_to(5_000, 500.0);
        assert_eq!(totals.arrivals, 120);
        assert_eq!(totals.shed, 80);
        assert_eq!(totals.arrivals + totals.shed, spec.total_requests());
    }

    #[test]
    fn scheduled_kill_and_revive_apply_before_the_tick_serves() {
        let mut e = engine(400);
        let home = e.server().agents(AtomId(123))[0].node.clone();
        e.schedule_kill(10, &home);
        e.schedule_revive(40, &home);
        e.enqueue_arrivals(12, vec![(AtomId(123), 2)]);
        // Wake ticks keep the clock moving through the incident window.
        let totals = e.run_to(200, 500.0);
        assert!(totals.evacuations >= 1, "the stranded agent must evacuate");
        assert!(e.server().agents(AtomId(123)).iter().all(|a| a.node != home || {
            // after revival an agent may legitimately move back
            true
        }));
        assert_eq!(totals.completed, 2, "the requests survive the node death");
        assert!(e.server().is_quiescent(), "the incident fully settles");
    }
}
