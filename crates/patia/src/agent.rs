//! Service agents: the components that receive requests, find the
//! appropriate atom, and serve it — and that **migrate whole** under
//! constraint 455.
//!
//! > "The action SWITCH indicates to the session manager that not only
//! > should the Adaptivity Manager save the data state, but also the
//! > processing state, as it is this that is about to migrate. That is,
//! > essentially the whole service-agent is mobile."
//!
//! Queue entries are *batches*: a run of same-tick, same-cost requests is
//! held as one [`InFlight`] with a `count`, so a flow-level cohort of
//! thousands of clients costs one entry instead of thousands. The legacy
//! per-request [`ServiceAgent::accept`] path still stores one entry per
//! request (`count == 1`), which keeps queue length, SWITCH state sizes,
//! and Spread splits byte-identical to the pre-batching engine.

use crate::atom::AtomId;
use std::collections::VecDeque;

/// A queued batch of identical requests being processed by an agent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InFlight {
    /// The atom requested.
    pub atom: AtomId,
    /// Tick the requests arrived.
    pub arrived_at: u64,
    /// Remaining work units to serve the batch's *head* request.
    pub remaining_work: u64,
    /// Requests in this batch (the head plus `count - 1` untouched ones).
    pub count: u64,
    /// Full per-request cost — what each request behind the head needs.
    pub work_each: u64,
}

/// A service agent: serves one atom's requests on its current node.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceAgent {
    /// The atom this agent serves.
    pub atom: AtomId,
    /// Node the agent currently runs on.
    pub node: String,
    /// Request queue (processing state — migrates with the agent).
    pub queue: VecDeque<InFlight>,
    /// Requests served over the agent's lifetime (data state).
    pub served: u64,
    /// How many times the agent has migrated.
    pub migrations: u32,
}

impl ServiceAgent {
    /// A fresh agent on `node`.
    #[must_use]
    pub fn new(atom: AtomId, node: &str) -> Self {
        Self { atom, node: node.to_owned(), queue: VecDeque::new(), served: 0, migrations: 0 }
    }

    /// Accept a request at `tick` costing `work` units. Always appends its
    /// own entry — never coalesces — so the per-request path keeps the
    /// exact queue shape the golden traces were recorded against.
    pub fn accept(&mut self, tick: u64, work: u64) {
        self.accept_batch(tick, work, 1);
    }

    /// Accept `n` identical requests at `tick` as one queue entry. The
    /// flow-level arrival path: a cohort costs O(1) queue space.
    pub fn accept_batch(&mut self, tick: u64, work: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.queue.push_back(InFlight {
            atom: self.atom,
            arrived_at: tick,
            remaining_work: work,
            count: n,
            work_each: work,
        });
    }

    /// Spend up to `budget` work units serving queued requests; returns the
    /// (arrival, completion) ticks of requests completed this tick.
    pub fn step(&mut self, now: u64, budget: u64) -> Vec<(u64, u64)> {
        self.step_grouped(budget)
            .into_iter()
            .flat_map(|(arrived, k)| std::iter::repeat_n((arrived, now), k as usize))
            .collect()
    }

    /// The batched serving step: spend up to `budget` work units and
    /// return `(arrived_at, completed)` groups in completion order. The
    /// per-request semantics are exactly [`ServiceAgent::step`]'s — a
    /// request completes only while budget remains (zero-work requests
    /// included), and a partially-served head keeps its progress — but a
    /// batch of `k` identical requests is retired with O(1) arithmetic.
    pub fn step_grouped(&mut self, mut budget: u64) -> Vec<(u64, u64)> {
        let mut out: Vec<(u64, u64)> = Vec::new();
        while budget > 0 {
            let Some(front) = self.queue.front_mut() else { break };
            if front.remaining_work > budget {
                front.remaining_work -= budget;
                break; // budget exhausted mid-request
            }
            budget -= front.remaining_work;
            let arrived = front.arrived_at;
            front.count -= 1;
            let more =
                budget.checked_div(front.work_each).map_or(front.count, |fit| front.count.min(fit));
            budget -= more * front.work_each;
            front.count -= more;
            let done = 1 + more;
            if front.count == 0 {
                self.queue.pop_front();
            } else {
                front.remaining_work = front.work_each;
            }
            self.served += done;
            out.push((arrived, done));
        }
        out
    }

    /// Work units currently queued (the demand this agent places on its
    /// node), including every request behind each batch head.
    #[must_use]
    pub fn queued_work(&self) -> u64 {
        self.queue.iter().map(|r| r.remaining_work + (r.count - 1) * r.work_each).sum()
    }

    /// Requests currently queued (batch entries weighted by their count).
    #[must_use]
    pub fn queued_requests(&self) -> u64 {
        self.queue.iter().map(|r| r.count).sum()
    }

    /// Detach the last `want` *requests* from the queue, preserving order —
    /// the Spread split. Whole batch entries move when they fit; a batch
    /// straddling the cut is split, with the untouched tail requests
    /// moving and the (possibly part-served) head staying put.
    pub fn split_back(&mut self, mut want: u64) -> VecDeque<InFlight> {
        let mut moved = VecDeque::new();
        while want > 0 {
            let Some(mut back) = self.queue.pop_back() else { break };
            if back.count <= want {
                want -= back.count;
                moved.push_front(back);
            } else {
                let tail = InFlight {
                    atom: back.atom,
                    arrived_at: back.arrived_at,
                    remaining_work: back.work_each,
                    count: want,
                    work_each: back.work_each,
                };
                back.count -= want;
                self.queue.push_back(back);
                moved.push_front(tail);
                want = 0;
            }
        }
        moved
    }

    /// SWITCH: migrate to `dest`, carrying queue (processing state) and
    /// counters (data state). Returns the serialised state size in bytes —
    /// what the Adaptivity Manager must ship across the network.
    pub fn migrate(&mut self, dest: &str) -> u64 {
        let state_bytes = 64 + self.queued_requests() * 24;
        self.node = dest.to_owned();
        self.migrations += 1;
        state_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serves_in_fifo_order_within_budget() {
        let mut a = ServiceAgent::new(AtomId(1), "node1");
        a.accept(0, 10);
        a.accept(0, 10);
        a.accept(1, 10);
        let done = a.step(2, 25);
        assert_eq!(done.len(), 2, "25 units finish two 10-unit requests");
        assert_eq!(a.queue.len(), 1);
        assert_eq!(a.queue[0].remaining_work, 5, "third is half-served");
        let done = a.step(3, 100);
        assert_eq!(done, vec![(1, 3)]);
        assert_eq!(a.served, 3);
    }

    #[test]
    fn queued_work_reflects_partial_progress() {
        let mut a = ServiceAgent::new(AtomId(1), "n");
        a.accept(0, 8);
        a.accept(0, 8);
        assert_eq!(a.queued_work(), 16);
        a.step(1, 4);
        assert_eq!(a.queued_work(), 12);
    }

    #[test]
    fn migration_preserves_processing_state() {
        let mut a = ServiceAgent::new(AtomId(1), "node1");
        a.accept(0, 10);
        a.accept(0, 10);
        a.step(1, 10);
        let before_queue = a.queue.clone();
        let before_served = a.served;
        let bytes = a.migrate("node2");
        assert_eq!(a.node, "node2");
        assert_eq!(a.queue, before_queue, "in-flight requests travel with the agent");
        assert_eq!(a.served, before_served);
        assert_eq!(a.migrations, 1);
        assert!(bytes >= 64);
        // Serving continues seamlessly on the new node.
        let done = a.step(2, 100);
        assert_eq!(done.len(), 1);
    }

    #[test]
    fn zero_work_request_completes_immediately_without_panicking() {
        let mut a = ServiceAgent::new(AtomId(1), "n");
        a.accept(0, 0);
        a.accept(0, 3);
        let done = a.step(1, 5);
        assert_eq!(done.len(), 2, "free request and the 3-unit one both finish");
        assert!(a.queue.is_empty());
        assert_eq!(a.served, 2);
    }

    #[test]
    fn idle_agent_steps_to_nothing() {
        let mut a = ServiceAgent::new(AtomId(1), "n");
        assert!(a.step(5, 100).is_empty());
        assert_eq!(a.queued_work(), 0);
    }

    #[test]
    fn batch_entry_is_equivalent_to_individual_accepts() {
        let mut batched = ServiceAgent::new(AtomId(1), "n");
        let mut singles = ServiceAgent::new(AtomId(1), "n");
        batched.accept_batch(0, 10, 5);
        for _ in 0..5 {
            singles.accept(0, 10);
        }
        assert_eq!(batched.queued_work(), singles.queued_work());
        assert_eq!(batched.queued_requests(), singles.queued_requests());
        // 33 units: three complete, the fourth is 3 units in.
        assert_eq!(batched.step(1, 33), singles.step(1, 33));
        assert_eq!(batched.queued_work(), singles.queued_work());
        assert_eq!(batched.queued_requests(), 2);
        assert_eq!(batched.queue.len(), 1, "still one physical entry");
        assert_eq!(batched.step(2, 100), singles.step(2, 100));
        assert_eq!(batched.served, singles.served);
    }

    #[test]
    fn grouped_step_groups_by_entry() {
        let mut a = ServiceAgent::new(AtomId(1), "n");
        a.accept_batch(0, 4, 3);
        a.accept_batch(1, 4, 2);
        assert_eq!(a.step_grouped(17), vec![(0, 3), (1, 1)]);
        assert_eq!(a.queued_work(), 3, "fifth request is 1 unit in");
    }

    #[test]
    fn zero_work_batches_complete_together() {
        let mut a = ServiceAgent::new(AtomId(1), "n");
        a.accept_batch(0, 0, 1000);
        a.accept_batch(0, 2, 1);
        assert_eq!(a.step_grouped(2), vec![(0, 1000), (0, 1)]);
        assert!(a.queue.is_empty());
        assert_eq!(a.step_grouped(0), vec![], "zero budget serves nothing");
    }

    #[test]
    fn split_back_moves_tail_requests_and_splits_straddlers() {
        let mut a = ServiceAgent::new(AtomId(1), "n");
        a.accept_batch(0, 10, 4);
        a.accept_batch(1, 10, 2);
        a.step(1, 5); // head of the first batch is part-served
        let moved = a.split_back(3);
        assert_eq!(moved.iter().map(|e| e.count).sum::<u64>(), 3);
        assert_eq!(a.queued_requests(), 3);
        assert_eq!(a.queued_work(), 5 + 2 * 10, "part-served head stays put");
        assert_eq!(moved[0].arrived_at, 0, "split tail keeps its arrival tick");
        assert_eq!(moved[0].count, 1);
        assert_eq!(moved[1].count, 2, "whole back entry moved intact");
        // Asking for more than is queued drains without panicking.
        let rest = a.split_back(100);
        assert_eq!(rest.iter().map(|e| e.count).sum::<u64>(), 3);
        assert!(a.queue.is_empty());
    }
}
