//! Service agents: the components that receive requests, find the
//! appropriate atom, and serve it — and that **migrate whole** under
//! constraint 455.
//!
//! > "The action SWITCH indicates to the session manager that not only
//! > should the Adaptivity Manager save the data state, but also the
//! > processing state, as it is this that is about to migrate. That is,
//! > essentially the whole service-agent is mobile."

use crate::atom::AtomId;
use std::collections::VecDeque;

/// A queued request being processed by an agent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InFlight {
    /// The atom requested.
    pub atom: AtomId,
    /// Tick the request arrived.
    pub arrived_at: u64,
    /// Remaining work units to serve it.
    pub remaining_work: u64,
}

/// A service agent: serves one atom's requests on its current node.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceAgent {
    /// The atom this agent serves.
    pub atom: AtomId,
    /// Node the agent currently runs on.
    pub node: String,
    /// Request queue (processing state — migrates with the agent).
    pub queue: VecDeque<InFlight>,
    /// Requests served over the agent's lifetime (data state).
    pub served: u64,
    /// How many times the agent has migrated.
    pub migrations: u32,
}

impl ServiceAgent {
    /// A fresh agent on `node`.
    #[must_use]
    pub fn new(atom: AtomId, node: &str) -> Self {
        Self { atom, node: node.to_owned(), queue: VecDeque::new(), served: 0, migrations: 0 }
    }

    /// Accept a request at `tick` costing `work` units.
    pub fn accept(&mut self, tick: u64, work: u64) {
        self.queue.push_back(InFlight { atom: self.atom, arrived_at: tick, remaining_work: work });
    }

    /// Spend up to `budget` work units serving queued requests; returns the
    /// (arrival, completion) ticks of requests completed this tick.
    pub fn step(&mut self, now: u64, mut budget: u64) -> Vec<(u64, u64)> {
        let mut completed = Vec::new();
        while budget > 0 {
            let Some(front) = self.queue.front_mut() else { break };
            let spend = front.remaining_work.min(budget);
            front.remaining_work -= spend;
            budget -= spend;
            if front.remaining_work > 0 {
                break; // budget exhausted mid-request
            }
            let arrived_at = front.arrived_at;
            self.queue.pop_front();
            self.served += 1;
            completed.push((arrived_at, now));
        }
        completed
    }

    /// Work units currently queued (the demand this agent places on its
    /// node).
    #[must_use]
    pub fn queued_work(&self) -> u64 {
        self.queue.iter().map(|r| r.remaining_work).sum()
    }

    /// SWITCH: migrate to `dest`, carrying queue (processing state) and
    /// counters (data state). Returns the serialised state size in bytes —
    /// what the Adaptivity Manager must ship across the network.
    pub fn migrate(&mut self, dest: &str) -> u64 {
        let state_bytes = 64 + self.queue.len() as u64 * 24;
        self.node = dest.to_owned();
        self.migrations += 1;
        state_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serves_in_fifo_order_within_budget() {
        let mut a = ServiceAgent::new(AtomId(1), "node1");
        a.accept(0, 10);
        a.accept(0, 10);
        a.accept(1, 10);
        let done = a.step(2, 25);
        assert_eq!(done.len(), 2, "25 units finish two 10-unit requests");
        assert_eq!(a.queue.len(), 1);
        assert_eq!(a.queue[0].remaining_work, 5, "third is half-served");
        let done = a.step(3, 100);
        assert_eq!(done, vec![(1, 3)]);
        assert_eq!(a.served, 3);
    }

    #[test]
    fn queued_work_reflects_partial_progress() {
        let mut a = ServiceAgent::new(AtomId(1), "n");
        a.accept(0, 8);
        a.accept(0, 8);
        assert_eq!(a.queued_work(), 16);
        a.step(1, 4);
        assert_eq!(a.queued_work(), 12);
    }

    #[test]
    fn migration_preserves_processing_state() {
        let mut a = ServiceAgent::new(AtomId(1), "node1");
        a.accept(0, 10);
        a.accept(0, 10);
        a.step(1, 10);
        let before_queue = a.queue.clone();
        let before_served = a.served;
        let bytes = a.migrate("node2");
        assert_eq!(a.node, "node2");
        assert_eq!(a.queue, before_queue, "in-flight requests travel with the agent");
        assert_eq!(a.served, before_served);
        assert_eq!(a.migrations, 1);
        assert!(bytes >= 64);
        // Serving continues seamlessly on the new node.
        let done = a.step(2, 100);
        assert_eq!(done.len(), 1);
    }

    #[test]
    fn zero_work_request_completes_immediately_without_panicking() {
        let mut a = ServiceAgent::new(AtomId(1), "n");
        a.accept(0, 0);
        a.accept(0, 3);
        let done = a.step(1, 5);
        assert_eq!(done.len(), 2, "free request and the 3-unit one both finish");
        assert!(a.queue.is_empty());
        assert_eq!(a.served, 2);
    }

    #[test]
    fn idle_agent_steps_to_nothing() {
        let mut a = ServiceAgent::new(AtomId(1), "n");
        assert!(a.step(5, 100).is_empty());
        assert_eq!(a.queued_work(), 0);
    }
}
