//! The Patia server loop (Figure 7): service agents over a node fleet,
//! monitors feeding gauges, and the Table 2 constraints driving adaptation.

use crate::agent::ServiceAgent;
use crate::atom::{Atom, AtomId, AtomStore, AtomType};
use crate::constraint::{paper_table2, AtomConstraint, ConstraintLogic};
use crate::rules::{self, RuleStats};
use crate::supervise::{SuperviseConfig, SupervisionEvent, Supervisor};
use compkit::gauge::{Gauge, GaugeBoard, GaugeKind};
use compkit::monitor::Monitor;
use obs::{ObsHandle, Primitive};
use std::cell::Cell;
use std::collections::{BTreeMap, BTreeSet};
use ubinet::device::{Device, DeviceKind};
use ubinet::link::{BandwidthProfile, Link, LinkKind};
use ubinet::net::Network;
use ubinet::select::best;

/// Server construction parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerConfig {
    /// Whether adaptivity (constraints 455/595) is enabled. With `false`
    /// the server is the static baseline: agents never move and the full
    /// version is always served.
    pub adaptive: bool,
    /// Work units one request costs.
    pub work_per_request: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self { adaptive: true, work_per_request: 400 }
    }
}

impl ServerConfig {
    /// The paper's fleet: `node1`/`node2` are webservers hosting
    /// `Page1.html` (atom 123); `node3` plus two "typing-pool" workstations
    /// host video renditions (atom 153: `videohalf` on node1–3 as versions
    /// 1–3, `videosmall` on node3 as version 4) and replicas of the hot
    /// page for SWITCH targets.
    #[must_use]
    pub fn paper_fleet() -> (Network, AtomStore, Vec<AtomConstraint>) {
        let mut net = Network::new();
        net.add_device(Device::new("node1", DeviceKind::Server));
        net.add_device(Device::new("node2", DeviceKind::Server));
        net.add_device(Device::new("node3", DeviceKind::Server));
        net.add_device(Device::new("wp1", DeviceKind::Workstation));
        net.add_device(Device::new("wp2", DeviceKind::Workstation));
        let names = ["node1", "node2", "node3", "wp1", "wp2"];
        for (i, a) in names.iter().enumerate() {
            for b in names.iter().skip(i + 1) {
                net.add_link(Link::new(
                    a,
                    b,
                    LinkKind::Wired,
                    BandwidthProfile::Constant(10_000.0),
                    1,
                ));
            }
        }
        let mut atoms = AtomStore::new();
        let mut page = Atom::new(AtomId(123), "Page1.html", AtomType::Html, 40_000);
        page.add_replica(1, "node1");
        page.add_replica(2, "node2");
        // The typing pool holds replicas too — the SWITCH destinations.
        page.add_replica(3, "wp1");
        page.add_replica(4, "wp2");
        page.constraint_ids = vec![450, 455];
        atoms.insert(page);
        let mut video = Atom::new(AtomId(153), "video.ram", AtomType::VideoStream, 1_000_000);
        video.add_rendition(1, "node1", 0.5, 500_000);
        video.add_rendition(2, "node2", 0.5, 500_000);
        video.add_rendition(3, "node3", 0.5, 500_000);
        video.add_rendition(4, "node3", 0.2, 150_000);
        video.constraint_ids = vec![595];
        atoms.insert(video);
        // Give the SWITCH constraint the typing pool as candidates, as the
        // paper describes ("a under-utilised machine in the typing pool
        // that contains a replica").
        let mut constraints = paper_table2();
        for c in &mut constraints {
            if let ConstraintLogic::SwitchOnCpu { candidates, .. } = &mut c.logic {
                candidates.extend(["wp1".into(), "wp2".into()]);
            }
        }
        (net, atoms, constraints)
    }
}

/// Fault and degradation counters for one tick. The server never panics on
/// an injected or environmental fault; instead the event is counted here so
/// chaos tests can assert exact, reproducible totals.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounters {
    /// SWITCH attempts that could not be carried out (denied by a gate,
    /// destination unreachable, or no usable destination).
    pub failed_switches: u64,
    /// Failed SWITCH attempts that were themselves retries of an earlier
    /// failure (attempt two onwards).
    pub switch_retries: u64,
    /// Agents moved off dead nodes through the SWITCH machinery.
    pub evacuations: u64,
    /// Requests served in degraded mode (smallest version) because their
    /// atom was mid-incident.
    pub degraded: u64,
    /// Requests dropped because no agent could ever serve them (unknown
    /// atom, or an atom with no holders).
    pub dropped: u64,
}

impl FaultCounters {
    /// Fold a per-tick delta into this accumulator — how the server keeps
    /// its cumulative [`PatiaServer::fault_totals`] consistent with the
    /// per-tick deltas in [`TickStats::faults`].
    /// All fields saturate: a server that has absorbed `u64::MAX` faults
    /// keeps reporting `u64::MAX` rather than wrapping to zero.
    pub fn absorb(&mut self, delta: &FaultCounters) {
        self.failed_switches = self.failed_switches.saturating_add(delta.failed_switches);
        self.switch_retries = self.switch_retries.saturating_add(delta.switch_retries);
        self.evacuations = self.evacuations.saturating_add(delta.evacuations);
        self.degraded = self.degraded.saturating_add(delta.degraded);
        self.dropped = self.dropped.saturating_add(delta.dropped);
    }
}

/// What kind of SWITCH the server performed — the discriminator trace
/// queries and the reconfiguration glue dispatch on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SwitchKind {
    /// A lightly-queued agent moved whole to the destination.
    Migrate,
    /// The service cloned onto an additional node, splitting the queue.
    Spread,
    /// A stranded agent moved off a dead node.
    Evacuate,
}

impl SwitchKind {
    /// The trace-instant name this kind emits (`switch:migrate`, ...).
    #[must_use]
    pub fn instant_name(self) -> &'static str {
        match self {
            Self::Migrate => "switch:migrate",
            Self::Spread => "switch:spread",
            Self::Evacuate => "switch:evacuate",
        }
    }
}

/// One SWITCH carried out during a tick: which atom's agent moved (or
/// spread), what kind of switch it was, and between which nodes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SwitchEvent {
    /// The atom whose agent switched.
    pub atom: AtomId,
    /// Migration, spread, or evacuation.
    pub kind: SwitchKind,
    /// Source node.
    pub from: String,
    /// Destination node.
    pub to: String,
}

/// Per-tick observable results.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TickStats {
    /// The tick.
    pub tick: u64,
    /// Requests that arrived.
    pub arrivals: usize,
    /// Requests completed, with their latencies in ticks.
    pub latencies: Vec<u64>,
    /// SWITCH events performed this tick.
    pub migrations: Vec<SwitchEvent>,
    /// Per-node utilisation after processing.
    pub utilisation: BTreeMap<String, f64>,
    /// Version ids served this tick, per atom.
    pub versions_served: BTreeMap<AtomId, BTreeMap<u32, u64>>,
    /// Fault and degradation events this tick.
    pub faults: FaultCounters,
}

impl TickStats {
    /// The p-th latency percentile of this tick's completions.
    #[must_use]
    pub fn latency_percentile(&self, p: f64) -> Option<u64> {
        if self.latencies.is_empty() {
            return None;
        }
        let mut v = self.latencies.clone();
        v.sort_unstable();
        let idx = ((v.len() - 1) as f64 * p).round() as usize;
        Some(v[idx])
    }
}

/// An injection point for SWITCH failures: consulted just before an agent
/// migration or spread would be carried out. Returning `Some(reason)`
/// denies the switch; the server counts the failure, backs off
/// deterministically, and serves degraded instead of panicking. Production
/// runs arm no gate, so the hook costs one `Option` check per switch.
pub trait SwitchGate: std::fmt::Debug {
    /// Decide whether the switch of `atom`'s agent from `from` to `to` at
    /// `tick` fails. `None` lets it proceed.
    fn deny(&mut self, tick: u64, atom: AtomId, from: &str, to: &str) -> Option<String>;
}

/// Backoff shift cap: retry windows grow 2, 4, 8, 16, 32 ticks and then
/// stay at 32 — bounded and wall-clock-free, so a fault timeline replays
/// identically from the same seed. The supervision layer's restart
/// probes ([`crate::supervise`]) share the same cap, so every retry
/// policy in the crate backs off on one schedule.
pub(crate) const MAX_BACKOFF_SHIFT: u32 = 5;

/// Retry bookkeeping for an atom whose last SWITCH attempt failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct RetryState {
    attempts: u32,
    next_at: u64,
}

/// How the circuit-breaker screen on BEST candidate lists is evaluated.
///
/// Both policies produce byte-identical decisions, traces, and metric
/// digests — the differential tier pins that — but `Query` routes every
/// verdict through the declarative rule in [`crate::rules`], so the
/// policy is data the platform can introspect (`sys.supervision`) and
/// eventually rewrite, rather than a compiled-in filter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum SwitchPolicy {
    /// The original compiled-in filter: `!supervisor.is_open(peer)`.
    #[default]
    Hardcoded,
    /// Evaluate `SELECT peer FROM sys.supervision WHERE circuit_code =
    /// OPEN` with the `query` crate's operators and screen against the
    /// result. Work is accounted in [`RuleStats`], never billed to the
    /// observability hub.
    Query,
}

/// The Patia server.
#[derive(Debug)]
pub struct PatiaServer {
    net: Network,
    atoms: AtomStore,
    constraints: Vec<AtomConstraint>,
    /// Agents per atom: one initially; SWITCH may *spread* the service
    /// over more nodes during a flash crowd ("dynamically spread its
    /// processing (e.g. to non-Webserver machines like a typing-pools'
    /// word processing computers)").
    agents: BTreeMap<AtomId, Vec<ServiceAgent>>,
    /// The gauge board (public so experiments can attach extra gauges).
    pub board: GaugeBoard,
    config: ServerConfig,
    now: u64,
    /// Injected CPU pressure per node (0..1 of capacity stolen).
    pressure: BTreeMap<String, f64>,
    /// Armed SWITCH-failure injector, if any.
    gate: Option<Box<dyn SwitchGate>>,
    /// Per-atom backoff state after failed switches.
    retry: BTreeMap<AtomId, RetryState>,
    /// Armed observability hub, if any.
    obs: Option<ObsHandle>,
    /// Cumulative fault counters since boot. [`TickStats::faults`] is
    /// always the per-tick *delta*; this (and the metrics registry, when
    /// armed) is always the running *total* — one uniform semantics.
    totals: FaultCounters,
    /// The fleet supervisor: heartbeat failure detection and per-peer
    /// circuit breakers consulted by every BEST placement decision.
    supervisor: Supervisor,
    /// How the circuit-breaker screen is evaluated at BEST sites.
    policy: SwitchPolicy,
    /// Ledger of query-driven rule evaluations (interior-mutable: the
    /// version-selection site is `&self`). Always zero under
    /// [`SwitchPolicy::Hardcoded`].
    rule_stats: Cell<RuleStats>,
    /// Optional storage engine under the atoms. When attached, every
    /// routed batch reads the atom's stored record through the buffer
    /// pool — page IO becomes part of the serving bill.
    storage: Option<store::StorageEngine>,
}

impl PatiaServer {
    /// Build a server. One agent is created per atom, placed by constraint
    /// 450 (`BEST`) where present, else on the atom's first holder. An atom
    /// with no holders gets no agent: requests for it are counted as
    /// dropped at serving time rather than panicking construction.
    #[must_use]
    pub fn new(
        net: Network,
        atoms: AtomStore,
        constraints: Vec<AtomConstraint>,
        config: ServerConfig,
    ) -> Self {
        let mut board = GaugeBoard::new();
        let names: Vec<String> = net.devices().map(|d| d.name.clone()).collect();
        for n in &names {
            board.add_monitor(Monitor::new(&format!("cpu:{n}"), 16));
            board.add_gauge(Gauge {
                name: format!("util:{n}"),
                monitor: format!("cpu:{n}"),
                kind: GaugeKind::Latest,
            });
            // The paper's trend analysis: a rising slope anticipates
            // saturation before it happens.
            board.add_gauge(Gauge {
                name: format!("util_trend:{n}"),
                monitor: format!("cpu:{n}"),
                kind: GaugeKind::Slope(8),
            });
        }
        let mut agents = BTreeMap::new();
        for id in atoms.ids().collect::<Vec<_>>() {
            let Some(atom) = atoms.get(id) else { continue };
            let home = constraints
                .iter()
                .find_map(|c| match (&c.logic, c.atom == id) {
                    (ConstraintLogic::SelectBest { candidates }, true) => {
                        let refs: Vec<&str> = candidates.iter().map(String::as_str).collect();
                        best(&net, &refs).map(str::to_owned)
                    }
                    _ => None,
                })
                .or_else(|| atom.holders().first().map(|s| (*s).to_owned()));
            if let Some(home) = home {
                agents.insert(id, vec![ServiceAgent::new(id, &home)]);
            }
        }
        let supervisor = Supervisor::new(SuperviseConfig::default(), names);
        Self {
            net,
            atoms,
            constraints,
            agents,
            board,
            config,
            now: 0,
            pressure: BTreeMap::new(),
            gate: None,
            retry: BTreeMap::new(),
            obs: None,
            totals: FaultCounters::default(),
            supervisor,
            policy: SwitchPolicy::default(),
            rule_stats: Cell::new(RuleStats::default()),
            storage: None,
        }
    }

    /// Choose how the circuit-breaker screen is evaluated. Switching
    /// policies mid-run is allowed; decisions stay byte-identical.
    pub fn set_switch_policy(&mut self, policy: SwitchPolicy) {
        self.policy = policy;
    }

    /// The active circuit-breaker evaluation policy.
    #[must_use]
    pub fn switch_policy(&self) -> SwitchPolicy {
        self.policy
    }

    /// Cumulative ledger of declarative rule evaluations (zero unless
    /// [`SwitchPolicy::Query`] is active).
    #[must_use]
    pub fn rule_stats(&self) -> RuleStats {
        self.rule_stats.get()
    }

    /// The blocked-peer set under the active policy: `None` in
    /// hard-coded mode (callers consult `is_open` directly, as ever),
    /// the query-evaluated set under [`SwitchPolicy::Query`].
    fn rule_blocked(&self) -> Option<BTreeSet<String>> {
        match self.policy {
            SwitchPolicy::Hardcoded => None,
            SwitchPolicy::Query => {
                let mut stats = self.rule_stats.get();
                let blocked = rules::blocked_peers(&self.supervisor, &mut stats);
                self.rule_stats.set(stats);
                Some(blocked)
            }
        }
    }

    /// Whether `peer` may be nominated by BEST under the active policy.
    fn admits(&self, blocked: Option<&BTreeSet<String>>, peer: &str) -> bool {
        match blocked {
            Some(set) => !set.contains(peer),
            None => !self.supervisor.is_open(peer),
        }
    }

    /// Attach a storage engine under the atoms. The current atom store is
    /// persisted into it as one committed transaction, and from then on
    /// every routed batch reads the atom's record through the buffer pool
    /// (pool hits/misses and page IO billed when observability is armed).
    ///
    /// # Errors
    /// [`store::StoreError`] from the persist transaction.
    pub fn attach_store(
        &mut self,
        mut engine: store::StorageEngine,
    ) -> Result<(), store::StoreError> {
        if let Some(o) = &self.obs {
            engine.arm_obs(o.clone());
        }
        self.atoms.persist_into(&mut engine)?;
        self.storage = Some(engine);
        Ok(())
    }

    /// The attached storage engine, if any.
    #[must_use]
    pub fn storage(&self) -> Option<&store::StorageEngine> {
        self.storage.as_ref()
    }

    /// Mutable access to the attached storage engine (crash/recovery
    /// harnesses drive it from here).
    pub fn storage_mut(&mut self) -> Option<&mut store::StorageEngine> {
        self.storage.as_mut()
    }

    /// The fleet supervisor — failure-detector verdicts and circuit
    /// states, as seen after the latest tick's heartbeat round.
    #[must_use]
    pub fn supervisor(&self) -> &Supervisor {
        &self.supervisor
    }

    /// Arm the observability hub: each tick then runs inside a `patia:tick`
    /// span, SWITCH/migration/evacuation events become trace instants with
    /// cycle bills, the `patia.*` registry counters accumulate, and node
    /// utilisation flows monitors-from-registry (see
    /// [`PatiaServer::tick`]). Zero-cost when disarmed, like
    /// [`PatiaServer::arm_switch_gate`].
    pub fn arm_obs(&mut self, obs: ObsHandle) {
        if let Some(engine) = &mut self.storage {
            engine.arm_obs(obs.clone());
        }
        self.obs = Some(obs);
    }

    /// Disarm observability; gauge readings go straight to the board
    /// again. The attached storage engine (if any) is disarmed too, so
    /// the hub's handle count drops to the callers' own clones and the
    /// hub can be unwrapped while the server lives on for introspection.
    pub fn disarm_obs(&mut self) {
        if let Some(engine) = &mut self.storage {
            engine.disarm_obs();
        }
        self.obs = None;
    }

    /// Cumulative fault counters since boot (sum of every tick's
    /// [`TickStats::faults`] delta).
    #[must_use]
    pub fn fault_totals(&self) -> FaultCounters {
        self.totals
    }

    /// Arm a SWITCH-failure injector. Replaces any previous gate.
    pub fn arm_switch_gate(&mut self, gate: Box<dyn SwitchGate>) {
        self.gate = Some(gate);
    }

    /// Remove the SWITCH-failure injector; switches proceed normally again.
    pub fn disarm_switch_gate(&mut self) {
        self.gate = None;
    }

    /// Kill a node: it serves nothing until revived, and agents stranded on
    /// it evacuate through the SWITCH machinery on the next tick. Returns
    /// `false` if the node is unknown.
    pub fn kill_node(&mut self, node: &str) -> bool {
        match self.net.device_mut(node) {
            Some(d) => {
                d.alive = false;
                self.fault_instant("fault:node_death", node);
                true
            }
            None => false,
        }
    }

    /// Revive a previously killed node.
    pub fn revive_node(&mut self, node: &str) -> bool {
        match self.net.device_mut(node) {
            Some(d) => {
                d.alive = true;
                self.fault_instant("fault:node_revival", node);
                true
            }
            None => false,
        }
    }

    /// Steal `fraction` (0..1) of a node's capacity — injected CPU
    /// pressure. The node's utilisation rises accordingly, which is what
    /// drives constraint 455 to SWITCH agents away.
    pub fn inject_pressure(&mut self, node: &str, fraction: f64) {
        self.pressure.insert(node.to_owned(), fraction.clamp(0.0, 1.0));
        self.fault_instant("fault:pressure", node);
    }

    /// Remove injected CPU pressure from a node.
    pub fn clear_pressure(&mut self, node: &str) {
        self.pressure.remove(node);
        self.fault_instant("fault:pressure_release", node);
    }

    /// Surface the tick's supervision events when armed: each verdict is
    /// a branch the machine took, so it is billed, traced as an instant,
    /// and accumulated in the registry.
    fn note_supervision(&mut self, events: &[SupervisionEvent]) {
        let Some(obs) = &self.obs else { return };
        let mut o = obs.borrow_mut();
        for ev in events {
            o.charge(Primitive::Branch);
            let (name, counter, args) = match ev {
                SupervisionEvent::Suspect { peer, missed } => (
                    "detector:suspect",
                    "patia.detector.suspects",
                    vec![("node", peer.clone()), ("missed", missed.to_string())],
                ),
                SupervisionEvent::Revive { peer } => {
                    ("detector:revive", "patia.detector.revivals", vec![("node", peer.clone())])
                }
                SupervisionEvent::CircuitOpen { peer } => {
                    ("circuit:open", "patia.circuit.opens", vec![("node", peer.clone())])
                }
                SupervisionEvent::CircuitHalfOpen { peer } => {
                    ("circuit:half_open", "patia.circuit.half_opens", vec![("node", peer.clone())])
                }
                SupervisionEvent::CircuitClose { peer } => {
                    ("circuit:close", "patia.circuit.closes", vec![("node", peer.clone())])
                }
                SupervisionEvent::RestartProbe { peer, attempt, next_at } => (
                    "restart:attempt",
                    "patia.restart.probes",
                    vec![
                        ("node", peer.clone()),
                        ("attempt", attempt.to_string()),
                        ("next_at", next_at.to_string()),
                    ],
                ),
            };
            o.instant("patia", name, args);
            o.metrics.counter_add(counter, 1);
        }
    }

    /// Record an injected-fault marker when armed. Deliberately *not*
    /// billed: the fault is environmental, not work the machine performed,
    /// and un-spanned charges would open idle gaps in the cycle
    /// attribution (see `obs::profile`).
    fn fault_instant(&mut self, name: &'static str, node: &str) {
        if let Some(o) = &self.obs {
            o.borrow_mut().instant("patia", name, vec![("node", node.to_owned())]);
        }
    }

    /// The atoms currently served by at least one agent, in id order —
    /// what the reconfiguration glue boots component instances for.
    #[must_use]
    pub fn served_atoms(&self) -> Vec<AtomId> {
        self.agents.iter().filter(|(_, v)| !v.is_empty()).map(|(id, _)| *id).collect()
    }

    /// Requests currently queued across every agent — the in-flight count
    /// chaos tests use to assert conservation (arrivals = completed +
    /// dropped + queued).
    #[must_use]
    pub fn queued_requests(&self) -> u64 {
        self.agents.values().flatten().map(ServiceAgent::queued_requests).sum()
    }

    /// The server's virtual clock: the last tick processed.
    #[must_use]
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Whether a tick with no arrivals would provably be a no-op: nothing
    /// queued, no switch backing off, no injected pressure, every node
    /// alive, and the supervisor fully settled. This is what licenses the
    /// event engine to skip ticks — every skipped tick would have recorded
    /// all-zero utilisation and changed no state.
    #[must_use]
    pub fn is_quiescent(&self) -> bool {
        self.queued_requests() == 0
            && self.retry.is_empty()
            && self.pressure.is_empty()
            && self.net.devices().all(|d| d.alive)
            && self.supervisor.all_clear()
    }

    /// Re-sample every gauge monitor up to tick `upto`, carrying the last
    /// reading forward — called by the event engine before processing a
    /// tick that follows a skipped-quiescent gap, so windowed gauges
    /// (means, slopes) see the same per-tick series the legacy loop would
    /// have recorded.
    pub fn resample_gauges(&mut self, upto: u64) {
        self.board.resample(upto);
    }

    /// Whether an atom is mid-incident: a switch for it is backing off
    /// after a failure, or one of its agents sits on a dead node. Degraded
    /// atoms serve their smallest version rather than drop requests.
    #[must_use]
    pub fn is_degraded(&self, atom: AtomId) -> bool {
        self.retry.contains_key(&atom)
            || self.agents.get(&atom).is_some_and(|v| {
                v.iter().any(|a| self.net.device(&a.node).is_none_or(|d| !d.alive))
            })
    }

    /// The agents currently serving an atom (one unless the service has
    /// spread).
    #[must_use]
    pub fn agents(&self, atom: AtomId) -> &[ServiceAgent] {
        self.agents.get(&atom).map_or(&[], Vec::as_slice)
    }

    /// Total SWITCH events (migrations + spreads) performed for an atom.
    #[must_use]
    pub fn switches(&self, atom: AtomId) -> u32 {
        self.agents(atom).iter().map(|a| a.migrations).sum::<u32>()
            + self.agents(atom).len().saturating_sub(1) as u32
    }

    /// The node fleet.
    #[must_use]
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// Mutable access to the fleet — how fault injectors drop links,
    /// partition islands, and spike latencies underneath the server.
    pub fn network_mut(&mut self) -> &mut Network {
        &mut self.net
    }

    /// Select which version of an atom to serve a client seeing
    /// `bandwidth_kbps` — constraint 595's logic. Falls back to the first
    /// version when no bandwidth constraint governs the atom.
    #[must_use]
    pub fn select_version(&self, atom: AtomId, bandwidth_kbps: f64) -> Option<u32> {
        let a = self.atoms.get(atom)?;
        if self.config.adaptive {
            for c in &self.constraints {
                if c.atom != atom {
                    continue;
                }
                if let ConstraintLogic::BandwidthVersion { lo, hi, preferred, fallback } = &c.logic
                {
                    if bandwidth_kbps > *lo && bandwidth_kbps < *hi {
                        // BEST among the preferred versions' hosts.
                        let hosts: Vec<(&str, u32)> = a
                            .versions
                            .all()
                            .iter()
                            .filter(|v| preferred.contains(&v.id))
                            .map(|v| (v.location.as_str(), v.id))
                            .collect();
                        // BEST consults the circuit breaker: a host
                        // behind an open circuit is suspected dead and
                        // must not be nominated, even if its (stale)
                        // representation still looks attractive.
                        let blocked = self.rule_blocked();
                        let names: Vec<&str> = hosts
                            .iter()
                            .map(|(n, _)| *n)
                            .filter(|n| self.admits(blocked.as_ref(), n))
                            .collect();
                        let chosen = best(&self.net, &names)?;
                        return hosts.iter().find(|(n, _)| *n == chosen).map(|(_, id)| *id);
                    }
                    return Some(*fallback);
                }
            }
        }
        a.versions.all().first().map(|v| v.id)
    }

    /// One serving tick: accept `requests`, process, monitor, adapt. Faults
    /// (dead nodes, denied switches, holderless atoms) never panic — they
    /// surface as [`FaultCounters`] in the returned stats.
    ///
    /// This is now a thin compatibility shim over [`PatiaServer::step_at`]:
    /// each request becomes a count-1 batch at the next tick, which makes
    /// the batched step degenerate to the exact legacy per-request
    /// semantics (one routing decision and one scheduler charge per
    /// request) — the byte-identical-golden-trace obligation.
    pub fn tick(&mut self, requests: &[AtomId], client_bandwidth_kbps: f64) -> TickStats {
        let batches: Vec<(AtomId, u64)> = requests.iter().map(|&a| (a, 1)).collect();
        self.step_at(self.now + 1, &batches, client_bandwidth_kbps)
    }

    /// The event-driven serving core: process tick `now` (which may be an
    /// arbitrary jump past [`PatiaServer::now`] when the intervening ticks
    /// were provably quiescent) with `batches` of identical same-tick
    /// arrivals. A batch of `n` requests costs one routing decision, one
    /// queue entry, and O(1) completion arithmetic — how the flow layer's
    /// cohorts are served without per-request loops.
    ///
    /// # Panics
    /// If `now` does not advance the clock.
    pub fn step_at(
        &mut self,
        now: u64,
        batches: &[(AtomId, u64)],
        client_bandwidth_kbps: f64,
    ) -> TickStats {
        assert!(now > self.now, "step_at must advance the clock ({} -> {now})", self.now);
        self.now = now;
        let arrivals: u64 = batches.iter().map(|&(_, n)| n).sum();
        let mut stats =
            TickStats { tick: now, arrivals: arrivals as usize, ..TickStats::default() };
        // Completion groups `(latency, count)` in completion order — folded
        // into the latency histogram in one grouped update per run.
        let mut completions: Vec<(u64, u64)> = Vec::new();
        let obs = self.obs.clone();
        let tick_span = obs.as_ref().map(|o| o.borrow_mut().begin("patia", format!("tick:{now}")));

        // 0. Supervision first: one heartbeat round updates the failure
        //    detector and circuit breakers, so every BEST decision this
        //    tick consults fresh verdicts. Then recover agents stranded
        //    on dead nodes before routing new work.
        if self.config.adaptive {
            let events = self.supervisor.beat(&self.net, now);
            self.note_supervision(&events);
            self.evacuate_dead(now, &mut stats);
        }

        // 1. Route arrivals to agents, selecting versions per constraint 595.
        for &(atom, n) in batches {
            if n == 0 {
                continue;
            }
            if self.atoms.get(atom).is_none() || self.agents.get(&atom).is_none_or(|v| v.is_empty())
            {
                // Unknown atom, or an atom no agent can ever serve: the
                // drop is counted, not silent.
                stats.faults.dropped += n;
                continue;
            }
            let degraded = self.config.adaptive && self.is_degraded(atom);
            let version = if degraded {
                // Graceful degradation: serve the smallest version rather
                // than drop the request while the incident is resolved.
                stats.faults.degraded += n;
                self.fallback_version(atom)
            } else {
                self.select_version(atom, client_bandwidth_kbps)
            };
            if let Some(version) = version {
                *stats.versions_served.entry(atom).or_default().entry(version).or_default() += n;
            }
            // Route to the live agent whose node has the least pending work
            // per unit of capacity (capacity-weighted join-shortest-queue) —
            // a typing-pool workstation must not receive a webserver-sized
            // share of a flash crowd. Agents on dead nodes are a last
            // resort: the request then waits for evacuation instead of
            // vanishing.
            let choice = self
                .agents
                .get(&atom)
                .into_iter()
                .flatten()
                .enumerate()
                .map(|(i, a)| {
                    let dev = self.net.device(&a.node);
                    let dead = u8::from(dev.is_none_or(|d| !d.alive));
                    let cap = dev.map_or(1.0, |d| d.kind.nominal_capacity()).max(1.0);
                    (i, dead, a.queued_work() as f64 / cap)
                })
                .min_by(|(_, d1, w1), (_, d2, w2)| d1.cmp(d2).then(w1.total_cmp(w2)))
                .map(|(i, _, _)| i);
            if let (Some(idx), Some(agents)) = (choice, self.agents.get_mut(&atom)) {
                agents[idx].accept_batch(now, self.config.work_per_request, n);
                if let Some(o) = &obs {
                    // Routing one batch is one scheduler decision.
                    o.borrow_mut().charge(Primitive::SchedSteps(1));
                }
                if let Some(engine) = &mut self.storage {
                    // Version selection consulted the atom's stored
                    // record: one pool read per batch, hit or page IO
                    // billed by the engine itself.
                    let _ = engine.get(u64::from(atom.0));
                }
            }
        }

        // 2. Process: each node's capacity is shared among its agents.
        //    Dead nodes have zero capacity; injected CPU pressure shrinks
        //    the effective budget, which is what the gauges then see.
        let node_names: Vec<String> = self.net.devices().map(|d| d.name.clone()).collect();
        for node in &node_names {
            let capacity = self.effective_capacity(node).max(0.0) as u64;
            let mut local: Vec<(AtomId, usize)> = self
                .agents
                .iter()
                .flat_map(|(id, v)| {
                    v.iter()
                        .enumerate()
                        .filter(|(_, a)| &a.node == node)
                        .map(|(i, _)| (*id, i))
                        .collect::<Vec<_>>()
                })
                .collect();
            local.sort_unstable();
            if local.is_empty() {
                self.record_util(node, 0.0, now);
                continue;
            }
            let demand: u64 = local.iter().map(|(id, i)| self.agents[id][*i].queued_work()).sum();
            // Capacity is shared among the agents that actually have work;
            // an idle co-resident agent does not waste a share.
            let active: Vec<(AtomId, usize)> = local
                .iter()
                .copied()
                .filter(|(id, i)| self.agents[id][*i].queued_work() > 0)
                .collect();
            let share = if active.is_empty() { 0 } else { capacity / active.len() as u64 };
            for (id, i) in &active {
                let Some(agent) = self.agents.get_mut(id).and_then(|v| v.get_mut(*i)) else {
                    continue;
                };
                let mut served = 0u64;
                for (arrived, k) in agent.step_grouped(share) {
                    let latency = now - arrived;
                    stats.latencies.extend(std::iter::repeat_n(latency, k as usize));
                    completions.push((latency, k));
                    served += k;
                }
                if let Some(o) = &obs {
                    // One Store per completed request, billed in one
                    // clock advance (charging emits no events).
                    o.borrow_mut().charge_n(Primitive::Store, served);
                }
            }
            let util = if capacity == 0 { 1.0 } else { (demand as f64 / capacity as f64).min(1.0) };
            self.record_util(node, util, now);
            stats.utilisation.insert(node.clone(), util);
            if let Some(d) = self.net.device_mut(node) {
                d.load = util;
            }
        }
        // When armed, utilisation was published to the metrics registry;
        // the gauge board's monitors now ingest it from there — the
        // paper's monitors→gauges pipeline reading real telemetry. The
        // registry gauge names equal the monitor names (`cpu:<node>`), so
        // the board sees byte-identical readings either way.
        if let Some(o) = &obs {
            let o = o.borrow();
            self.board.ingest_gauges(o.metrics.gauges_iter(), now);
        }

        // 3. Adapt: constraint 455 — SWITCH agents off saturated nodes. A
        //    denied or impossible switch is counted, backed off (2, 4, ...
        //    32 ticks, deterministic), and the atom serves degraded until
        //    the switch lands or the pressure subsides.
        if self.config.adaptive {
            let gauges = self.board.snapshot();
            let constraints = self.constraints.clone();
            for c in &constraints {
                let ConstraintLogic::SwitchOnCpu { threshold, candidates } = &c.logic else {
                    continue;
                };
                let Some(agents) = self.agents.get(&c.atom) else { continue };
                // Find the most saturated agent of this atom.
                let Some((worst_idx, worst_util)) = agents
                    .iter()
                    .enumerate()
                    .map(|(i, a)| {
                        (i, gauges.get(&format!("util:{}", a.node)).copied().unwrap_or(0.0))
                    })
                    .max_by(|(_, x), (_, y)| x.total_cmp(y))
                else {
                    continue;
                };
                let from = agents[worst_idx].node.clone();
                let occupied: Vec<String> = agents.iter().map(|a| a.node.clone()).collect();
                if worst_util <= *threshold {
                    // The pressure subsided on its own: obsolete any
                    // backoff so the next incident starts fresh.
                    self.retry.remove(&c.atom);
                    continue;
                }
                // The gauge crossed the constraint's threshold: this is
                // the monitors→gauges decision point, and the trace must
                // show it *before* whatever SWITCH it provokes.
                if let Some(o) = &obs {
                    let mut o = o.borrow_mut();
                    o.charge(Primitive::Branch);
                    o.instant(
                        "patia",
                        "gauge:breach",
                        vec![
                            ("atom", c.atom.0.to_string()),
                            ("node", from.clone()),
                            ("util", format!("{worst_util:.3}")),
                        ],
                    );
                }
                if self.retry.get(&c.atom).is_some_and(|r| now < r.next_at) {
                    continue; // waiting out the backoff window
                }
                let unoccupied: Vec<&str> = candidates
                    .iter()
                    .map(String::as_str)
                    .filter(|n| !occupied.iter().any(|o| o == *n))
                    .collect();
                if unoccupied.is_empty() {
                    continue; // fully spread — nowhere left to switch to
                }
                // The circuit breaker screens BEST's candidate list: a
                // suspected-dead node never receives an agent, however
                // idle its last-known representation claims it is.
                let blocked = self.rule_blocked();
                let refs: Vec<&str> = unoccupied
                    .iter()
                    .copied()
                    .filter(|n| self.admits(blocked.as_ref(), n))
                    .collect();
                let Some(dest) = best(&self.net, &refs).map(str::to_owned) else {
                    // Candidates remain but none is usable (dead, flat,
                    // or isolated behind an open circuit).
                    self.note_switch_failure(c.atom, now, &mut stats);
                    continue;
                };
                let dest_load = self.net.device(&dest).map_or(1.0, |d| d.load);
                // Only act if the destination is meaningfully less loaded.
                if dest_load >= worst_util - 0.2 {
                    continue;
                }
                // Shipping the agent needs a live path — during a partition
                // BEST still nominates an unreachable destination.
                if self.net.hop_distance(&from, &dest).is_err() {
                    self.note_switch_failure(c.atom, now, &mut stats);
                    continue;
                }
                if let Some(gate) = self.gate.as_mut() {
                    if gate.deny(now, c.atom, &from, &dest).is_some() {
                        self.note_switch_failure(c.atom, now, &mut stats);
                        continue;
                    }
                }
                let Some(agents) = self.agents.get_mut(&c.atom) else { continue };
                // A lightly-queued agent is a bystander on a busy node:
                // SWITCH moves it whole. A heavily-queued agent *is* the
                // load: SWITCH spreads the service — clone the agent onto
                // the destination and split the queue (the data AND
                // processing state shipping the paper describes).
                let queue_len = agents[worst_idx].queued_requests();
                let kind = if queue_len <= 2 { SwitchKind::Migrate } else { SwitchKind::Spread };
                if queue_len <= 2 {
                    let state_bytes = agents[worst_idx].migrate(&dest);
                    if let Some(o) = &obs {
                        let mut o = o.borrow_mut();
                        // Shipping the agent's state is a word copy.
                        o.charge(Primitive::CopyWords(state_bytes as u32 / 4));
                        o.instant(
                            "patia",
                            "switch:migrate",
                            vec![
                                ("atom", c.atom.0.to_string()),
                                ("from", from.clone()),
                                ("to", dest.clone()),
                                ("state_bytes", state_bytes.to_string()),
                            ],
                        );
                    }
                } else {
                    let mut clone = ServiceAgent::new(c.atom, &dest);
                    let split = queue_len / 2;
                    clone.queue = agents[worst_idx].split_back(split);
                    agents.push(clone);
                    if let Some(o) = &obs {
                        let mut o = o.borrow_mut();
                        // A spread ships a fresh agent header plus the
                        // split half of the queue.
                        o.charge(Primitive::CopyWords(16 + 6 * split as u32));
                        o.instant(
                            "patia",
                            "switch:spread",
                            vec![
                                ("atom", c.atom.0.to_string()),
                                ("from", from.clone()),
                                ("to", dest.clone()),
                                ("split", split.to_string()),
                            ],
                        );
                    }
                }
                self.retry.remove(&c.atom);
                stats.migrations.push(SwitchEvent { atom: c.atom, kind, from, to: dest });
            }
        }

        // Uniform counter semantics: `stats.faults` stays the per-tick
        // delta; the running totals (and, when armed, the registry
        // counters) absorb it.
        self.totals.absorb(&stats.faults);
        if let Some(o) = &obs {
            let mut o = o.borrow_mut();
            o.metrics.counter_add("patia.requests.arrived", stats.arrivals as u64);
            o.metrics.counter_add("patia.requests.completed", stats.latencies.len() as u64);
            o.metrics.counter_add("patia.requests.dropped", stats.faults.dropped);
            o.metrics.counter_add("patia.requests.degraded", stats.faults.degraded);
            o.metrics.counter_add("patia.switch.performed", stats.migrations.len() as u64);
            o.metrics.counter_add("patia.switch.failed", stats.faults.failed_switches);
            o.metrics.counter_add("patia.switch.retries", stats.faults.switch_retries);
            o.metrics.counter_add("patia.switch.evacuations", stats.faults.evacuations);
            for &(latency, k) in &completions {
                o.metrics.observe_n("patia.latency_ticks", latency, k);
            }
            if let Some(span) = tick_span {
                o.end_with(
                    span,
                    vec![
                        ("arrivals", stats.arrivals.to_string()),
                        ("completed", stats.latencies.len().to_string()),
                        ("migrations", stats.migrations.len().to_string()),
                    ],
                );
            }
        }
        stats
    }

    fn record_util(&mut self, node: &str, util: f64, now: u64) {
        if let Some(obs) = &self.obs {
            // Armed: publish to the registry under the monitor's own name;
            // the board ingests it from there after the node loop.
            obs.borrow_mut().metrics.gauge_set(&format!("cpu:{node}"), util);
        } else {
            self.board.record(&format!("cpu:{node}"), now, util);
        }
    }

    /// A node's capacity this tick: zero when dead, squeezed by injected
    /// CPU pressure otherwise.
    fn effective_capacity(&self, node: &str) -> f64 {
        let Some(d) = self.net.device(node) else { return 0.0 };
        if !d.alive {
            return 0.0;
        }
        let squeeze = 1.0 - self.pressure.get(node).copied().unwrap_or(0.0).clamp(0.0, 1.0);
        d.kind.nominal_capacity() * squeeze
    }

    /// The smallest version of an atom — what degraded mode serves.
    fn fallback_version(&self, atom: AtomId) -> Option<u32> {
        let a = self.atoms.get(atom)?;
        a.versions
            .all()
            .iter()
            .min_by(|x, y| x.size_bytes.cmp(&y.size_bytes).then(x.id.cmp(&y.id)))
            .map(|v| v.id)
    }

    /// Record a failed SWITCH attempt: count it, and grow the atom's
    /// deterministic backoff window.
    fn note_switch_failure(&mut self, atom: AtomId, now: u64, stats: &mut TickStats) {
        let r = self.retry.entry(atom).or_insert(RetryState { attempts: 0, next_at: now });
        r.attempts = r.attempts.saturating_add(1);
        r.next_at = now + (1u64 << r.attempts.min(MAX_BACKOFF_SHIFT));
        stats.faults.failed_switches += 1;
        if r.attempts > 1 {
            stats.faults.switch_retries += 1;
        }
        if let Some(obs) = &self.obs {
            let mut o = obs.borrow_mut();
            o.charge(Primitive::Branch);
            o.instant(
                "patia",
                "switch:failed",
                vec![
                    ("atom", atom.0.to_string()),
                    ("attempt", r.attempts.to_string()),
                    ("next_at", r.next_at.to_string()),
                ],
            );
        }
    }

    /// Move agents off dead nodes — node-death recovery through the same
    /// SWITCH machinery as constraint 455. Destinations are the atom's
    /// replica holders plus its SWITCH candidates; state is recovered from
    /// the destination's replica, so no live path from the corpse is
    /// required. Failures (no destination, gate denial) back off like any
    /// other failed switch.
    fn evacuate_dead(&mut self, now: u64, stats: &mut TickStats) {
        let stranded: Vec<(AtomId, usize, String)> = self
            .agents
            .iter()
            .flat_map(|(id, v)| {
                v.iter()
                    .enumerate()
                    .filter(|(_, a)| self.net.device(&a.node).is_none_or(|d| !d.alive))
                    .map(|(i, a)| (*id, i, a.node.clone()))
                    .collect::<Vec<_>>()
            })
            .collect();
        for (atom, idx, from) in stranded {
            if self.retry.get(&atom).is_some_and(|r| now < r.next_at) {
                continue;
            }
            let occupied: Vec<String> = self
                .agents
                .get(&atom)
                .map(|v| v.iter().map(|a| a.node.clone()).collect())
                .unwrap_or_default();
            let mut cands: Vec<String> = self
                .atoms
                .get(atom)
                .map(|a| a.holders().iter().map(|s| (*s).to_owned()).collect())
                .unwrap_or_default();
            for c in &self.constraints {
                if c.atom != atom {
                    continue;
                }
                if let ConstraintLogic::SwitchOnCpu { candidates, .. } = &c.logic {
                    cands.extend(candidates.iter().cloned());
                }
            }
            cands.sort();
            cands.dedup();
            let blocked = self.rule_blocked();
            let refs: Vec<&str> = cands
                .iter()
                .map(String::as_str)
                .filter(|n| *n != from && !occupied.iter().any(|o| o == *n))
                // Evacuating *onto* a suspected-dead node would strand
                // the agent twice: the breaker screens here too.
                .filter(|n| self.admits(blocked.as_ref(), n))
                .collect();
            let Some(dest) = best(&self.net, &refs).map(str::to_owned) else {
                self.note_switch_failure(atom, now, stats);
                continue;
            };
            if let Some(gate) = self.gate.as_mut() {
                if gate.deny(now, atom, &from, &dest).is_some() {
                    self.note_switch_failure(atom, now, stats);
                    continue;
                }
            }
            if let Some(agent) = self.agents.get_mut(&atom).and_then(|v| v.get_mut(idx)) {
                let state_bytes = agent.migrate(&dest);
                self.retry.remove(&atom);
                stats.faults.evacuations += 1;
                if let Some(obs) = &self.obs {
                    let mut o = obs.borrow_mut();
                    // State is recovered from the destination's replica:
                    // still a word copy, just sourced remotely.
                    o.charge(Primitive::CopyWords(state_bytes as u32 / 4));
                    o.instant(
                        "patia",
                        "switch:evacuate",
                        vec![
                            ("atom", atom.0.to_string()),
                            ("from", from.clone()),
                            ("to", dest.clone()),
                            ("state_bytes", state_bytes.to_string()),
                        ],
                    );
                }
                stats.migrations.push(SwitchEvent {
                    atom,
                    kind: SwitchKind::Evacuate,
                    from,
                    to: dest,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::supervise::CircuitState;
    use crate::workload::{FlashCrowd, RequestGen};

    fn server(adaptive: bool) -> PatiaServer {
        let (net, atoms, constraints) = ServerConfig::paper_fleet();
        PatiaServer::new(net, atoms, constraints, ServerConfig { adaptive, work_per_request: 400 })
    }

    #[test]
    fn agents_start_on_best_constraint_450_node() {
        let s = server(true);
        let page_agents = s.agents(AtomId(123));
        assert_eq!(page_agents.len(), 1);
        assert!(["node1", "node2"].contains(&page_agents[0].node.as_str()));
    }

    #[test]
    fn steady_load_is_served_with_low_latency_and_no_migration() {
        let mut s = server(true);
        let mut gen = RequestGen::new(vec![AtomId(123)], 1.0, 5.0, 1);
        let mut total_migrations = 0;
        for t in 1..=200 {
            let reqs = gen.tick(t);
            let st = s.tick(&reqs, 500.0);
            total_migrations += st.migrations.len();
            if let Some(p99) = st.latency_percentile(0.99) {
                assert!(p99 <= 2, "tick {t}: p99 {p99} too high under light load");
            }
        }
        assert_eq!(total_migrations, 0);
    }

    #[test]
    fn flash_crowd_triggers_switch_when_adaptive() {
        let crowd = FlashCrowd { from: 50, to: 250, target: AtomId(123), multiplier: 40.0 };
        let mut gen = RequestGen::new(vec![AtomId(123)], 1.0, 4.0, 2).with_crowd(crowd);
        let mut s = server(true);
        let mut switch_events = 0;
        for t in 1..=300 {
            let reqs = gen.tick(t);
            switch_events += s.tick(&reqs, 500.0).migrations.len();
        }
        assert!(switch_events >= 1, "constraint 455 must fire during the crowd");
        assert_eq!(s.switches(AtomId(123)) as usize, switch_events);
        assert!(
            s.agents(AtomId(123)).len() > 1,
            "a crowd this size must spread the service over several nodes"
        );
    }

    #[test]
    fn adaptive_server_keeps_latency_lower_than_static_under_crowd() {
        let run = |adaptive: bool| -> f64 {
            let crowd = FlashCrowd { from: 50, to: 400, target: AtomId(123), multiplier: 15.0 };
            let mut gen = RequestGen::new(vec![AtomId(123)], 1.0, 4.0, 7).with_crowd(crowd);
            let mut s = server(adaptive);
            let mut lat: Vec<u64> = Vec::new();
            // Run well past the crowd so queued requests drain and their
            // latencies count (otherwise a drowning server looks *better*
            // because its victims never complete).
            for t in 1..=1500 {
                let reqs = gen.tick(t);
                lat.extend(s.tick(&reqs, 500.0).latencies);
            }
            lat.sort_unstable();
            if lat.is_empty() {
                f64::INFINITY
            } else {
                lat[(lat.len() - 1) * 99 / 100] as f64
            }
        };
        let adaptive_p99 = run(true);
        let static_p99 = run(false);
        assert!(
            adaptive_p99 * 1.5 < static_p99,
            "adaptive p99 {adaptive_p99} vs static {static_p99}"
        );
    }

    #[test]
    fn bandwidth_band_selects_videohalf_inside_and_videosmall_outside() {
        let s = server(true);
        // Inside (30, 100): a videohalf version (1–3).
        let v = s.select_version(AtomId(153), 64.0).unwrap();
        assert!((1..=3).contains(&v), "got version {v}");
        // Below the band: fallback videosmall.
        assert_eq!(s.select_version(AtomId(153), 10.0), Some(4));
        // Above the band: the paper's rule still says fallback (else-branch).
        assert_eq!(s.select_version(AtomId(153), 500.0), Some(4));
    }

    #[test]
    fn static_server_always_serves_first_version() {
        let s = server(false);
        assert_eq!(s.select_version(AtomId(153), 64.0), Some(1));
        assert_eq!(s.select_version(AtomId(153), 10.0), Some(1));
    }

    #[test]
    fn versions_served_are_counted() {
        let mut s = server(true);
        let st = s.tick(&[AtomId(153), AtomId(153)], 64.0);
        let per_atom = st.versions_served.get(&AtomId(153)).unwrap();
        assert_eq!(per_atom.values().sum::<u64>(), 2);
    }

    #[test]
    fn unknown_atom_requests_are_ignored() {
        let mut s = server(true);
        let st = s.tick(&[AtomId(999)], 100.0);
        assert_eq!(st.arrivals, 1);
        assert!(st.versions_served.is_empty());
        assert_eq!(st.faults.dropped, 1, "the drop is counted, not silent");
    }

    /// A gate that denies every switch — the simplest chaos injector.
    #[derive(Debug)]
    struct DenyAll;
    impl SwitchGate for DenyAll {
        fn deny(&mut self, _tick: u64, _atom: AtomId, _from: &str, _to: &str) -> Option<String> {
            Some("injected".to_owned())
        }
    }

    #[test]
    fn atom_without_holders_drops_requests_instead_of_panicking() {
        let (net, mut atoms, constraints) = ServerConfig::paper_fleet();
        atoms.insert(Atom::new(AtomId(7), "ghost.html", AtomType::Html, 1_000));
        let mut s = PatiaServer::new(net, atoms, constraints, ServerConfig::default());
        let st = s.tick(&[AtomId(7), AtomId(123)], 500.0);
        assert_eq!(st.arrivals, 2);
        assert_eq!(st.faults.dropped, 1);
        assert_eq!(st.versions_served.keys().copied().collect::<Vec<_>>(), vec![AtomId(123)]);
    }

    #[test]
    fn node_death_evacuates_agent_and_conserves_requests() {
        let mut s = server(true);
        let home = s.agents(AtomId(123))[0].node.clone();
        let mut arrivals = 0u64;
        let mut completed = 0u64;
        let mut dropped = 0u64;
        let mut evacuations = 0u64;
        for t in 1..=120 {
            if t == 10 {
                assert!(s.kill_node(&home));
            }
            let reqs = if t <= 60 { vec![AtomId(123); 2] } else { Vec::new() };
            let st = s.tick(&reqs, 500.0);
            arrivals += st.arrivals as u64;
            completed += st.latencies.len() as u64;
            dropped += st.faults.dropped;
            evacuations += st.faults.evacuations;
        }
        assert!(evacuations >= 1, "the stranded agent must move off the corpse");
        for a in s.agents(AtomId(123)) {
            assert_ne!(a.node, home, "no agent may remain on the dead node");
        }
        assert_eq!(
            arrivals,
            completed + dropped + s.queued_requests(),
            "no request may be silently lost across a node death"
        );
        assert_eq!(dropped, 0, "evacuation means no drops were ever needed");
    }

    #[test]
    fn denied_switches_back_off_and_serve_degraded() {
        let crowd = FlashCrowd { from: 10, to: 220, target: AtomId(123), multiplier: 40.0 };
        let mut gen = RequestGen::new(vec![AtomId(123)], 1.0, 4.0, 2).with_crowd(crowd);
        let mut s = server(true);
        s.arm_switch_gate(Box::new(DenyAll));
        let mut failed = 0u64;
        let mut retries = 0u64;
        let mut degraded = 0u64;
        for t in 1..=250 {
            let st = s.tick(&gen.tick(t), 500.0);
            failed += st.faults.failed_switches;
            retries += st.faults.switch_retries;
            degraded += st.faults.degraded;
        }
        assert!(failed >= 2, "the gate must have denied repeatedly (got {failed})");
        assert!(retries >= 1, "later denials count as retries");
        assert!(degraded >= 1, "requests during the incident serve degraded");
        assert_eq!(s.agents(AtomId(123)).len(), 1, "denied switches must not spread");
        assert_eq!(s.switches(AtomId(123)), 0);
        // Exponential backoff caps the attempt rate well below one per tick.
        assert!(failed < 60, "backoff must bound retry frequency (got {failed})");
    }

    #[test]
    fn injected_cpu_pressure_drives_constraint_455() {
        let mut s = server(true);
        let home = s.agents(AtomId(123))[0].node.clone();
        s.inject_pressure(&home, 0.95);
        let mut migrations = 0;
        for _ in 1..=60 {
            migrations += s.tick(&[AtomId(123); 4], 500.0).migrations.len();
        }
        assert!(migrations >= 1, "pressure on {home} must push the agent away");
        assert_ne!(s.agents(AtomId(123))[0].node, home);
    }

    /// Regression: fault-counter semantics must be uniform — TickStats
    /// carries per-tick *deltas* and `fault_totals()` the running *total*,
    /// so summing the deltas must reproduce the total exactly.
    #[test]
    fn fault_totals_are_the_sum_of_tick_deltas() {
        let crowd = FlashCrowd { from: 10, to: 160, target: AtomId(123), multiplier: 40.0 };
        let mut gen = RequestGen::new(vec![AtomId(123)], 1.0, 4.0, 2).with_crowd(crowd);
        let mut s = server(true);
        s.arm_switch_gate(Box::new(DenyAll));
        let mut summed = FaultCounters::default();
        for t in 1..=200 {
            if t == 30 {
                s.kill_node("node3");
            }
            if t == 90 {
                s.revive_node("node3");
            }
            let mut reqs = gen.tick(t);
            reqs.push(AtomId(999)); // guaranteed drop each tick
            let st = s.tick(&reqs, 500.0);
            summed.absorb(&st.faults);
        }
        let totals = s.fault_totals();
        assert_eq!(totals, summed, "cumulative totals must equal the sum of per-tick deltas");
        assert!(totals.failed_switches >= 1, "the scenario must exercise failures");
        assert!(totals.dropped >= 200);
    }

    /// Arming observability must not perturb behaviour: TickStats and the
    /// gauge board are identical whether readings flow directly or through
    /// the metrics registry.
    #[test]
    fn armed_observability_does_not_perturb_the_server() {
        let run = |armed: bool| {
            let crowd = FlashCrowd { from: 20, to: 150, target: AtomId(123), multiplier: 30.0 };
            let mut gen = RequestGen::new(vec![AtomId(123)], 1.0, 4.0, 3).with_crowd(crowd);
            let mut s = server(true);
            let obs = armed.then(|| {
                let h = obs::Obs::new(obs::CostModel::pentium()).into_handle();
                s.arm_obs(h.clone());
                h
            });
            let mut out = Vec::new();
            for t in 1..=200 {
                if t == 40 {
                    s.kill_node("node1");
                }
                if t == 120 {
                    s.revive_node("node1");
                }
                out.push(s.tick(&gen.tick(t), 500.0));
            }
            (out, s.board.snapshot(), s.fault_totals(), obs)
        };
        let (stats_off, board_off, totals_off, _) = run(false);
        let (stats_on, board_on, totals_on, obs) = run(true);
        assert_eq!(stats_off, stats_on, "TickStats must not depend on observability");
        assert_eq!(board_off, board_on, "gauge-from-registry must feed identical readings");
        assert_eq!(totals_off, totals_on);
        // And the registry's cumulative counters agree with the totals.
        let o = obs.unwrap();
        let o = o.borrow();
        assert_eq!(o.metrics.counter("patia.switch.failed"), totals_on.failed_switches);
        assert_eq!(o.metrics.counter("patia.switch.evacuations"), totals_on.evacuations);
        assert_eq!(o.metrics.counter("patia.requests.degraded"), totals_on.degraded);
        assert_eq!(o.metrics.counter("patia.requests.dropped"), totals_on.dropped);
        let arrived: u64 = stats_on.iter().map(|st| st.arrivals as u64).sum();
        assert_eq!(o.metrics.counter("patia.requests.arrived"), arrived);
        assert!(o.tracer.events().iter().any(|e| e.name.starts_with("tick:")));
    }

    /// Regression for the cumulative-counter contract: absorbing into a
    /// saturated accumulator must pin at `u64::MAX`, never wrap.
    #[test]
    fn fault_counters_saturate_at_u64_max() {
        let mut totals = FaultCounters {
            failed_switches: u64::MAX,
            switch_retries: u64::MAX,
            evacuations: u64::MAX,
            degraded: u64::MAX,
            dropped: u64::MAX,
        };
        let delta = FaultCounters {
            failed_switches: 3,
            switch_retries: 2,
            evacuations: 1,
            degraded: 5,
            dropped: 7,
        };
        totals.absorb(&delta);
        assert_eq!(
            totals,
            FaultCounters {
                failed_switches: u64::MAX,
                switch_retries: u64::MAX,
                evacuations: u64::MAX,
                degraded: u64::MAX,
                dropped: u64::MAX,
            }
        );
    }

    #[test]
    fn detector_suspects_a_killed_node_within_k_beats() {
        let mut s = server(true);
        s.kill_node("node2");
        for _ in 0..SuperviseConfig::default().suspect_after {
            s.tick(&[], 500.0);
        }
        assert!(s.supervisor().suspected("node2"), "k missed beats must convict");
        assert!(s.supervisor().is_open("node2"), "suspicion opens the circuit");
        assert!(!s.supervisor().is_open("node1"), "healthy peers stay closed");
    }

    #[test]
    fn best_never_switches_toward_an_open_circuit() {
        let mut s = server(true);
        // Partition wp1 away: it stays alive (so plain BEST would still
        // nominate it) but the detector can no longer hear it.
        s.network_mut().partition(&["wp1".to_owned()]);
        for _ in 0..5 {
            s.tick(&[], 500.0);
        }
        assert!(s.supervisor().is_open("wp1"), "unreachable peer must be isolated");
        // Now drive a flash crowd: switches must spread, but never to wp1.
        let crowd = FlashCrowd { from: 1, to: 200, target: AtomId(123), multiplier: 40.0 };
        let mut gen = RequestGen::new(vec![AtomId(123)], 1.0, 4.0, 2).with_crowd(crowd);
        let mut migrations = Vec::new();
        for t in 1..=250 {
            migrations.extend(s.tick(&gen.tick(t), 500.0).migrations);
        }
        assert!(!migrations.is_empty(), "the crowd must still force switches");
        for m in &migrations {
            assert_ne!(m.to, "wp1", "no switch may target a suspected replica: {m:?}");
        }
    }

    #[test]
    fn query_policy_decisions_match_hardcoded_byte_for_byte() {
        // Two servers, same fault script, opposite policies: every tick's
        // stats (migrations, faults, completions) must agree exactly.
        let run = |policy: SwitchPolicy| {
            let mut s = server(true);
            s.set_switch_policy(policy);
            s.network_mut().partition(&["wp1".to_owned()]);
            let crowd = FlashCrowd { from: 1, to: 120, target: AtomId(123), multiplier: 40.0 };
            let mut gen = RequestGen::new(vec![AtomId(123)], 1.0, 4.0, 2).with_crowd(crowd);
            let mut out = Vec::new();
            for t in 1..=150 {
                if t == 60 {
                    s.kill_node("node2");
                }
                if t == 100 {
                    s.revive_node("node2");
                }
                out.push(s.tick(&gen.tick(t), 500.0));
            }
            (out, s.rule_stats())
        };
        let (hard, hard_stats) = run(SwitchPolicy::Hardcoded);
        let (query, query_stats) = run(SwitchPolicy::Query);
        assert_eq!(hard, query, "policy must not change a single tick's outcome");
        assert_eq!(hard_stats, RuleStats::default(), "hard-coded mode evaluates no rules");
        assert!(query_stats.evaluations > 0, "query mode must actually run the rule");
        assert!(query_stats.rows_scanned >= query_stats.evaluations * 5, "5 peers per scan");
    }

    #[test]
    fn restarted_node_rejoins_after_contact_and_probation() {
        let mut s = server(true);
        s.kill_node("node3");
        for _ in 0..6 {
            s.tick(&[], 500.0);
        }
        assert!(s.supervisor().is_open("node3"));
        s.revive_node("node3");
        let probation = SuperviseConfig::default().probation;
        for _ in 0..probation {
            s.tick(&[], 500.0);
        }
        assert_eq!(
            s.supervisor().circuit("node3"),
            CircuitState::Closed,
            "contact plus probation must readmit the peer"
        );
        assert!(!s.supervisor().suspected("node3"));
    }

    #[test]
    fn supervision_events_surface_as_instants_and_metrics_when_armed() {
        let mut s = server(true);
        let h = obs::Obs::new(obs::CostModel::pentium()).into_handle();
        s.arm_obs(h.clone());
        s.kill_node("node2");
        for _ in 0..8 {
            s.tick(&[], 500.0);
        }
        s.revive_node("node2");
        for _ in 0..4 {
            s.tick(&[], 500.0);
        }
        let o = h.borrow();
        for name in [
            "detector:suspect",
            "detector:revive",
            "circuit:open",
            "circuit:close",
            "restart:attempt",
        ] {
            assert!(
                o.tracer.events().iter().any(|e| e.name == name),
                "trace must contain a {name} instant"
            );
        }
        assert_eq!(o.metrics.counter("patia.detector.suspects"), s.supervisor().suspects());
        assert_eq!(o.metrics.counter("patia.detector.revivals"), s.supervisor().revivals());
        assert_eq!(o.metrics.counter("patia.circuit.opens"), s.supervisor().opens());
        assert_eq!(o.metrics.counter("patia.circuit.closes"), s.supervisor().closes());
        assert_eq!(o.metrics.counter("patia.restart.probes"), s.supervisor().probes());
    }

    #[test]
    fn fault_timeline_is_deterministic_across_runs() {
        let run = || {
            let mut s = server(true);
            let mut out = Vec::new();
            for t in 1u64..=90 {
                if t == 20 {
                    s.kill_node("node1");
                }
                if t == 55 {
                    s.revive_node("node1");
                }
                let reqs = vec![AtomId(123); usize::from(t % 3 == 0) * 3];
                out.push(s.tick(&reqs, 500.0));
            }
            out
        };
        assert_eq!(run(), run(), "same inputs must yield byte-identical TickStats");
    }
}
