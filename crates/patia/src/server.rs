//! The Patia server loop (Figure 7): service agents over a node fleet,
//! monitors feeding gauges, and the Table 2 constraints driving adaptation.

use crate::agent::ServiceAgent;
use crate::atom::{Atom, AtomId, AtomStore, AtomType};
use crate::constraint::{paper_table2, AtomConstraint, ConstraintLogic};
use compkit::gauge::{Gauge, GaugeBoard, GaugeKind};
use compkit::monitor::Monitor;
use std::collections::BTreeMap;
use ubinet::device::{Device, DeviceKind};
use ubinet::link::{BandwidthProfile, Link, LinkKind};
use ubinet::net::Network;
use ubinet::select::best;

/// Server construction parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerConfig {
    /// Whether adaptivity (constraints 455/595) is enabled. With `false`
    /// the server is the static baseline: agents never move and the full
    /// version is always served.
    pub adaptive: bool,
    /// Work units one request costs.
    pub work_per_request: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self { adaptive: true, work_per_request: 400 }
    }
}

impl ServerConfig {
    /// The paper's fleet: `node1`/`node2` are webservers hosting
    /// `Page1.html` (atom 123); `node3` plus two "typing-pool" workstations
    /// host video renditions (atom 153: `videohalf` on node1–3 as versions
    /// 1–3, `videosmall` on node3 as version 4) and replicas of the hot
    /// page for SWITCH targets.
    #[must_use]
    pub fn paper_fleet() -> (Network, AtomStore, Vec<AtomConstraint>) {
        let mut net = Network::new();
        net.add_device(Device::new("node1", DeviceKind::Server));
        net.add_device(Device::new("node2", DeviceKind::Server));
        net.add_device(Device::new("node3", DeviceKind::Server));
        net.add_device(Device::new("wp1", DeviceKind::Workstation));
        net.add_device(Device::new("wp2", DeviceKind::Workstation));
        let names = ["node1", "node2", "node3", "wp1", "wp2"];
        for (i, a) in names.iter().enumerate() {
            for b in names.iter().skip(i + 1) {
                net.add_link(Link::new(
                    a,
                    b,
                    LinkKind::Wired,
                    BandwidthProfile::Constant(10_000.0),
                    1,
                ));
            }
        }
        let mut atoms = AtomStore::new();
        let mut page = Atom::new(AtomId(123), "Page1.html", AtomType::Html, 40_000);
        page.add_replica(1, "node1");
        page.add_replica(2, "node2");
        // The typing pool holds replicas too — the SWITCH destinations.
        page.add_replica(3, "wp1");
        page.add_replica(4, "wp2");
        page.constraint_ids = vec![450, 455];
        atoms.insert(page);
        let mut video = Atom::new(AtomId(153), "video.ram", AtomType::VideoStream, 1_000_000);
        video.add_rendition(1, "node1", 0.5, 500_000);
        video.add_rendition(2, "node2", 0.5, 500_000);
        video.add_rendition(3, "node3", 0.5, 500_000);
        video.add_rendition(4, "node3", 0.2, 150_000);
        video.constraint_ids = vec![595];
        atoms.insert(video);
        // Give the SWITCH constraint the typing pool as candidates, as the
        // paper describes ("a under-utilised machine in the typing pool
        // that contains a replica").
        let mut constraints = paper_table2();
        for c in &mut constraints {
            if let ConstraintLogic::SwitchOnCpu { candidates, .. } = &mut c.logic {
                candidates.extend(["wp1".into(), "wp2".into()]);
            }
        }
        (net, atoms, constraints)
    }
}

/// Per-tick observable results.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TickStats {
    /// The tick.
    pub tick: u64,
    /// Requests that arrived.
    pub arrivals: usize,
    /// Requests completed, with their latencies in ticks.
    pub latencies: Vec<u64>,
    /// Agent migrations performed this tick (atom, from, to).
    pub migrations: Vec<(AtomId, String, String)>,
    /// Per-node utilisation after processing.
    pub utilisation: BTreeMap<String, f64>,
    /// Version ids served this tick, per atom.
    pub versions_served: BTreeMap<AtomId, BTreeMap<u32, u64>>,
}

impl TickStats {
    /// The p-th latency percentile of this tick's completions.
    #[must_use]
    pub fn latency_percentile(&self, p: f64) -> Option<u64> {
        if self.latencies.is_empty() {
            return None;
        }
        let mut v = self.latencies.clone();
        v.sort_unstable();
        let idx = ((v.len() - 1) as f64 * p).round() as usize;
        Some(v[idx])
    }
}

/// The Patia server.
#[derive(Debug)]
pub struct PatiaServer {
    net: Network,
    atoms: AtomStore,
    constraints: Vec<AtomConstraint>,
    /// Agents per atom: one initially; SWITCH may *spread* the service
    /// over more nodes during a flash crowd ("dynamically spread its
    /// processing (e.g. to non-Webserver machines like a typing-pools'
    /// word processing computers)").
    agents: BTreeMap<AtomId, Vec<ServiceAgent>>,
    /// The gauge board (public so experiments can attach extra gauges).
    pub board: GaugeBoard,
    config: ServerConfig,
    now: u64,
}

impl PatiaServer {
    /// Build a server. One agent is created per atom, placed by constraint
    /// 450 (`BEST`) where present, else on the atom's first holder.
    ///
    /// # Panics
    /// If an atom has no holders.
    #[must_use]
    pub fn new(
        net: Network,
        atoms: AtomStore,
        constraints: Vec<AtomConstraint>,
        config: ServerConfig,
    ) -> Self {
        let mut board = GaugeBoard::new();
        let names: Vec<String> = net.devices().map(|d| d.name.clone()).collect();
        for n in &names {
            board.add_monitor(Monitor::new(&format!("cpu:{n}"), 16));
            board.add_gauge(Gauge {
                name: format!("util:{n}"),
                monitor: format!("cpu:{n}"),
                kind: GaugeKind::Latest,
            });
            // The paper's trend analysis: a rising slope anticipates
            // saturation before it happens.
            board.add_gauge(Gauge {
                name: format!("util_trend:{n}"),
                monitor: format!("cpu:{n}"),
                kind: GaugeKind::Slope(8),
            });
        }
        let mut agents = BTreeMap::new();
        for id in atoms.ids().collect::<Vec<_>>() {
            let atom = atoms.get(id).expect("id from iterator");
            let home = constraints
                .iter()
                .find_map(|c| match (&c.logic, c.atom == id) {
                    (ConstraintLogic::SelectBest { candidates }, true) => {
                        let refs: Vec<&str> = candidates.iter().map(String::as_str).collect();
                        best(&net, &refs).map(str::to_owned)
                    }
                    _ => None,
                })
                .or_else(|| atom.holders().first().map(|s| (*s).to_owned()))
                .expect("atom must have a holder");
            agents.insert(id, vec![ServiceAgent::new(id, &home)]);
        }
        Self { net, atoms, constraints, agents, board, config, now: 0 }
    }

    /// The agents currently serving an atom (one unless the service has
    /// spread).
    #[must_use]
    pub fn agents(&self, atom: AtomId) -> &[ServiceAgent] {
        self.agents.get(&atom).map_or(&[], Vec::as_slice)
    }

    /// Total SWITCH events (migrations + spreads) performed for an atom.
    #[must_use]
    pub fn switches(&self, atom: AtomId) -> u32 {
        self.agents(atom).iter().map(|a| a.migrations).sum::<u32>()
            + self.agents(atom).len().saturating_sub(1) as u32
    }

    /// The node fleet.
    #[must_use]
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// Select which version of an atom to serve a client seeing
    /// `bandwidth_kbps` — constraint 595's logic. Falls back to the first
    /// version when no bandwidth constraint governs the atom.
    #[must_use]
    pub fn select_version(&self, atom: AtomId, bandwidth_kbps: f64) -> Option<u32> {
        let a = self.atoms.get(atom)?;
        if self.config.adaptive {
            for c in &self.constraints {
                if c.atom != atom {
                    continue;
                }
                if let ConstraintLogic::BandwidthVersion { lo, hi, preferred, fallback } = &c.logic
                {
                    if bandwidth_kbps > *lo && bandwidth_kbps < *hi {
                        // BEST among the preferred versions' hosts.
                        let hosts: Vec<(&str, u32)> = a
                            .versions
                            .all()
                            .iter()
                            .filter(|v| preferred.contains(&v.id))
                            .map(|v| (v.location.as_str(), v.id))
                            .collect();
                        let names: Vec<&str> = hosts.iter().map(|(n, _)| *n).collect();
                        let chosen = best(&self.net, &names)?;
                        return hosts.iter().find(|(n, _)| *n == chosen).map(|(_, id)| *id);
                    }
                    return Some(*fallback);
                }
            }
        }
        a.versions.all().first().map(|v| v.id)
    }

    /// One serving tick: accept `requests`, process, monitor, adapt.
    pub fn tick(&mut self, requests: &[AtomId], client_bandwidth_kbps: f64) -> TickStats {
        self.now += 1;
        let now = self.now;
        let mut stats = TickStats { tick: now, arrivals: requests.len(), ..TickStats::default() };

        // 1. Route arrivals to agents, selecting versions per constraint 595.
        for &atom in requests {
            if let Some(version) = self.select_version(atom, client_bandwidth_kbps) {
                *stats.versions_served.entry(atom).or_default().entry(version).or_default() += 1;
            }
            // Route to the agent whose node has the least pending work per
            // unit of capacity (capacity-weighted join-shortest-queue) —
            // a typing-pool workstation must not receive a webserver-sized
            // share of a flash crowd.
            let choice = self
                .agents
                .get(&atom)
                .into_iter()
                .flatten()
                .enumerate()
                .map(|(i, a)| {
                    let cap = self
                        .net
                        .device(&a.node)
                        .map_or(1.0, |d| d.kind.nominal_capacity())
                        .max(1.0);
                    (i, a.queued_work() as f64 / cap)
                })
                .min_by(|(_, x), (_, y)| x.total_cmp(y))
                .map(|(i, _)| i);
            if let (Some(idx), Some(agents)) = (choice, self.agents.get_mut(&atom)) {
                agents[idx].accept(now, self.config.work_per_request);
            }
        }

        // 2. Process: each node's capacity is shared among its agents.
        let node_names: Vec<String> = self.net.devices().map(|d| d.name.clone()).collect();
        for node in &node_names {
            let capacity =
                self.net.device(node).map_or(0.0, |d| d.kind.nominal_capacity()).max(0.0) as u64;
            let mut local: Vec<(AtomId, usize)> = self
                .agents
                .iter()
                .flat_map(|(id, v)| {
                    v.iter()
                        .enumerate()
                        .filter(|(_, a)| &a.node == node)
                        .map(|(i, _)| (*id, i))
                        .collect::<Vec<_>>()
                })
                .collect();
            local.sort_unstable();
            if local.is_empty() {
                self.record_util(node, 0.0, now);
                continue;
            }
            let demand: u64 = local.iter().map(|(id, i)| self.agents[id][*i].queued_work()).sum();
            // Capacity is shared among the agents that actually have work;
            // an idle co-resident agent does not waste a share.
            let active: Vec<(AtomId, usize)> = local
                .iter()
                .copied()
                .filter(|(id, i)| self.agents[id][*i].queued_work() > 0)
                .collect();
            let share = if active.is_empty() { 0 } else { capacity / active.len() as u64 };
            for (id, i) in &active {
                let agent = &mut self.agents.get_mut(id).expect("local agent")[*i];
                for (arrived, done) in agent.step(now, share) {
                    stats.latencies.push(done - arrived);
                }
            }
            let util = if capacity == 0 { 1.0 } else { (demand as f64 / capacity as f64).min(1.0) };
            self.record_util(node, util, now);
            stats.utilisation.insert(node.clone(), util);
            if let Some(d) = self.net.device_mut(node) {
                d.load = util;
            }
        }

        // 3. Adapt: constraint 455 — SWITCH agents off saturated nodes.
        if self.config.adaptive {
            let gauges = self.board.snapshot();
            let constraints = self.constraints.clone();
            for c in &constraints {
                let ConstraintLogic::SwitchOnCpu { threshold, candidates } = &c.logic else {
                    continue;
                };
                let Some(agents) = self.agents.get(&c.atom) else { continue };
                // Find the most saturated agent of this atom.
                let Some((worst_idx, worst_util)) = agents
                    .iter()
                    .enumerate()
                    .map(|(i, a)| {
                        (i, gauges.get(&format!("util:{}", a.node)).copied().unwrap_or(0.0))
                    })
                    .max_by(|(_, x), (_, y)| x.total_cmp(y))
                else {
                    continue;
                };
                if worst_util <= *threshold {
                    continue;
                }
                let occupied: Vec<String> = agents.iter().map(|a| a.node.clone()).collect();
                let refs: Vec<&str> = candidates
                    .iter()
                    .map(String::as_str)
                    .filter(|n| !occupied.iter().any(|o| o == *n))
                    .collect();
                let Some(dest) = best(&self.net, &refs) else { continue };
                let dest_load = self.net.device(dest).map_or(1.0, |d| d.load);
                // Only act if the destination is meaningfully less loaded.
                if dest_load >= worst_util - 0.2 {
                    continue;
                }
                let agents = self.agents.get_mut(&c.atom).expect("checked");
                let from = agents[worst_idx].node.clone();
                // A lightly-queued agent is a bystander on a busy node:
                // SWITCH moves it whole. A heavily-queued agent *is* the
                // load: SWITCH spreads the service — clone the agent onto
                // the destination and split the queue (the data AND
                // processing state shipping the paper describes).
                let queue_len = agents[worst_idx].queue.len();
                if queue_len <= 2 {
                    let _state_bytes = agents[worst_idx].migrate(dest);
                } else {
                    let mut clone = ServiceAgent::new(c.atom, dest);
                    let split = queue_len / 2;
                    for _ in 0..split {
                        if let Some(req) = agents[worst_idx].queue.pop_back() {
                            clone.queue.push_front(req);
                        }
                    }
                    agents.push(clone);
                }
                stats.migrations.push((c.atom, from, dest.to_owned()));
            }
        }

        stats
    }

    fn record_util(&mut self, node: &str, util: f64, now: u64) {
        self.board.record(&format!("cpu:{node}"), now, util);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{FlashCrowd, RequestGen};

    fn server(adaptive: bool) -> PatiaServer {
        let (net, atoms, constraints) = ServerConfig::paper_fleet();
        PatiaServer::new(net, atoms, constraints, ServerConfig { adaptive, work_per_request: 400 })
    }

    #[test]
    fn agents_start_on_best_constraint_450_node() {
        let s = server(true);
        let page_agents = s.agents(AtomId(123));
        assert_eq!(page_agents.len(), 1);
        assert!(["node1", "node2"].contains(&page_agents[0].node.as_str()));
    }

    #[test]
    fn steady_load_is_served_with_low_latency_and_no_migration() {
        let mut s = server(true);
        let mut gen = RequestGen::new(vec![AtomId(123)], 1.0, 5.0, 1);
        let mut total_migrations = 0;
        for t in 1..=200 {
            let reqs = gen.tick(t);
            let st = s.tick(&reqs, 500.0);
            total_migrations += st.migrations.len();
            if let Some(p99) = st.latency_percentile(0.99) {
                assert!(p99 <= 2, "tick {t}: p99 {p99} too high under light load");
            }
        }
        assert_eq!(total_migrations, 0);
    }

    #[test]
    fn flash_crowd_triggers_switch_when_adaptive() {
        let crowd = FlashCrowd { from: 50, to: 250, target: AtomId(123), multiplier: 40.0 };
        let mut gen = RequestGen::new(vec![AtomId(123)], 1.0, 4.0, 2).with_crowd(crowd);
        let mut s = server(true);
        let mut switch_events = 0;
        for t in 1..=300 {
            let reqs = gen.tick(t);
            switch_events += s.tick(&reqs, 500.0).migrations.len();
        }
        assert!(switch_events >= 1, "constraint 455 must fire during the crowd");
        assert_eq!(s.switches(AtomId(123)) as usize, switch_events);
        assert!(
            s.agents(AtomId(123)).len() > 1,
            "a crowd this size must spread the service over several nodes"
        );
    }

    #[test]
    fn adaptive_server_keeps_latency_lower_than_static_under_crowd() {
        let run = |adaptive: bool| -> f64 {
            let crowd = FlashCrowd { from: 50, to: 400, target: AtomId(123), multiplier: 15.0 };
            let mut gen = RequestGen::new(vec![AtomId(123)], 1.0, 4.0, 7).with_crowd(crowd);
            let mut s = server(adaptive);
            let mut lat: Vec<u64> = Vec::new();
            // Run well past the crowd so queued requests drain and their
            // latencies count (otherwise a drowning server looks *better*
            // because its victims never complete).
            for t in 1..=1500 {
                let reqs = gen.tick(t);
                lat.extend(s.tick(&reqs, 500.0).latencies);
            }
            lat.sort_unstable();
            if lat.is_empty() {
                f64::INFINITY
            } else {
                lat[(lat.len() - 1) * 99 / 100] as f64
            }
        };
        let adaptive_p99 = run(true);
        let static_p99 = run(false);
        assert!(
            adaptive_p99 * 1.5 < static_p99,
            "adaptive p99 {adaptive_p99} vs static {static_p99}"
        );
    }

    #[test]
    fn bandwidth_band_selects_videohalf_inside_and_videosmall_outside() {
        let s = server(true);
        // Inside (30, 100): a videohalf version (1–3).
        let v = s.select_version(AtomId(153), 64.0).unwrap();
        assert!((1..=3).contains(&v), "got version {v}");
        // Below the band: fallback videosmall.
        assert_eq!(s.select_version(AtomId(153), 10.0), Some(4));
        // Above the band: the paper's rule still says fallback (else-branch).
        assert_eq!(s.select_version(AtomId(153), 500.0), Some(4));
    }

    #[test]
    fn static_server_always_serves_first_version() {
        let s = server(false);
        assert_eq!(s.select_version(AtomId(153), 64.0), Some(1));
        assert_eq!(s.select_version(AtomId(153), 10.0), Some(1));
    }

    #[test]
    fn versions_served_are_counted() {
        let mut s = server(true);
        let st = s.tick(&[AtomId(153), AtomId(153)], 64.0);
        let per_atom = st.versions_served.get(&AtomId(153)).unwrap();
        assert_eq!(per_atom.values().sum::<u64>(), 2);
    }

    #[test]
    fn unknown_atom_requests_are_ignored() {
        let mut s = server(true);
        let st = s.tick(&[AtomId(999)], 100.0);
        assert_eq!(st.arrivals, 1);
        assert!(st.versions_served.is_empty());
    }
}
