//! Request workload: Zipf atom popularity with deterministic flash
//! crowds, plus the flow layer — cohorts of thousands of clients modeled
//! as arrival-*rate* flows instead of individually generated requests.
//!
//! Production web traces are not available; the substitution is the
//! standard synthetic equivalent — Zipf-distributed object popularity
//! (web-cache literature's consistent finding) plus a flash-crowd window
//! during which the arrival rate on one hot atom multiplies. Everything is
//! seeded, so adaptive and non-adaptive runs see byte-identical workloads.
//!
//! [`FlowSpec`] describes a cohort by rate, ramp, and burst; a
//! [`FlowState`] expands it lazily, one `(atom, count)` batch per active
//! tick, with a fractional-rate carry accumulator so that the emitted
//! total is exactly conserved against a per-request expansion of the same
//! spec (the `slow-props` conservation property). Ten million requests
//! cost ten million *counts*, not ten million allocations.

use crate::atom::AtomId;
use adm_rng::Pcg32;

/// A flash-crowd spike.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlashCrowd {
    /// First tick of the spike.
    pub from: u64,
    /// Last tick (inclusive).
    pub to: u64,
    /// The atom everyone suddenly wants.
    pub target: AtomId,
    /// Rate multiplier during the spike.
    pub multiplier: f64,
}

/// The request generator.
#[derive(Debug, Clone)]
pub struct RequestGen {
    atoms: Vec<AtomId>,
    /// Zipf CDF over `atoms`.
    cdf: Vec<f64>,
    /// Mean requests per tick in steady state.
    pub base_rate: f64,
    /// Optional flash crowd.
    pub crowd: Option<FlashCrowd>,
    rng: Pcg32,
}

impl RequestGen {
    /// A generator over `atoms` with Zipf exponent `s` and `base_rate`
    /// mean requests/tick, seeded deterministically.
    ///
    /// # Panics
    /// If `atoms` is empty.
    #[must_use]
    pub fn new(atoms: Vec<AtomId>, s: f64, base_rate: f64, seed: u64) -> Self {
        assert!(!atoms.is_empty(), "need at least one atom");
        let weights: Vec<f64> = (1..=atoms.len()).map(|k| 1.0 / (k as f64).powf(s)).collect();
        let total: f64 = weights.iter().sum();
        let mut cdf = Vec::with_capacity(weights.len());
        let mut acc = 0.0;
        for w in &weights {
            acc += w / total;
            cdf.push(acc);
        }
        Self { atoms, cdf, base_rate, crowd: None, rng: Pcg32::new(seed) }
    }

    /// Attach a flash crowd (builder style).
    #[must_use]
    pub fn with_crowd(mut self, crowd: FlashCrowd) -> Self {
        self.crowd = Some(crowd);
        self
    }

    fn in_crowd(&self, tick: u64) -> Option<FlashCrowd> {
        self.crowd.filter(|c| (c.from..=c.to).contains(&tick))
    }

    /// Requests arriving at `tick`. Counts are drawn from a deterministic
    /// Poisson-like process (rounded rate + Bernoulli remainder); during a
    /// flash crowd the extra arrivals all target the hot atom.
    pub fn tick(&mut self, tick: u64) -> Vec<AtomId> {
        let mut out = Vec::new();
        let emit_rate = |rate: f64,
                         rng: &mut Pcg32,
                         out: &mut Vec<AtomId>,
                         fixed: Option<AtomId>,
                         cdf: &[f64],
                         atoms: &[AtomId]| {
            let whole = rate.floor() as usize;
            let frac = rate - rate.floor();
            let n = whole + usize::from(rng.f64() < frac);
            for _ in 0..n {
                match fixed {
                    Some(a) => out.push(a),
                    None => {
                        let u = rng.f64();
                        let idx = cdf.partition_point(|&c| c < u).min(atoms.len() - 1);
                        out.push(atoms[idx]);
                    }
                }
            }
        };
        emit_rate(self.base_rate, &mut self.rng, &mut out, None, &self.cdf, &self.atoms);
        if let Some(c) = self.in_crowd(tick) {
            let extra = self.base_rate * (c.multiplier - 1.0);
            emit_rate(
                extra.max(0.0),
                &mut self.rng,
                &mut out,
                Some(c.target),
                &self.cdf,
                &self.atoms,
            );
        }
        out
    }
}

/// A burst riding on a flow: for `len` ticks starting at `at`, the flow's
/// rate multiplies — the flow-level analogue of [`FlashCrowd`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowBurst {
    /// First tick of the burst.
    pub at: u64,
    /// Burst length in ticks.
    pub len: u64,
    /// Rate multiplier while the burst lasts.
    pub multiplier: f64,
}

/// A cohort of clients described as an arrival-rate flow: `rate`
/// requests/tick for one atom over `[start, end)`, linearly ramping up
/// over the first `ramp` ticks, optionally multiplied by a [`FlowBurst`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowSpec {
    /// The atom every request in the cohort targets.
    pub atom: AtomId,
    /// First tick the flow is active.
    pub start: u64,
    /// First tick the flow is no longer active (exclusive).
    pub end: u64,
    /// Steady-state requests per tick.
    pub rate: f64,
    /// Ticks of linear ramp-up from zero to `rate` (0 = step on).
    pub ramp: u64,
    /// Optional burst window.
    pub burst: Option<FlowBurst>,
}

impl FlowSpec {
    /// The flow's instantaneous rate at `tick`: zero outside
    /// `[start, end)`, linearly ramped over the first `ramp` ticks,
    /// multiplied inside the burst window.
    #[must_use]
    pub fn rate_at(&self, tick: u64) -> f64 {
        if tick < self.start || tick >= self.end {
            return 0.0;
        }
        let mut rate = self.rate;
        if self.ramp > 0 {
            let into = tick - self.start;
            if into < self.ramp {
                rate *= (into + 1) as f64 / self.ramp as f64;
            }
        }
        if let Some(b) = self.burst {
            if tick >= b.at && tick < b.at + b.len {
                rate *= b.multiplier;
            }
        }
        rate.max(0.0)
    }

    /// The total requests the flow emits over its lifetime — computed by
    /// running the same carry accumulator the engine runs, so planning
    /// code (scenario sizing, shed caps) agrees with execution exactly.
    #[must_use]
    pub fn total_requests(&self) -> u64 {
        let mut st = FlowState::new(*self);
        (self.start..self.end).map(|t| st.emit(t)).sum()
    }
}

/// A flow being expanded: the spec plus the fractional-request carry.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowState {
    spec: FlowSpec,
    carry: f64,
}

impl FlowState {
    /// Start expanding `spec` from a zero carry.
    #[must_use]
    pub fn new(spec: FlowSpec) -> Self {
        Self { spec, carry: 0.0 }
    }

    /// The flow's spec.
    #[must_use]
    pub fn spec(&self) -> &FlowSpec {
        &self.spec
    }

    /// Whether the flow can still emit at or after `tick`.
    #[must_use]
    pub fn active_at(&self, tick: u64) -> bool {
        tick < self.spec.end
    }

    /// Requests the cohort contributes at `tick`. The fractional part of
    /// the rate accumulates in the carry, so emitted totals conserve the
    /// integral of the rate curve instead of losing the remainder every
    /// tick. Deterministic — no randomness, so engine and legacy
    /// expansions agree request-for-request.
    pub fn emit(&mut self, tick: u64) -> u64 {
        self.carry += self.spec.rate_at(tick);
        let n = self.carry.floor() as u64;
        self.carry -= n as f64;
        n
    }

    /// The per-request legacy expansion of this tick — what the
    /// conservation property replays through the tick shim.
    pub fn emit_requests(&mut self, tick: u64) -> Vec<AtomId> {
        let n = self.emit(tick);
        vec![self.spec.atom; usize::try_from(n).unwrap_or(usize::MAX)]
    }
}

/// A set of flows expanded in lockstep — the workload side of the event
/// engine's mega-crowd scenario.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FlowSet {
    flows: Vec<FlowState>,
}

impl FlowSet {
    /// An empty set.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a flow.
    pub fn add(&mut self, spec: FlowSpec) {
        self.flows.push(FlowState::new(spec));
    }

    /// The flows.
    #[must_use]
    pub fn flows(&self) -> &[FlowState] {
        &self.flows
    }

    /// The earliest tick any flow starts, if the set is non-empty.
    #[must_use]
    pub fn first_start(&self) -> Option<u64> {
        self.flows.iter().map(|f| f.spec.start).min()
    }

    /// The tick after which no flow emits.
    #[must_use]
    pub fn last_end(&self) -> Option<u64> {
        self.flows.iter().map(|f| f.spec.end).max()
    }

    /// Every flow's batch for `tick`, in insertion order, zero-count
    /// batches omitted.
    pub fn emit(&mut self, tick: u64) -> Vec<(AtomId, u64)> {
        let mut out = Vec::new();
        for f in &mut self.flows {
            let n = f.emit(tick);
            if n > 0 {
                out.push((f.spec.atom, n));
            }
        }
        out
    }

    /// Total requests the whole set will emit over its lifetime.
    #[must_use]
    pub fn total_requests(&self) -> u64 {
        self.flows.iter().map(|f| f.spec.total_requests()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn atoms(n: u32) -> Vec<AtomId> {
        (0..n).map(AtomId).collect()
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = RequestGen::new(atoms(5), 1.0, 3.0, 9);
        let mut b = RequestGen::new(atoms(5), 1.0, 3.0, 9);
        for t in 0..50 {
            assert_eq!(a.tick(t), b.tick(t));
        }
    }

    #[test]
    fn popularity_is_zipf_skewed() {
        let mut g = RequestGen::new(atoms(10), 1.2, 10.0, 3);
        let mut counts: BTreeMap<AtomId, usize> = BTreeMap::new();
        for t in 0..1000 {
            for a in g.tick(t) {
                *counts.entry(a).or_default() += 1;
            }
        }
        let hot = counts.get(&AtomId(0)).copied().unwrap_or(0);
        let cold = counts.get(&AtomId(9)).copied().unwrap_or(0);
        assert!(hot > cold * 3, "hot {hot} vs cold {cold}");
    }

    #[test]
    fn flash_crowd_multiplies_rate_on_target() {
        let crowd = FlashCrowd { from: 100, to: 200, target: AtomId(2), multiplier: 10.0 };
        let mut g = RequestGen::new(atoms(5), 1.0, 4.0, 11).with_crowd(crowd);
        let mut steady = 0usize;
        let mut spike = 0usize;
        for t in 0..100 {
            steady += g.tick(t).len();
        }
        for t in 100..200 {
            spike += g.tick(t).len();
        }
        assert!(spike as f64 > steady as f64 * 5.0, "spike {spike} should dwarf steady {steady}");
    }

    #[test]
    #[should_panic(expected = "at least one atom")]
    fn empty_atom_set_rejected() {
        let _ = RequestGen::new(vec![], 1.0, 1.0, 0);
    }

    #[test]
    fn flow_carry_conserves_fractional_rates() {
        let spec =
            FlowSpec { atom: AtomId(1), start: 10, end: 110, rate: 2.7, ramp: 0, burst: None };
        let mut st = FlowState::new(spec);
        let total: u64 = (0..200).map(|t| st.emit(t)).sum();
        // 100 active ticks at 2.7/tick = 270 exactly; the carry loses
        // nothing to rounding.
        assert_eq!(total, 270);
        assert_eq!(spec.total_requests(), 270);
    }

    #[test]
    fn flow_ramp_rises_linearly_and_burst_multiplies() {
        let spec = FlowSpec {
            atom: AtomId(1),
            start: 0,
            end: 100,
            rate: 10.0,
            ramp: 10,
            burst: Some(FlowBurst { at: 50, len: 5, multiplier: 3.0 }),
        };
        assert_eq!(spec.rate_at(0), 1.0, "first ramp tick is 1/10 of the rate");
        assert_eq!(spec.rate_at(9), 10.0, "ramp completes at its last tick");
        assert_eq!(spec.rate_at(20), 10.0);
        assert_eq!(spec.rate_at(52), 30.0, "burst triples the rate");
        assert_eq!(spec.rate_at(55), 10.0, "burst window is half-open");
        assert_eq!(spec.rate_at(100), 0.0, "flow end is exclusive");
    }

    #[test]
    fn flow_set_emits_batches_in_insertion_order() {
        let mut set = FlowSet::new();
        set.add(FlowSpec { atom: AtomId(1), start: 0, end: 5, rate: 2.0, ramp: 0, burst: None });
        set.add(FlowSpec { atom: AtomId(2), start: 3, end: 8, rate: 1.0, ramp: 0, burst: None });
        assert_eq!(set.emit(0), vec![(AtomId(1), 2)]);
        assert_eq!(set.emit(3), vec![(AtomId(1), 2), (AtomId(2), 1)]);
        assert_eq!(set.emit(6), vec![(AtomId(2), 1)], "finished flows emit nothing");
        assert_eq!(set.first_start(), Some(0));
        assert_eq!(set.last_end(), Some(8));
        assert_eq!(set.total_requests(), 2 * 5 + 5);
    }

    #[test]
    fn emit_requests_matches_emit_counts() {
        let spec = FlowSpec {
            atom: AtomId(7),
            start: 0,
            end: 40,
            rate: 1.3,
            ramp: 7,
            burst: Some(FlowBurst { at: 20, len: 3, multiplier: 2.5 }),
        };
        let mut counted = FlowState::new(spec);
        let mut expanded = FlowState::new(spec);
        for t in 0..50 {
            let reqs = expanded.emit_requests(t);
            assert_eq!(reqs.len() as u64, counted.emit(t));
            assert!(reqs.iter().all(|&a| a == AtomId(7)));
        }
    }
}
