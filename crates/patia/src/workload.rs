//! Request workload: Zipf atom popularity with deterministic flash crowds.
//!
//! Production web traces are not available; the substitution is the
//! standard synthetic equivalent — Zipf-distributed object popularity
//! (web-cache literature's consistent finding) plus a flash-crowd window
//! during which the arrival rate on one hot atom multiplies. Everything is
//! seeded, so adaptive and non-adaptive runs see byte-identical workloads.

use crate::atom::AtomId;
use adm_rng::Pcg32;

/// A flash-crowd spike.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlashCrowd {
    /// First tick of the spike.
    pub from: u64,
    /// Last tick (inclusive).
    pub to: u64,
    /// The atom everyone suddenly wants.
    pub target: AtomId,
    /// Rate multiplier during the spike.
    pub multiplier: f64,
}

/// The request generator.
#[derive(Debug, Clone)]
pub struct RequestGen {
    atoms: Vec<AtomId>,
    /// Zipf CDF over `atoms`.
    cdf: Vec<f64>,
    /// Mean requests per tick in steady state.
    pub base_rate: f64,
    /// Optional flash crowd.
    pub crowd: Option<FlashCrowd>,
    rng: Pcg32,
}

impl RequestGen {
    /// A generator over `atoms` with Zipf exponent `s` and `base_rate`
    /// mean requests/tick, seeded deterministically.
    ///
    /// # Panics
    /// If `atoms` is empty.
    #[must_use]
    pub fn new(atoms: Vec<AtomId>, s: f64, base_rate: f64, seed: u64) -> Self {
        assert!(!atoms.is_empty(), "need at least one atom");
        let weights: Vec<f64> = (1..=atoms.len()).map(|k| 1.0 / (k as f64).powf(s)).collect();
        let total: f64 = weights.iter().sum();
        let mut cdf = Vec::with_capacity(weights.len());
        let mut acc = 0.0;
        for w in &weights {
            acc += w / total;
            cdf.push(acc);
        }
        Self { atoms, cdf, base_rate, crowd: None, rng: Pcg32::new(seed) }
    }

    /// Attach a flash crowd (builder style).
    #[must_use]
    pub fn with_crowd(mut self, crowd: FlashCrowd) -> Self {
        self.crowd = Some(crowd);
        self
    }

    fn in_crowd(&self, tick: u64) -> Option<FlashCrowd> {
        self.crowd.filter(|c| (c.from..=c.to).contains(&tick))
    }

    /// Requests arriving at `tick`. Counts are drawn from a deterministic
    /// Poisson-like process (rounded rate + Bernoulli remainder); during a
    /// flash crowd the extra arrivals all target the hot atom.
    pub fn tick(&mut self, tick: u64) -> Vec<AtomId> {
        let mut out = Vec::new();
        let emit_rate = |rate: f64,
                         rng: &mut Pcg32,
                         out: &mut Vec<AtomId>,
                         fixed: Option<AtomId>,
                         cdf: &[f64],
                         atoms: &[AtomId]| {
            let whole = rate.floor() as usize;
            let frac = rate - rate.floor();
            let n = whole + usize::from(rng.f64() < frac);
            for _ in 0..n {
                match fixed {
                    Some(a) => out.push(a),
                    None => {
                        let u = rng.f64();
                        let idx = cdf.partition_point(|&c| c < u).min(atoms.len() - 1);
                        out.push(atoms[idx]);
                    }
                }
            }
        };
        emit_rate(self.base_rate, &mut self.rng, &mut out, None, &self.cdf, &self.atoms);
        if let Some(c) = self.in_crowd(tick) {
            let extra = self.base_rate * (c.multiplier - 1.0);
            emit_rate(
                extra.max(0.0),
                &mut self.rng,
                &mut out,
                Some(c.target),
                &self.cdf,
                &self.atoms,
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn atoms(n: u32) -> Vec<AtomId> {
        (0..n).map(AtomId).collect()
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = RequestGen::new(atoms(5), 1.0, 3.0, 9);
        let mut b = RequestGen::new(atoms(5), 1.0, 3.0, 9);
        for t in 0..50 {
            assert_eq!(a.tick(t), b.tick(t));
        }
    }

    #[test]
    fn popularity_is_zipf_skewed() {
        let mut g = RequestGen::new(atoms(10), 1.2, 10.0, 3);
        let mut counts: BTreeMap<AtomId, usize> = BTreeMap::new();
        for t in 0..1000 {
            for a in g.tick(t) {
                *counts.entry(a).or_default() += 1;
            }
        }
        let hot = counts.get(&AtomId(0)).copied().unwrap_or(0);
        let cold = counts.get(&AtomId(9)).copied().unwrap_or(0);
        assert!(hot > cold * 3, "hot {hot} vs cold {cold}");
    }

    #[test]
    fn flash_crowd_multiplies_rate_on_target() {
        let crowd = FlashCrowd { from: 100, to: 200, target: AtomId(2), multiplier: 10.0 };
        let mut g = RequestGen::new(atoms(5), 1.0, 4.0, 11).with_crowd(crowd);
        let mut steady = 0usize;
        let mut spike = 0usize;
        for t in 0..100 {
            steady += g.tick(t).len();
        }
        for t in 100..200 {
            spike += g.tick(t).len();
        }
        assert!(spike as f64 > steady as f64 * 5.0, "spike {spike} should dwarf steady {steady}");
    }

    #[test]
    #[should_panic(expected = "at least one atom")]
    fn empty_atom_set_rejected() {
        let _ = RequestGen::new(vec![], 1.0, 1.0, 0);
    }
}
