//! Supervision: heartbeat failure detection, circuit breakers, and
//! restart probing over the node fleet.
//!
//! The paper's BEST "is parameterised with representations of the two
//! computing nodes to be compared" — but a representation can be stale:
//! a node may be dead, or alive yet unreachable behind a partition, and
//! [`best`](ubinet::select::best) cannot tell (it only skips dead or
//! flat devices). The [`Supervisor`] closes that gap:
//!
//! * a **failure detector** sends one heartbeat per tick from a vantage
//!   node to every peer ([`Network::heartbeat`]); a peer missing
//!   [`SuperviseConfig::suspect_after`] consecutive beats is *suspected*
//!   — deliberately unable to distinguish death from partition, which is
//!   the fundamental ambiguity of asynchronous failure detection;
//! * a per-peer **circuit breaker** opens on suspicion, so BEST never
//!   routes a switch or an evacuation toward a suspected-dead replica;
//!   first contact half-opens it (trial traffic allowed), and
//!   [`SuperviseConfig::probation`] further clean beats close it;
//! * a **restart policy** probes a suspected peer on the same capped
//!   exponential backoff the SWITCH retry machinery uses (2, 4, ... 32
//!   ticks) — bounded, wall-clock-free, and replayable from a seed.
//!
//! All counters saturate: a supervisor that has seen `u64::MAX`
//! suspicions reports `u64::MAX`, it does not wrap to zero.

use crate::server::MAX_BACKOFF_SHIFT;
use std::collections::BTreeMap;
use std::fmt;
use ubinet::net::Network;

/// Failure-detector and circuit-breaker tuning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SuperviseConfig {
    /// Consecutive missed heartbeats before a peer is suspected.
    pub suspect_after: u32,
    /// Clean beats a half-open circuit must see before it closes.
    pub probation: u32,
}

impl Default for SuperviseConfig {
    fn default() -> Self {
        Self { suspect_after: 3, probation: 2 }
    }
}

/// One peer's circuit-breaker state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CircuitState {
    /// Healthy: requests route normally.
    #[default]
    Closed,
    /// Suspected dead: no requests route here.
    Open,
    /// Back in contact, on probation: trial traffic allowed.
    HalfOpen,
}

impl CircuitState {
    /// Stable machine-readable numeric code: `Closed`=0, `Open`=1,
    /// `HalfOpen`=2. System-table encodings key on this, not on the
    /// human-facing [`Display`](fmt::Display) string, so a wording
    /// change cannot silently re-route a declarative rule.
    #[must_use]
    pub fn code(self) -> u8 {
        match self {
            Self::Closed => 0,
            Self::Open => 1,
            Self::HalfOpen => 2,
        }
    }

    /// Stable machine-readable symbolic code (`CLOSED` / `OPEN` /
    /// `HALF_OPEN`), pinned alongside [`code`](Self::code).
    #[must_use]
    pub fn code_str(self) -> &'static str {
        match self {
            Self::Closed => "CLOSED",
            Self::Open => "OPEN",
            Self::HalfOpen => "HALF_OPEN",
        }
    }
}

impl fmt::Display for CircuitState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Self::Closed => "closed",
            Self::Open => "open",
            Self::HalfOpen => "half-open",
        })
    }
}

/// One watched peer's detector state, frozen for introspection — the
/// row source behind `sys.supervision`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PeerSnapshot {
    /// The watched peer's name.
    pub peer: String,
    /// Consecutive heartbeats missed as of the last round.
    pub missed: u32,
    /// Consecutive clean beats seen while on probation.
    pub clean: u32,
    /// Whether the failure detector currently suspects the peer.
    pub suspected: bool,
    /// The peer's circuit-breaker state.
    pub circuit: CircuitState,
    /// Restart probes sent in the current incident (0 when healthy).
    pub restart_attempts: u32,
    /// Tick the next restart probe fires at (0 if never armed).
    pub next_probe: u64,
}

/// What the detector observed on one beat — the server turns these into
/// trace instants and registry counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SupervisionEvent {
    /// A peer crossed the missed-beat threshold.
    Suspect {
        /// The suspected peer.
        peer: String,
        /// Consecutive beats it has missed.
        missed: u32,
    },
    /// A suspected peer answered again.
    Revive {
        /// The revived peer.
        peer: String,
    },
    /// A peer's circuit opened: BEST stops routing to it.
    CircuitOpen {
        /// The isolated peer.
        peer: String,
    },
    /// An open circuit saw contact and half-opened.
    CircuitHalfOpen {
        /// The probationary peer.
        peer: String,
    },
    /// A half-open circuit finished probation and closed.
    CircuitClose {
        /// The readmitted peer.
        peer: String,
    },
    /// The restart policy probed a suspected peer.
    RestartProbe {
        /// The probed peer.
        peer: String,
        /// Which attempt this was (1-based).
        attempt: u32,
        /// When the next probe fires if this one finds nothing.
        next_at: u64,
    },
}

/// Per-peer detector bookkeeping.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct PeerHealth {
    missed: u32,
    clean: u32,
    suspected: bool,
    circuit: CircuitState,
    restart_attempts: u32,
    next_probe: u64,
}

/// The fleet supervisor: one [`PeerHealth`] per node, advanced one
/// heartbeat round per server tick.
#[derive(Debug, Clone)]
pub struct Supervisor {
    cfg: SuperviseConfig,
    peers: BTreeMap<String, PeerHealth>,
    suspects: u64,
    revivals: u64,
    opens: u64,
    closes: u64,
    probes: u64,
}

impl Supervisor {
    /// A supervisor watching `peers`.
    #[must_use]
    pub fn new(cfg: SuperviseConfig, peers: impl IntoIterator<Item = String>) -> Self {
        Self {
            cfg,
            peers: peers.into_iter().map(|p| (p, PeerHealth::default())).collect(),
            suspects: 0,
            revivals: 0,
            opens: 0,
            closes: 0,
            probes: 0,
        }
    }

    /// The vantage the beats are sent from: the alive device that can
    /// currently reach the most alive peers, ties broken by name order —
    /// a deterministic stand-in for "the healthiest observer". `None`
    /// when the whole fleet is dead.
    #[must_use]
    pub fn vantage(&self, net: &Network) -> Option<String> {
        let mut winner: Option<(&str, usize)> = None;
        for from in self.peers.keys() {
            if !net.device(from).is_some_and(|d| d.alive) {
                continue;
            }
            let reach = self.peers.keys().filter(|to| net.heartbeat(from, to)).count();
            if winner.is_none_or(|(_, w)| reach > w) {
                winner = Some((from, reach));
            }
        }
        winner.map(|(n, _)| n.to_owned())
    }

    /// One heartbeat round at tick `now`: probe every peer from the
    /// vantage and advance detector, circuit, and restart state. Returns
    /// the observable events in peer-name order.
    pub fn beat(&mut self, net: &Network, now: u64) -> Vec<SupervisionEvent> {
        let Some(vantage) = self.vantage(net) else { return Vec::new() };
        let mut events = Vec::new();
        for (peer, h) in &mut self.peers {
            if net.heartbeat(&vantage, peer) {
                h.missed = 0;
                if h.suspected {
                    h.suspected = false;
                    h.restart_attempts = 0;
                    self.revivals = self.revivals.saturating_add(1);
                    events.push(SupervisionEvent::Revive { peer: peer.clone() });
                }
                match h.circuit {
                    CircuitState::Open => {
                        h.circuit = CircuitState::HalfOpen;
                        h.clean = 1;
                        events.push(SupervisionEvent::CircuitHalfOpen { peer: peer.clone() });
                        if self.cfg.probation <= 1 {
                            h.circuit = CircuitState::Closed;
                            self.closes = self.closes.saturating_add(1);
                            events.push(SupervisionEvent::CircuitClose { peer: peer.clone() });
                        }
                    }
                    CircuitState::HalfOpen => {
                        h.clean = h.clean.saturating_add(1);
                        if h.clean >= self.cfg.probation {
                            h.circuit = CircuitState::Closed;
                            self.closes = self.closes.saturating_add(1);
                            events.push(SupervisionEvent::CircuitClose { peer: peer.clone() });
                        }
                    }
                    CircuitState::Closed => {}
                }
            } else {
                h.missed = h.missed.saturating_add(1);
                h.clean = 0;
                // A miss during probation reopens the circuit at once —
                // the peer has not earned trust back.
                if h.circuit == CircuitState::HalfOpen {
                    h.circuit = CircuitState::Open;
                    self.opens = self.opens.saturating_add(1);
                    events.push(SupervisionEvent::CircuitOpen { peer: peer.clone() });
                }
                if !h.suspected && h.missed >= self.cfg.suspect_after {
                    h.suspected = true;
                    self.suspects = self.suspects.saturating_add(1);
                    events.push(SupervisionEvent::Suspect { peer: peer.clone(), missed: h.missed });
                    if h.circuit == CircuitState::Closed {
                        h.circuit = CircuitState::Open;
                        self.opens = self.opens.saturating_add(1);
                        events.push(SupervisionEvent::CircuitOpen { peer: peer.clone() });
                    }
                    h.restart_attempts = 0;
                    h.next_probe = now + 2;
                }
                if h.suspected && now >= h.next_probe {
                    h.restart_attempts = h.restart_attempts.saturating_add(1);
                    h.next_probe = now + (1u64 << h.restart_attempts.min(MAX_BACKOFF_SHIFT));
                    self.probes = self.probes.saturating_add(1);
                    events.push(SupervisionEvent::RestartProbe {
                        peer: peer.clone(),
                        attempt: h.restart_attempts,
                        next_at: h.next_probe,
                    });
                }
            }
        }
        events
    }

    /// Whether a peer's circuit is fully open (half-open peers are on
    /// probation and *do* receive trial traffic).
    #[must_use]
    pub fn is_open(&self, peer: &str) -> bool {
        self.peers.get(peer).is_some_and(|h| h.circuit == CircuitState::Open)
    }

    /// A peer's circuit state (`Closed` for unknown peers: the
    /// supervisor has no grounds to block a node it never watched).
    #[must_use]
    pub fn circuit(&self, peer: &str) -> CircuitState {
        self.peers.get(peer).map(|h| h.circuit).unwrap_or_default()
    }

    /// Whether the detector currently suspects a peer.
    #[must_use]
    pub fn suspected(&self, peer: &str) -> bool {
        self.peers.get(peer).is_some_and(|h| h.suspected)
    }

    /// Freeze every watched peer's detector state, in peer-name order —
    /// the deterministic row source for `sys.supervision`. Unknown peers
    /// have no row, mirroring [`circuit`](Self::circuit) returning
    /// `Closed` for them: absence means "no grounds to block".
    #[must_use]
    pub fn peers(&self) -> Vec<PeerSnapshot> {
        self.peers
            .iter()
            .map(|(peer, h)| PeerSnapshot {
                peer: peer.clone(),
                missed: h.missed,
                clean: h.clean,
                suspected: h.suspected,
                circuit: h.circuit,
                restart_attempts: h.restart_attempts,
                next_probe: h.next_probe,
            })
            .collect()
    }

    /// Whether the supervisor is fully settled: no peer suspected, every
    /// circuit closed, no missed beats accumulating. In this state a
    /// heartbeat round over a healthy fleet is a no-op, which is one of
    /// the conditions licensing the event engine to skip ticks.
    #[must_use]
    pub fn all_clear(&self) -> bool {
        self.peers
            .values()
            .all(|h| !h.suspected && h.circuit == CircuitState::Closed && h.missed == 0)
    }

    /// Total suspicions raised since boot (saturating).
    #[must_use]
    pub fn suspects(&self) -> u64 {
        self.suspects
    }

    /// Total revivals observed since boot (saturating).
    #[must_use]
    pub fn revivals(&self) -> u64 {
        self.revivals
    }

    /// Total circuit openings since boot (saturating).
    #[must_use]
    pub fn opens(&self) -> u64 {
        self.opens
    }

    /// Total circuit closings since boot (saturating).
    #[must_use]
    pub fn closes(&self) -> u64 {
        self.closes
    }

    /// Total restart probes sent since boot (saturating).
    #[must_use]
    pub fn probes(&self) -> u64 {
        self.probes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ubinet::device::{Device, DeviceKind};
    use ubinet::link::{BandwidthProfile, Link, LinkKind};

    /// a — b — c, all servers, fully live.
    fn net() -> Network {
        let mut n = Network::new();
        for name in ["a", "b", "c"] {
            n.add_device(Device::new(name, DeviceKind::Server));
        }
        n.add_link(Link::new("a", "b", LinkKind::Wired, BandwidthProfile::Constant(100.0), 1));
        n.add_link(Link::new("b", "c", LinkKind::Wired, BandwidthProfile::Constant(100.0), 1));
        n
    }

    fn sup() -> Supervisor {
        Supervisor::new(SuperviseConfig::default(), ["a", "b", "c"].map(str::to_owned))
    }

    #[test]
    fn healthy_fleet_raises_no_events() {
        let net = net();
        let mut s = sup();
        for now in 1..=10 {
            assert!(s.beat(&net, now).is_empty());
        }
        assert!(!s.is_open("a") && !s.is_open("b") && !s.is_open("c"));
        assert_eq!((s.suspects(), s.opens()), (0, 0));
    }

    #[test]
    fn vantage_is_the_best_connected_alive_device_with_name_ties() {
        let mut net = net();
        let s = sup();
        assert_eq!(s.vantage(&net).as_deref(), Some("a"), "all reach all; name order breaks ties");
        net.device_mut("a").unwrap().alive = false;
        assert_eq!(s.vantage(&net).as_deref(), Some("b"), "dead devices cannot observe");
        for name in ["b", "c"] {
            net.device_mut(name).unwrap().alive = false;
        }
        assert_eq!(s.vantage(&net), None, "a dead fleet has no vantage");
    }

    #[test]
    fn dead_peer_is_suspected_after_k_missed_beats_and_circuit_opens() {
        let mut net = net();
        let mut s = sup();
        net.device_mut("c").unwrap().alive = false;
        let mut suspected_at = None;
        for now in 1..=5 {
            let events = s.beat(&net, now);
            if events
                .iter()
                .any(|e| matches!(e, SupervisionEvent::Suspect { peer, .. } if peer == "c"))
            {
                suspected_at = Some(now);
                assert!(
                    events.iter().any(
                        |e| matches!(e, SupervisionEvent::CircuitOpen { peer } if peer == "c")
                    ),
                    "suspicion must open the circuit in the same beat"
                );
                break;
            }
        }
        assert_eq!(suspected_at, Some(3), "suspect_after=3 means the third miss convicts");
        assert!(s.is_open("c"));
        assert!(s.suspected("c"));
        assert!(!s.is_open("b"), "healthy peers are untouched");
    }

    #[test]
    fn partition_is_indistinguishable_from_death() {
        let mut net = net();
        let mut s = sup();
        net.partition(&["c".to_owned()]);
        for now in 1..=3 {
            s.beat(&net, now);
        }
        assert!(s.suspected("c"), "an alive-but-unreachable peer is suspected all the same");
        assert!(s.is_open("c"));
    }

    #[test]
    fn contact_half_opens_and_probation_closes() {
        let mut net = net();
        let mut s = sup();
        net.device_mut("c").unwrap().alive = false;
        for now in 1..=4 {
            s.beat(&net, now);
        }
        assert!(s.is_open("c"));
        net.device_mut("c").unwrap().alive = true;
        let events = s.beat(&net, 5);
        assert!(events.contains(&SupervisionEvent::Revive { peer: "c".into() }));
        assert!(events.contains(&SupervisionEvent::CircuitHalfOpen { peer: "c".into() }));
        assert_eq!(s.circuit("c"), CircuitState::HalfOpen);
        assert!(!s.is_open("c"), "half-open admits trial traffic");
        let events = s.beat(&net, 6);
        assert!(events.contains(&SupervisionEvent::CircuitClose { peer: "c".into() }));
        assert_eq!(s.circuit("c"), CircuitState::Closed);
        assert_eq!((s.suspects(), s.revivals(), s.opens(), s.closes()), (1, 1, 1, 1));
    }

    #[test]
    fn miss_during_probation_reopens_the_circuit() {
        let mut net = net();
        let mut s = sup();
        net.device_mut("c").unwrap().alive = false;
        for now in 1..=4 {
            s.beat(&net, now);
        }
        net.device_mut("c").unwrap().alive = true;
        s.beat(&net, 5); // half-open
        net.device_mut("c").unwrap().alive = false;
        let events = s.beat(&net, 6);
        assert!(events.contains(&SupervisionEvent::CircuitOpen { peer: "c".into() }));
        assert_eq!(s.circuit("c"), CircuitState::Open);
        assert_eq!(s.opens(), 2, "probation was not survived");
    }

    #[test]
    fn restart_probes_back_off_exponentially_and_stop_on_revival() {
        let mut net = net();
        let mut s = sup();
        net.device_mut("c").unwrap().alive = false;
        let mut probe_ticks = Vec::new();
        for now in 1..=40 {
            for e in s.beat(&net, now) {
                if let SupervisionEvent::RestartProbe { attempt, .. } = e {
                    probe_ticks.push((now, attempt));
                }
            }
        }
        // Suspected at 3, first probe armed for 5; the gap after attempt
        // `n` is `2^min(n, 5)` ticks, so the windows grow 2, 4, 8, 16...
        assert_eq!(probe_ticks, vec![(5, 1), (7, 2), (11, 3), (19, 4), (35, 5)]);
        net.device_mut("c").unwrap().alive = true;
        s.beat(&net, 41);
        net.device_mut("c").unwrap().alive = false;
        let mut later = Vec::new();
        for now in 42..=50 {
            for e in s.beat(&net, now) {
                if let SupervisionEvent::RestartProbe { attempt, .. } = e {
                    later.push((now, attempt));
                }
            }
        }
        assert_eq!(
            later,
            vec![(46, 1), (48, 2)],
            "revival resets the backoff: the next incident probes from attempt 1"
        );
    }

    #[test]
    fn supervision_counters_saturate_at_u64_max() {
        let mut s = sup();
        s.suspects = u64::MAX;
        s.revivals = u64::MAX;
        s.opens = u64::MAX;
        s.closes = u64::MAX;
        s.probes = u64::MAX;
        let mut net = net();
        net.device_mut("c").unwrap().alive = false;
        for now in 1..=6 {
            s.beat(&net, now); // suspects, opens, probes all try to bump
        }
        net.device_mut("c").unwrap().alive = true;
        for now in 7..=9 {
            s.beat(&net, now); // revivals and closes try to bump
        }
        assert_eq!(s.suspects(), u64::MAX);
        assert_eq!(s.revivals(), u64::MAX);
        assert_eq!(s.opens(), u64::MAX);
        assert_eq!(s.closes(), u64::MAX);
        assert_eq!(s.probes(), u64::MAX);
    }

    #[test]
    fn unknown_peers_are_never_blocked() {
        let s = sup();
        assert!(!s.is_open("ghost"));
        assert_eq!(s.circuit("ghost"), CircuitState::Closed);
        assert!(!s.suspected("ghost"));
    }

    #[test]
    fn circuit_codes_are_pinned_and_independent_of_display() {
        // The numeric and symbolic codes are a wire format: changing them
        // invalidates goldens and declarative rules, so they are pinned
        // here, deliberately separate from the Display strings.
        assert_eq!(CircuitState::Closed.code(), 0);
        assert_eq!(CircuitState::Open.code(), 1);
        assert_eq!(CircuitState::HalfOpen.code(), 2);
        assert_eq!(CircuitState::Closed.code_str(), "CLOSED");
        assert_eq!(CircuitState::Open.code_str(), "OPEN");
        assert_eq!(CircuitState::HalfOpen.code_str(), "HALF_OPEN");
        assert_eq!(CircuitState::Closed.to_string(), "closed");
        assert_eq!(CircuitState::Open.to_string(), "open");
        assert_eq!(CircuitState::HalfOpen.to_string(), "half-open");
    }

    #[test]
    fn peer_snapshots_are_name_ordered_and_track_incidents() {
        let mut net = net();
        let mut s = sup();
        net.device_mut("c").unwrap().alive = false;
        for now in 1..=5 {
            s.beat(&net, now);
        }
        let snaps = s.peers();
        let names: Vec<&str> = snaps.iter().map(|p| p.peer.as_str()).collect();
        assert_eq!(names, ["a", "b", "c"], "rows come out in peer-name order");
        let c = &snaps[2];
        assert!(c.suspected);
        assert_eq!(c.circuit, CircuitState::Open);
        assert_eq!(c.missed, 5);
        assert_eq!(c.restart_attempts, 1, "the tick-5 probe fired");
        assert!(c.next_probe > 5);
        assert_eq!(snaps[0].circuit, CircuitState::Closed);
        assert!(!snaps[0].suspected);
    }
}
