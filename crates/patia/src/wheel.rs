//! A hierarchical timer wheel indexed on the virtual clock — the event
//! engine's core index.
//!
//! The legacy serving loop walks every node on every tick; the wheel
//! inverts that: work is *scheduled* at the tick it becomes due, and the
//! engine only touches ticks that hold events. Four levels of 64 slots
//! each cover a horizon of `64^4` (~16.7M) ticks; deadlines beyond the
//! horizon wait in an overflow list and re-enter the wheel when the top
//! level rotates. Schedule and cancel are O(1); advancing by a gap of
//! `g` ticks costs O(`g`/1 + entries touched) slot probes and is skipped
//! entirely while the wheel is empty, so quiescent stretches are free.
//!
//! Determinism contract: [`TimerWheel::pop_due`] returns due events
//! sorted by `(deadline, schedule order)`. Entries for one deadline can
//! transiently sit at different levels (one scheduled far ahead, one
//! close), so FIFO-per-deadline is restored by a stable sort on the
//! monotonic sequence number at fire time — the property the
//! `slow-props` suite pins against a `BinaryHeap` oracle.

use std::collections::{BTreeSet, VecDeque};

/// Slots per level (64 keeps slot indexing a 6-bit shift/mask).
const SLOTS: usize = 64;
/// Levels in the hierarchy; the horizon is `64^LEVELS` ticks.
const LEVELS: usize = 4;

/// The span (in ticks) one level covers: level 0 resolves single ticks
/// over `[now, now+64)`, level 1 the next `64^2`, and so on.
fn span(level: usize) -> u64 {
    1u64 << (6 * (level + 1))
}

/// The slot a deadline lands in at `level`.
fn slot_of(level: usize, deadline: u64) -> usize {
    ((deadline >> (6 * level)) & 63) as usize
}

/// A handle to a scheduled event, usable with [`TimerWheel::cancel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct TimerToken(u64);

/// Which region of the wheel an occupancy row describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WheelArea {
    /// Events scheduled at or before the clock, due on the next pop.
    Past,
    /// A (level, slot) cell of the hierarchy proper.
    Wheel,
    /// Deadlines beyond the wheel horizon.
    Overflow,
}

impl WheelArea {
    /// Stable machine-readable name for table encodings.
    #[must_use]
    pub fn code_str(self) -> &'static str {
        match self {
            Self::Past => "past",
            Self::Wheel => "wheel",
            Self::Overflow => "overflow",
        }
    }
}

/// Live-entry count for one populated region of the wheel — one
/// `sys.timers` row. `level`/`slot` are only meaningful for
/// [`WheelArea::Wheel`] rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WheelSlotOccupancy {
    /// The wheel region this row describes.
    pub area: WheelArea,
    /// Hierarchy level (0 = finest resolution).
    pub level: usize,
    /// Slot index within the level.
    pub slot: usize,
    /// Live (non-cancelled) entries waiting here.
    pub live: usize,
}

#[derive(Debug, Clone)]
struct Entry<T> {
    deadline: u64,
    seq: u64,
    payload: T,
}

/// The hierarchical timer wheel. `T` is the event payload.
#[derive(Debug, Clone)]
pub struct TimerWheel<T> {
    now: u64,
    next_seq: u64,
    levels: Vec<Vec<VecDeque<Entry<T>>>>,
    /// Deadlines beyond the wheel horizon, re-placed as the clock nears.
    overflow: Vec<Entry<T>>,
    /// Events scheduled at or before the current clock — due immediately.
    past: Vec<Entry<T>>,
    /// Sequence numbers of live (scheduled, not yet fired or cancelled)
    /// events.
    pending: BTreeSet<u64>,
    /// Tombstones for cancelled events still physically in a slot; pruned
    /// when the slot drains.
    cancelled: BTreeSet<u64>,
}

impl<T> Default for TimerWheel<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> TimerWheel<T> {
    /// An empty wheel at tick 0.
    #[must_use]
    pub fn new() -> Self {
        Self {
            now: 0,
            next_seq: 0,
            levels: (0..LEVELS).map(|_| (0..SLOTS).map(|_| VecDeque::new()).collect()).collect(),
            overflow: Vec::new(),
            past: Vec::new(),
            pending: BTreeSet::new(),
            cancelled: BTreeSet::new(),
        }
    }

    /// The wheel's current clock: the tick [`TimerWheel::pop_due`] last
    /// advanced to.
    #[must_use]
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Live scheduled events (cancelled ones excluded).
    #[must_use]
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// Whether no live events are scheduled.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Schedule `payload` to fire at `deadline`. A deadline at or before
    /// the current clock fires on the next [`TimerWheel::pop_due`] call.
    pub fn schedule(&mut self, deadline: u64, payload: T) -> TimerToken {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.pending.insert(seq);
        self.place(Entry { deadline, seq, payload });
        TimerToken(seq)
    }

    /// Cancel a scheduled event. Returns `false` if it already fired or
    /// was already cancelled.
    pub fn cancel(&mut self, token: TimerToken) -> bool {
        if self.pending.remove(&token.0) {
            self.cancelled.insert(token.0);
            true
        } else {
            false
        }
    }

    /// The earliest live deadline, if any — may be at or before the
    /// current clock when overdue events are waiting.
    #[must_use]
    pub fn next_deadline(&self) -> Option<u64> {
        let live = |e: &Entry<T>| !self.cancelled.contains(&e.seq);
        let mut best: Option<u64> = None;
        let mut fold = |d: u64| best = Some(best.map_or(d, |b: u64| b.min(d)));
        for e in self.past.iter().filter(|e| live(e)) {
            fold(e.deadline);
        }
        for level in &self.levels {
            for slot in level {
                for e in slot.iter().filter(|e| live(e)) {
                    fold(e.deadline);
                }
            }
        }
        for e in self.overflow.iter().filter(|e| live(e)) {
            fold(e.deadline);
        }
        best
    }

    /// Advance the clock to `to` and return every event due at or before
    /// it, sorted by `(deadline, schedule order)` — the FIFO-per-deadline
    /// guarantee. Cancelled events are dropped silently.
    pub fn pop_due(&mut self, to: u64) -> Vec<(u64, T)> {
        let mut due: Vec<Entry<T>> = std::mem::take(&mut self.past);
        while self.now < to {
            if self.pending.is_empty() {
                // Nothing live anywhere: the gap is free. Tombstoned
                // entries may remain in slots; they are pruned whenever
                // their slot next drains.
                self.now = to;
                break;
            }
            self.now += 1;
            let t = self.now;
            // Crossing a block boundary cascades the entering slot of the
            // next level down, outermost first so re-placed entries settle
            // in one pass.
            for level in (1..LEVELS).rev() {
                if t.is_multiple_of(span(level - 1)) {
                    let idx = slot_of(level, t);
                    let entries: Vec<Entry<T>> = self.levels[level][idx].drain(..).collect();
                    for e in entries {
                        self.place(e);
                    }
                }
            }
            if t.is_multiple_of(span(LEVELS - 1)) {
                let entries = std::mem::take(&mut self.overflow);
                for e in entries {
                    self.place(e);
                }
            }
            // An entry cascading at exactly its deadline re-places into
            // `past` (delta 0); it is due this very tick.
            due.append(&mut self.past);
            // Drain the level-0 slot for this tick. A slot holds one
            // deadline per rotation, so entries for future rotations are
            // kept in place.
            let slot = &mut self.levels[0][(t & 63) as usize];
            let mut keep = VecDeque::new();
            for e in slot.drain(..) {
                if e.deadline <= t {
                    due.push(e);
                } else {
                    keep.push_back(e);
                }
            }
            *slot = keep;
        }
        due.sort_by_key(|e| (e.deadline, e.seq));
        due.retain(|e| {
            if self.cancelled.remove(&e.seq) {
                false
            } else {
                self.pending.remove(&e.seq);
                true
            }
        });
        due.into_iter().map(|e| (e.deadline, e.payload)).collect()
    }

    /// Live-entry occupancy of every populated region of the wheel, in a
    /// fixed order: `past`, then each (level, slot) pair ascending, then
    /// `overflow` — the deterministic row source for `sys.timers`.
    /// Cancelled tombstones still sitting in slots are not counted, so
    /// the occupancies always sum to [`len`](Self::len).
    #[must_use]
    pub fn occupancy(&self) -> Vec<WheelSlotOccupancy> {
        let live = |e: &&Entry<T>| !self.cancelled.contains(&e.seq);
        let mut out = Vec::new();
        let past = self.past.iter().filter(live).count();
        if past > 0 {
            out.push(WheelSlotOccupancy { area: WheelArea::Past, level: 0, slot: 0, live: past });
        }
        for (level, slots) in self.levels.iter().enumerate() {
            for (slot, entries) in slots.iter().enumerate() {
                let n = entries.iter().filter(live).count();
                if n > 0 {
                    out.push(WheelSlotOccupancy { area: WheelArea::Wheel, level, slot, live: n });
                }
            }
        }
        let over = self.overflow.iter().filter(live).count();
        if over > 0 {
            out.push(WheelSlotOccupancy {
                area: WheelArea::Overflow,
                level: 0,
                slot: 0,
                live: over,
            });
        }
        out
    }

    /// Place an entry at the level whose span covers its remaining delta.
    fn place(&mut self, e: Entry<T>) {
        let delta = e.deadline.saturating_sub(self.now);
        if delta == 0 {
            self.past.push(e);
            return;
        }
        for level in 0..LEVELS {
            if delta < span(level) {
                let idx = slot_of(level, e.deadline);
                self.levels[level][idx].push_back(e);
                return;
            }
        }
        self.overflow.push(e);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_in_deadline_order() {
        let mut w = TimerWheel::new();
        w.schedule(5, "b");
        w.schedule(3, "a");
        w.schedule(9, "c");
        assert_eq!(w.next_deadline(), Some(3));
        assert_eq!(w.pop_due(6), vec![(3, "a"), (5, "b")]);
        assert_eq!(w.len(), 1);
        assert_eq!(w.pop_due(100), vec![(9, "c")]);
        assert!(w.is_empty());
    }

    #[test]
    fn same_deadline_fires_in_schedule_order() {
        let mut w = TimerWheel::new();
        // Schedule the same deadline from far away (level 1) and up close
        // (level 0): the far one was scheduled first and must fire first.
        w.schedule(100, 1u32);
        assert!(w.pop_due(90).is_empty());
        w.schedule(100, 2u32);
        w.schedule(100, 3u32);
        assert_eq!(w.pop_due(100), vec![(100, 1), (100, 2), (100, 3)]);
    }

    #[test]
    fn cancel_suppresses_an_event() {
        let mut w = TimerWheel::new();
        let a = w.schedule(4, "a");
        let b = w.schedule(4, "b");
        assert!(w.cancel(a));
        assert!(!w.cancel(a), "double cancel reports false");
        assert_eq!(w.len(), 1);
        assert_eq!(w.pop_due(10), vec![(4, "b")]);
        assert!(!w.cancel(b), "fired events cannot be cancelled");
    }

    #[test]
    fn far_deadlines_cascade_down_the_levels() {
        let mut w = TimerWheel::new();
        // One deadline per level span, plus one beyond the horizon.
        let deadlines = [63u64, 64, 4_095, 4_096, 262_143, 262_144, 16_777_216, 20_000_000];
        for (i, &d) in deadlines.iter().enumerate() {
            w.schedule(d, i);
        }
        let mut fired = Vec::new();
        let mut t = 0;
        while !w.is_empty() {
            t += 1_000_000;
            fired.extend(w.pop_due(t));
        }
        let want: Vec<(u64, usize)> = deadlines.iter().copied().zip(0..).collect();
        assert_eq!(fired, want, "every deadline fires exactly once, in order");
    }

    #[test]
    fn overdue_schedules_fire_on_the_next_pop() {
        let mut w = TimerWheel::new();
        w.schedule(10, "x");
        assert_eq!(w.pop_due(20), vec![(10, "x")]);
        w.schedule(5, "late");
        assert_eq!(w.next_deadline(), Some(5));
        assert_eq!(w.pop_due(20), vec![(5, "late")], "overdue events still fire");
    }

    #[test]
    fn empty_gaps_are_skipped_without_work() {
        let mut w: TimerWheel<u8> = TimerWheel::new();
        assert!(w.pop_due(u64::MAX / 2).is_empty());
        assert_eq!(w.now(), u64::MAX / 2);
        w.schedule(u64::MAX / 2 + 3, 7);
        assert_eq!(w.pop_due(u64::MAX / 2 + 4), vec![(u64::MAX / 2 + 3, 7)]);
    }

    #[test]
    fn occupancy_counts_live_entries_and_sums_to_len() {
        let mut w = TimerWheel::new();
        w.schedule(3, 0u8); // level 0
        w.schedule(3, 1u8); // same slot
        let t = w.schedule(3, 2u8);
        w.schedule(5_000, 3u8); // level 1
        w.schedule(20_000_000, 4u8); // overflow
        w.cancel(t);
        let occ = w.occupancy();
        let total: usize = occ.iter().map(|o| o.live).sum();
        assert_eq!(total, w.len(), "occupancy excludes tombstones");
        assert!(
            occ.iter()
                .any(|o| o.area == WheelArea::Wheel && o.level == 0 && o.slot == 3 && o.live == 2),
            "the cancelled entry must not be counted: {occ:?}"
        );
        assert!(occ.iter().any(|o| o.area == WheelArea::Overflow && o.live == 1));
        w.pop_due(10);
        let total: usize = w.occupancy().iter().map(|o| o.live).sum();
        assert_eq!(total, w.len(), "occupancy tracks fires too");
    }

    #[test]
    fn next_deadline_sees_every_level() {
        let mut w = TimerWheel::new();
        w.schedule(300_000, 0u8);
        assert_eq!(w.next_deadline(), Some(300_000));
        w.schedule(5_000, 1u8);
        assert_eq!(w.next_deadline(), Some(5_000));
        w.schedule(12, 2u8);
        assert_eq!(w.next_deadline(), Some(12));
        let t = w.schedule(3, 3u8);
        assert_eq!(w.next_deadline(), Some(3));
        w.cancel(t);
        assert_eq!(w.next_deadline(), Some(12), "cancelled events are invisible");
    }
}
