//! # patia — the adaptive webserver of Section 5.2
//!
//! > "Each unit of data is known in Patia as an Atom ... the smallest web
//! > object that cannot be subdivided. ... Webpage Atoms are distributed
//! > over the nodes in the system and some may be replicated. ... The
//! > request comes into the system; is received by a *service-agent
//! > component* who takes this request finds the appropriate Atom and
//! > serves it to the client."
//!
//! The crate reproduces Patia's two adaptivity levels and Table 2:
//!
//! * **inter-request** adaptivity — the version of an atom served is chosen
//!   by the monitored bandwidth to the client (constraint 595's
//!   `videohalf`/`videosmall` selection);
//! * **intra-request / fault-tolerance** adaptivity — when a node's
//!   processor utilisation trends past 90 %, the service agent `SWITCH`es:
//!   its data *and processing* state is captured and the agent migrates to
//!   an under-utilised node holding a replica (constraint 455, the flash
//!   crowd defence, spreading onto "a typing-pool's word processing
//!   computers");
//! * **intra-request streaming** adaptivity — [`stream`]: while media is
//!   being delivered, "the codec of the stream is chosen to best suit the
//!   bandwidth, and if the bandwidth should change during mid delivery,
//!   then a new less bandwidth hungry codec is swapped in" (also the
//!   paper's Kendra audio server, Section 6);
//! * [`constraint::paper_table2`] — the exact constraint rows 450/455/595.
//!
//! Modules: [`atom`] (atoms + replica placement), [`constraint`] (Table 2
//! logic), [`agent`] (service agents with migratable state), [`workload`]
//! (Zipf requests, flash crowds, and flow-level cohorts), [`server`] (the
//! serving/adaptation loop over a `ubinet` node fleet), [`supervise`]
//! (heartbeat failure detection, per-peer circuit breakers consulted by
//! BEST, and restart probing with capped exponential backoff), [`wheel`]
//! (the hierarchical timer wheel on the virtual clock), and [`engine`]
//! (the event-driven serving core; `PatiaServer::tick` is now a thin
//! compatibility shim over the same batched step).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod agent;
pub mod atom;
pub mod constraint;
pub mod engine;
pub mod rules;
pub mod server;
pub mod shard;
pub mod stream;
pub mod supervise;
pub mod wheel;
pub mod workload;

pub use agent::ServiceAgent;
pub use atom::{Atom, AtomId, AtomStore, AtomType};
pub use constraint::{paper_table2, AtomConstraint, ConstraintLogic};
pub use engine::{EngineEvent, EngineTotals, EventEngine};
pub use rules::{blocked_peers, supervision_schema, supervision_table, RuleStats};
pub use server::{FaultCounters, PatiaServer, ServerConfig, SwitchGate, SwitchPolicy, TickStats};
pub use shard::{cross_shard_plans, shard_of, ShardHandle};
pub use stream::{StreamCodec, StreamSession};
pub use supervise::{CircuitState, PeerSnapshot, SuperviseConfig, SupervisionEvent, Supervisor};
pub use wheel::{TimerToken, TimerWheel, WheelArea, WheelSlotOccupancy};
pub use workload::{FlashCrowd, FlowBurst, FlowSet, FlowSpec, FlowState, RequestGen};
