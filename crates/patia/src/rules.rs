//! Declarative switching rules: adaptation policy expressed as queries
//! over supervision state, instead of hard-coded Rust filters.
//!
//! The paper's thesis — and ROADMAP item 4's reading of DBOS — is that
//! the adaptation layer should be managed *as data*. This module closes
//! the loop for one real policy: the circuit-breaker filter every BEST
//! candidate list passes through. [`supervision_table`] renders the
//! [`Supervisor`]'s per-peer state as a relational table (the same rows
//! `sys.supervision` serves), and [`blocked_peers`] evaluates the rule
//!
//! ```sql
//! SELECT peer FROM sys.supervision WHERE circuit_code = 1  -- OPEN
//! ```
//!
//! with the `query` crate's own operators (scan → filter → project).
//! Peers the supervisor never watched have no row and therefore stay
//! admissible — exactly the `Closed`-for-unknown semantics of
//! [`Supervisor::circuit`]. The server's query-driven policy mode
//! ([`crate::server::SwitchPolicy::Query`]) substitutes this evaluation
//! for the hard-coded `is_open` filter at every BEST site; a
//! differential tier proves the two paths byte-identical across the
//! chaos and crash-replay seed matrices.
//!
//! Rule evaluation deliberately bills nothing to an armed [`obs`] hub:
//! the differential guarantee covers traces and metric digests, so the
//! policy engine accounts its work in a [`RuleStats`] ledger instead,
//! and the bench tier prices that ledger through the machine cost model
//! separately (`systab.rule.*`).

use crate::supervise::{CircuitState, Supervisor};
use datacomp::{ColumnType, Schema, Table, Value};
use query::basic::{Filter, Project};
use query::expr::{CmpOp, Pred};
use query::op::drain;
use query::source::TableScan;
use query::WorkCounter;
use std::collections::BTreeSet;

/// Column index of `peer` in [`supervision_schema`].
pub const COL_PEER: usize = 0;
/// Column index of `circuit_code` in [`supervision_schema`].
pub const COL_CIRCUIT_CODE: usize = 5;

/// The `sys.supervision` schema: one row per watched peer.
///
/// Columns: `peer` (name), `missed` / `clean` (heartbeat counters),
/// `suspected`, `circuit` (the stable
/// [`code_str`](CircuitState::code_str)), `circuit_code` (the stable
/// numeric [`code`](CircuitState::code) — what rules filter on),
/// `restart_attempts`, `next_probe`.
///
/// # Panics
/// Never: the column list is statically well-formed.
#[must_use]
pub fn supervision_schema() -> Schema {
    Schema::new(&[
        ("peer", ColumnType::Str),
        ("missed", ColumnType::Int),
        ("clean", ColumnType::Int),
        ("suspected", ColumnType::Bool),
        ("circuit", ColumnType::Str),
        ("circuit_code", ColumnType::Int),
        ("restart_attempts", ColumnType::Int),
        ("next_probe", ColumnType::Int),
    ])
    .expect("supervision schema is statically valid")
}

/// Freeze a supervisor into a [`supervision_schema`] table, rows in
/// peer-name order (the supervisor's own deterministic iteration
/// order). Unknown peers have no row: absence means admissible.
///
/// # Panics
/// Never: every row is built to the schema.
#[must_use]
pub fn supervision_table(sup: &Supervisor) -> Table {
    let mut t = Table::new(supervision_schema());
    for p in sup.peers() {
        t.insert(vec![
            Value::Str(p.peer),
            Value::Int(i64::from(p.missed)),
            Value::Int(i64::from(p.clean)),
            Value::Bool(p.suspected),
            Value::Str(p.circuit.code_str().to_owned()),
            Value::Int(i64::from(p.circuit.code())),
            Value::Int(i64::from(p.restart_attempts)),
            Value::Int(i64::try_from(p.next_probe).unwrap_or(i64::MAX)),
        ])
        .expect("supervision rows match their schema");
    }
    t
}

/// Cumulative ledger of query-driven rule evaluations, accounted
/// outside the observability hub so the query path cannot perturb the
/// traces and digests the differential tier pins.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RuleStats {
    /// Rule evaluations performed (one per BEST filter consult).
    pub evaluations: u64,
    /// Supervision rows scanned across all evaluations.
    pub rows_scanned: u64,
    /// Operator work units ([`query::op::Work::total_ops`]) spent.
    pub ops: u64,
}

impl RuleStats {
    /// Fold one evaluation's row count and operator work into the ledger.
    pub fn absorb(&mut self, rows: u64, ops: u64) {
        self.evaluations = self.evaluations.saturating_add(1);
        self.rows_scanned = self.rows_scanned.saturating_add(rows);
        self.ops = self.ops.saturating_add(ops);
    }
}

/// Evaluate the declarative circuit-breaker rule: scan the supervision
/// table, keep rows whose `circuit_code` equals [`CircuitState::Open`]'s
/// code, project the peer name. Returns the blocked set; `stats` absorbs
/// the rows scanned and operator work spent.
///
/// # Panics
/// Never in practice: the pipeline is stall-free (a `TableScan` never
/// returns `Pending`), so the drain budget cannot be exceeded.
#[must_use]
pub fn blocked_peers(sup: &Supervisor, stats: &mut RuleStats) -> BTreeSet<String> {
    let table = supervision_table(sup);
    let rows = table.len() as u64;
    let work = WorkCounter::new();
    let scan = TableScan::new(table, work.clone());
    let pred = Pred::Cmp {
        col: COL_CIRCUIT_CODE,
        op: CmpOp::Eq,
        value: Value::Int(i64::from(CircuitState::Open.code())),
    };
    let filter = Filter::new(Box::new(scan), pred, work.clone());
    let mut plan = Project::new(Box::new(filter), vec![COL_PEER], work.clone());
    let blocked: BTreeSet<String> = drain(&mut plan, 64)
        .into_iter()
        .filter_map(|row| row.first().and_then(|v| v.as_str().map(str::to_owned)))
        .collect();
    stats.absorb(rows, work.snapshot().total_ops());
    blocked
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::supervise::SuperviseConfig;
    use ubinet::device::{Device, DeviceKind};
    use ubinet::link::{BandwidthProfile, Link, LinkKind};
    use ubinet::net::Network;

    fn net() -> Network {
        let mut n = Network::new();
        for name in ["a", "b", "c"] {
            n.add_device(Device::new(name, DeviceKind::Server));
        }
        n.add_link(Link::new("a", "b", LinkKind::Wired, BandwidthProfile::Constant(100.0), 1));
        n.add_link(Link::new("b", "c", LinkKind::Wired, BandwidthProfile::Constant(100.0), 1));
        n
    }

    fn sup() -> Supervisor {
        Supervisor::new(SuperviseConfig::default(), ["a", "b", "c"].map(str::to_owned))
    }

    #[test]
    fn healthy_fleet_blocks_nobody() {
        let s = sup();
        let mut stats = RuleStats::default();
        assert!(blocked_peers(&s, &mut stats).is_empty());
        assert_eq!(stats.evaluations, 1);
        assert_eq!(stats.rows_scanned, 3);
        assert!(stats.ops > 0, "even an empty verdict scans the table");
    }

    #[test]
    fn query_verdict_matches_is_open_exactly() {
        let mut net = net();
        let mut s = sup();
        net.device_mut("c").unwrap().alive = false;
        for now in 1..=5 {
            s.beat(&net, now);
        }
        let mut stats = RuleStats::default();
        let blocked = blocked_peers(&s, &mut stats);
        for peer in ["a", "b", "c"] {
            assert_eq!(
                blocked.contains(peer),
                s.is_open(peer),
                "query and hard-coded verdicts must agree on {peer}"
            );
        }
        assert!(blocked.contains("c"));
        // Half-open admits trial traffic: revive c and check it unblocks.
        net.device_mut("c").unwrap().alive = true;
        s.beat(&net, 6);
        let blocked = blocked_peers(&s, &mut stats);
        assert!(!blocked.contains("c"), "half-open peers receive trial traffic");
        assert_eq!(stats.evaluations, 2);
    }

    #[test]
    fn unknown_peers_have_no_row_and_stay_admissible() {
        let s = sup();
        let table = supervision_table(&s);
        assert_eq!(table.len(), 3);
        let mut stats = RuleStats::default();
        assert!(!blocked_peers(&s, &mut stats).contains("ghost"));
    }

    #[test]
    fn supervision_table_pins_circuit_codes() {
        let mut net = net();
        let mut s = sup();
        net.device_mut("c").unwrap().alive = false;
        for now in 1..=3 {
            s.beat(&net, now);
        }
        let table = supervision_table(&s);
        let schema = table.schema();
        assert_eq!(schema.columns()[COL_PEER].name, "peer");
        assert_eq!(schema.columns()[COL_CIRCUIT_CODE].name, "circuit_code");
        let row_c = &table.rows()[2];
        assert_eq!(row_c[COL_PEER], Value::Str("c".into()));
        assert_eq!(row_c[4], Value::Str("OPEN".into()));
        assert_eq!(row_c[COL_CIRCUIT_CODE], Value::Int(1));
    }
}
