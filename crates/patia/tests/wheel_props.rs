//! Timer-wheel properties: under random schedule/cancel/advance
//! interleavings, the hierarchical wheel never loses, duplicates, or
//! reorders events relative to a naive sorted-list oracle — including
//! the FIFO-per-deadline guarantee the event engine's determinism rests
//! on.
//!
//! Randomised suites are opt-in: `cargo test -p patia --features slow-props`.
#![cfg(feature = "slow-props")]

use adm_rng::{run_cases, Pcg32};
use patia::wheel::{TimerToken, TimerWheel};

/// The naive reference: a flat list of live `(deadline, seq, id)`
/// entries. Popping sorts by `(deadline, seq)` — exactly the contract
/// `TimerWheel::pop_due` promises.
#[derive(Default)]
struct Oracle {
    live: Vec<(u64, u64, u32)>,
    next_seq: u64,
}

impl Oracle {
    fn schedule(&mut self, deadline: u64, id: u32) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.live.push((deadline, seq, id));
        seq
    }

    fn cancel(&mut self, seq: u64) -> bool {
        let before = self.live.len();
        self.live.retain(|&(_, s, _)| s != seq);
        self.live.len() != before
    }

    fn pop_due(&mut self, to: u64) -> Vec<(u64, u32)> {
        let mut due: Vec<(u64, u64, u32)> =
            self.live.iter().copied().filter(|&(d, _, _)| d <= to).collect();
        self.live.retain(|&(d, _, _)| d > to);
        due.sort_by_key(|&(d, s, _)| (d, s));
        due.into_iter().map(|(d, _, id)| (d, id)).collect()
    }
}

/// Drive both structures through one random op sequence and assert every
/// pop agrees. Deadlines are drawn around the moving clock at three
/// scales (near, mid, far/overflow) so cascades across every wheel level
/// are exercised.
fn drive(rng: &mut Pcg32, ops: usize) {
    let mut wheel: TimerWheel<u32> = TimerWheel::new();
    let mut oracle = Oracle::default();
    let mut tokens: Vec<(TimerToken, u64)> = Vec::new();
    let mut now = 0u64;
    let mut next_id = 0u32;
    for _ in 0..ops {
        match rng.below(10) {
            // Schedule (weighted heaviest so the wheel stays populated).
            0..=5 => {
                let horizon = match rng.below(3) {
                    0 => 64,
                    1 => 5_000,
                    _ => 20_000_000, // beyond the 64^4 horizon → overflow list
                };
                let deadline = now + rng.below(horizon);
                let id = next_id;
                next_id += 1;
                let tok = wheel.schedule(deadline, id);
                let seq = oracle.schedule(deadline, id);
                tokens.push((tok, seq));
            }
            6 => {
                if !tokens.is_empty() {
                    let (tok, seq) = tokens[rng.index(tokens.len())];
                    assert_eq!(wheel.cancel(tok), oracle.cancel(seq), "cancel verdicts agree");
                }
            }
            _ => {
                let step = match rng.below(3) {
                    0 => 1 + rng.below(8),
                    1 => 1 + rng.below(500),
                    _ => 1 + rng.below(300_000),
                };
                now += step;
                assert_eq!(wheel.pop_due(now), oracle.pop_due(now), "due sets agree at {now}");
                assert_eq!(wheel.len(), oracle.live.len(), "live counts agree at {now}");
            }
        }
    }
    // Drain everything left: nothing may be lost past the horizon.
    now += 40_000_000;
    assert_eq!(wheel.pop_due(now), oracle.pop_due(now), "final drain agrees");
    assert!(wheel.is_empty());
}

/// The main oracle property: random interleavings of schedule, cancel,
/// and advance never lose, duplicate, or reorder events.
#[test]
fn wheel_matches_naive_oracle() {
    run_cases(0x11ee1, 24, |rng| {
        let ops = 200 + rng.index(600);
        drive(rng, ops);
    });
}

/// Same-deadline bursts scheduled from different distances (so they sit
/// at different wheel levels before firing) still come out in schedule
/// order.
#[test]
fn same_deadline_fifo_across_levels() {
    run_cases(0xf1f0, 24, |rng| {
        let mut wheel: TimerWheel<u32> = TimerWheel::new();
        let target = 6_000 + rng.below(4_000);
        let mut scheduled = Vec::new();
        let mut now = 0u64;
        let mut id = 0u32;
        // Walk the clock toward the target, scheduling events for the
        // same deadline at every stop; proximity determines their level.
        while now + 10 < target {
            wheel.schedule(target, id);
            scheduled.push((target, id));
            id += 1;
            now += 1 + rng.below((target - now) / 2 + 1);
            assert!(wheel.pop_due(now).is_empty(), "nothing due before the target");
        }
        assert_eq!(wheel.pop_due(target + 1), scheduled, "FIFO within the deadline");
    });
}
