//! Patia properties: request conservation (everything that arrives is
//! eventually served, adaptive or not), determinism under a fixed seed, and
//! stream-session invariants under arbitrary bandwidth walks.
//!
//! Randomised suites are opt-in: `cargo test -p patia --features slow-props`.
#![cfg(feature = "slow-props")]

use adm_rng::run_cases;
use patia::atom::AtomId;
use patia::server::{PatiaServer, ServerConfig};
use patia::stream::{default_ladder, StreamSession, TickOutcome};
use patia::workload::{FlashCrowd, RequestGen};
use ubinet::link::BandwidthProfile;

fn run_server(adaptive: bool, seed: u64, multiplier: f64, ticks: u64) -> (usize, usize, Vec<u64>) {
    let (net, atoms, constraints) = ServerConfig::paper_fleet();
    let mut s =
        PatiaServer::new(net, atoms, constraints, ServerConfig { adaptive, work_per_request: 400 });
    let crowd = FlashCrowd { from: 40, to: ticks / 3, target: AtomId(123), multiplier };
    let mut gen = RequestGen::new(vec![AtomId(123), AtomId(153)], 1.1, 3.0, seed).with_crowd(crowd);
    let mut arrived = 0;
    let mut lat = Vec::new();
    for t in 1..=ticks {
        // Stop the workload early so queues can drain.
        let reqs = if t <= ticks / 2 { gen.tick(t) } else { Vec::new() };
        arrived += reqs.len();
        lat.extend(s.tick(&reqs, 64.0).latencies);
    }
    (arrived, lat.len(), lat)
}

/// Conservation: with a long-enough drain, served == arrived, with or
/// without adaptation, for any seed and crowd size.
#[test]
fn requests_are_conserved() {
    run_cases(0x9a1, 12, |rng| {
        let seed = rng.below(1000);
        let multiplier = 1.0 + rng.f64() * 9.0;
        let adaptive = rng.chance(0.5);
        let (arrived, served, _) = run_server(adaptive, seed, multiplier, 4000);
        assert_eq!(arrived, served, "adaptive={adaptive}");
    });
}

/// Determinism: identical seeds produce identical latency traces.
#[test]
fn runs_are_deterministic() {
    run_cases(0x9a2, 12, |rng| {
        let seed = rng.below(1000);
        let a = run_server(true, seed, 8.0, 800);
        let b = run_server(true, seed, 8.0, 800);
        assert_eq!(a, b);
    });
}

/// Stream sessions always finish on any bounded-positive bandwidth walk
/// when adaptive (the lowest rung is below the walk's floor), and media
/// position never exceeds the duration.
#[test]
fn adaptive_streams_always_finish() {
    run_cases(0x9a3, 32, |rng| {
        let seed = rng.next_u64();
        let lo = 26.0 + rng.f64() * 34.0;
        let profile = BandwidthProfile::Walk { lo, hi: lo + 300.0, seed };
        let mut s = StreamSession::new(default_ladder(), 120, true);
        let mut ticks = 0u64;
        loop {
            ticks += 1;
            assert!(ticks < 50_000, "stream livelocked");
            match s.tick(profile.at(ticks)) {
                TickOutcome::Finished => break,
                _ => {
                    assert!(s.position() <= 120);
                }
            }
        }
        assert_eq!(s.position(), 120);
    });
}
