//! Conservation properties for flow expansion (`slow-props` tier).
//!
//! A flow is a lazily-expanded cohort: the engine must neither invent nor
//! lose requests relative to the per-request legacy expansion
//! ([`FlowState::emit_requests`]), across ramp edges, burst windows, and
//! fractional-rate carry — and with an admission cap armed, every request
//! must be accounted admitted or shed.

#![cfg(feature = "slow-props")]

use adm_rng::{run_cases, Pcg32};
use patia::{AtomId, EventEngine, FlowBurst, FlowSpec, FlowState, PatiaServer, ServerConfig};

fn random_spec(rng: &mut Pcg32) -> FlowSpec {
    let start = rng.range_u32(1, 50) as u64;
    let len = rng.range_u32(1, 120) as u64;
    let ramp = if rng.chance(0.5) { rng.range_u32(1, 40) as u64 } else { 0 };
    let burst = rng.chance(0.5).then(|| FlowBurst {
        at: start + rng.range_u32(0, len as u32) as u64,
        len: rng.range_u32(1, 30) as u64,
        multiplier: 1.0 + rng.f64() * 4.0,
    });
    FlowSpec { atom: AtomId(123), start, end: start + len, rate: rng.f64() * 12.0, ramp, burst }
}

fn fleet_engine() -> EventEngine {
    let (net, atoms, constraints) = ServerConfig::paper_fleet();
    EventEngine::new(PatiaServer::new(
        net,
        atoms,
        constraints,
        ServerConfig { adaptive: true, work_per_request: 1 },
    ))
}

/// Engine flow totals equal the per-request legacy expansion, request for
/// request, across ramp and burst edges.
#[test]
fn flow_totals_match_per_request_legacy_expansion() {
    run_cases(0xf10c, 32, |rng| {
        let n_flows = rng.range_u32(1, 4) as usize;
        let specs: Vec<FlowSpec> = (0..n_flows).map(|_| random_spec(rng)).collect();
        let horizon = specs.iter().map(|s| s.end).max().unwrap() + 1;

        // Per-request legacy expansion: one AtomId per request, tick by tick.
        let mut states: Vec<FlowState> = specs.iter().map(|&s| FlowState::new(s)).collect();
        let mut legacy_total = 0u64;
        for t in 0..horizon {
            for st in &mut states {
                legacy_total += st.emit_requests(t).len() as u64;
            }
        }
        let declared: u64 = specs.iter().map(FlowSpec::total_requests).sum();
        assert_eq!(
            legacy_total, declared,
            "FlowSpec::total_requests must agree with per-tick expansion"
        );

        let mut engine = fleet_engine();
        for &s in &specs {
            engine.add_flow(s);
        }
        let totals = engine.run_to(horizon + 100_000, 500.0);
        assert_eq!(
            totals.arrivals, legacy_total,
            "engine admissions must equal the legacy per-request count"
        );
        assert_eq!(totals.shed, 0, "no cap, nothing shed");
        assert_eq!(
            totals.completed + engine.server().queued_requests() + totals.dropped,
            totals.arrivals,
            "every admitted request is completed, queued, or dropped"
        );
    });
}

/// With an admission cap armed, admitted + shed still equals the legacy
/// count: shedding redirects requests, it never loses them.
#[test]
fn shed_cap_conserves_requests() {
    run_cases(0x51ed, 32, |rng| {
        let spec = random_spec(rng);
        let declared = spec.total_requests();
        let cap = rng.range_u32(0, declared.min(u64::from(u32::MAX)) as u32 + 1) as u64;
        let mut engine = fleet_engine();
        engine.add_flow(spec);
        engine.set_shed_cap(cap);
        let totals = engine.run_to(spec.end + 100_000, 500.0);
        assert_eq!(
            totals.arrivals + totals.shed,
            declared,
            "admitted + shed must equal the uncapped count"
        );
        assert_eq!(totals.arrivals, declared.min(cap), "the cap admits exactly min(total, cap)");
    });
}
