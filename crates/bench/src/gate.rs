//! Benchmark-trajectory gate: a stable benchmark snapshot, its JSON
//! form, and the tolerance compare CI runs against the committed
//! baseline (`BENCH_adm.json`).
//!
//! The snapshot is a *flat* map of dotted metric names to integers —
//! virtual-cycle totals, per-layer attribution from [`obs::Profile`],
//! and span/event counts. Flat on purpose: the JSON stays trivially
//! diffable, and the in-tree parser (the workspace builds with zero
//! external dependencies, so no serde) only has to understand one shape.
//!
//! # Tolerance policy
//!
//! A metric's *name* declares how it is gated:
//!
//! * any key with a `cycles` segment (`flash_crowd.cycles.clock`,
//!   `table1.cycles.go`) is a virtual-cycle total: the current value may
//!   drift from the baseline by at most
//!   [`Tolerance::cycle_pct`] percent or [`Tolerance::cycle_floor`]
//!   cycles, whichever allowance is larger. The floor keeps tiny
//!   baselines (a 73-cycle RPC) from failing on a one-cycle wobble; the
//!   percentage catches hot-path regressions on the big totals.
//! * any key with a `wall` segment (`megacrowd.wall.micros`) is real
//!   wall-clock time — machine-dependent by nature, so it is gated only
//!   against order-of-magnitude blowups: the allowance is
//!   `baseline × (wall_factor − 1) + wall_floor_micros`. A faster
//!   machine always passes; a run `wall_factor`× slower than the
//!   committed baseline (beyond the absolute floor) fails, which is what
//!   catches the event engine degenerating back into a per-tick walk.
//! * every other key (the `counts.*` families) is structural — event,
//!   span, and switch counts are exact replays of a seeded scenario, so
//!   they must match exactly.
//! * a key present on one side only always fails: silently dropping a
//!   scenario from the bench would otherwise read as "no regression".
//!
//! Intentional changes re-baseline with `cargo xtask update-goldens`
//! (which rewrites `BENCH_adm.json` alongside the trace goldens).

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A flat, stably-ordered benchmark snapshot: dotted metric name →
/// integer value.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BenchSnapshot {
    values: BTreeMap<String, u64>,
}

impl BenchSnapshot {
    /// An empty snapshot.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one metric. Keys are dotted identifiers; quotes and
    /// backslashes are rejected so the JSON writer never needs escaping.
    ///
    /// # Panics
    /// Panics if `key` contains `"` or `\` or a newline.
    pub fn set(&mut self, key: impl Into<String>, value: u64) {
        let key = key.into();
        assert!(
            !key.contains(['"', '\\', '\n']),
            "snapshot keys are plain dotted identifiers: {key:?}"
        );
        self.values.insert(key, value);
    }

    /// The recorded metrics, name-sorted.
    #[must_use]
    pub fn values(&self) -> &BTreeMap<String, u64> {
        &self.values
    }

    /// Render as JSON: one sorted `"key": value` pair per line, so the
    /// committed baseline diffs line-by-line in review.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        for (i, (k, v)) in self.values.iter().enumerate() {
            let sep = if i + 1 == self.values.len() { "" } else { "," };
            let _ = writeln!(out, "  \"{k}\": {v}{sep}");
        }
        out.push_str("}\n");
        out
    }

    /// Parse the JSON form written by [`BenchSnapshot::to_json`].
    ///
    /// # Errors
    /// Returns a description of the first malformed line. The parser is
    /// deliberately strict — the file is machine-written, so any surprise
    /// shape means the baseline was hand-edited or corrupted.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let mut snap = Self::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line == "{" || line == "}" {
                continue;
            }
            let line = line.strip_suffix(',').unwrap_or(line);
            let rest = line.strip_prefix('"').ok_or_else(|| {
                format!("line {}: expected \"key\": value, got {line:?}", lineno + 1)
            })?;
            let (key, rest) = rest
                .split_once('"')
                .ok_or_else(|| format!("line {}: unterminated key in {line:?}", lineno + 1))?;
            let value = rest
                .strip_prefix(':')
                .map(str::trim)
                .ok_or_else(|| format!("line {}: missing ':' in {line:?}", lineno + 1))?;
            let value: u64 = value
                .parse()
                .map_err(|e| format!("line {}: bad integer {value:?} ({e})", lineno + 1))?;
            if snap.values.insert(key.to_owned(), value).is_some() {
                return Err(format!("line {}: duplicate key {key:?}", lineno + 1));
            }
        }
        if snap.values.is_empty() {
            return Err("no metrics found".to_owned());
        }
        Ok(snap)
    }
}

/// The gate's explicit tolerances — see the module docs for the policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tolerance {
    /// Maximum relative drift, in percent, for `cycles` metrics.
    pub cycle_pct: f64,
    /// Minimum absolute drift allowance, in cycles, for `cycles` metrics.
    pub cycle_floor: u64,
    /// Blowup factor for `wall` metrics: a run this many times slower
    /// than the baseline fails.
    pub wall_factor: u64,
    /// Absolute allowance for `wall` metrics, in the metric's own unit
    /// (microseconds) — keeps tiny baselines from failing on scheduler
    /// noise.
    pub wall_floor_micros: u64,
}

impl Default for Tolerance {
    fn default() -> Self {
        Self { cycle_pct: 2.0, cycle_floor: 64, wall_factor: 8, wall_floor_micros: 1_000_000 }
    }
}

impl Tolerance {
    /// The drift allowance for `key` at `baseline`: cycle metrics get
    /// `max(floor, pct% of baseline)`, wall metrics get
    /// `baseline × (factor − 1) + floor`, everything else gets zero.
    #[must_use]
    pub fn allowance(&self, key: &str, baseline: u64) -> u64 {
        if key.split('.').any(|seg| seg == "cycles") {
            #[allow(clippy::cast_sign_loss, clippy::cast_possible_truncation)]
            let pct = (baseline as f64 * self.cycle_pct / 100.0).floor() as u64;
            pct.max(self.cycle_floor)
        } else if key.split('.').any(|seg| seg == "wall") {
            baseline
                .saturating_mul(self.wall_factor.saturating_sub(1))
                .saturating_add(self.wall_floor_micros)
        } else {
            0
        }
    }
}

/// Compare `current` against `baseline` under `tol`. Returns the list of
/// violations — empty means the gate passes.
#[must_use]
pub fn compare(baseline: &BenchSnapshot, current: &BenchSnapshot, tol: &Tolerance) -> Vec<String> {
    let mut violations = Vec::new();
    for (key, &want) in baseline.values() {
        match current.values().get(key) {
            None => {
                violations.push(format!("{key}: present in baseline but missing from this run"));
            }
            Some(&got) => {
                let allowed = tol.allowance(key, want);
                let drift = got.abs_diff(want);
                if drift > allowed {
                    violations.push(format!(
                        "{key}: {got} vs baseline {want} (drift {drift} > allowed {allowed})"
                    ));
                }
            }
        }
    }
    for key in current.values().keys() {
        if !baseline.values().contains_key(key) {
            violations.push(format!("{key}: present in this run but missing from baseline"));
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(pairs: &[(&str, u64)]) -> BenchSnapshot {
        let mut s = BenchSnapshot::new();
        for (k, v) in pairs {
            s.set(*k, *v);
        }
        s
    }

    #[test]
    fn json_round_trips_and_is_sorted() {
        let s = snap(&[("b.counts.events", 2), ("a.cycles.clock", 100)]);
        let json = s.to_json();
        assert_eq!(
            json, "{\n  \"a.cycles.clock\": 100,\n  \"b.counts.events\": 2\n}\n",
            "sorted, one pair per line"
        );
        assert_eq!(BenchSnapshot::from_json(&json).expect("round trip"), s);
    }

    #[test]
    fn parser_rejects_malformed_baselines() {
        assert!(BenchSnapshot::from_json("{}").is_err(), "empty snapshot is suspicious");
        assert!(BenchSnapshot::from_json("{\n  nonsense\n}").is_err());
        assert!(BenchSnapshot::from_json("{\n  \"k\": 1.5\n}").is_err(), "integers only");
        let dup = "{\n  \"k\": 1,\n  \"k\": 2\n}";
        assert!(BenchSnapshot::from_json(dup).unwrap_err().contains("duplicate"));
    }

    #[test]
    fn cycle_keys_get_relative_tolerance_with_floor() {
        let tol = Tolerance::default();
        assert_eq!(tol.allowance("flash_crowd.cycles.clock", 1_000_000), 20_000, "2%");
        assert_eq!(tol.allowance("table1.cycles.go", 73), 64, "floor beats 2% of 73");
        assert_eq!(tol.allowance("flash_crowd.counts.events", 1_000_000), 0, "counts are exact");
        assert_eq!(tol.allowance("recycles.total", 1_000_000), 0, "whole segment match only");
    }

    #[test]
    fn wall_keys_gate_only_on_blowups() {
        let tol = Tolerance::default();
        assert_eq!(
            tol.allowance("megacrowd.wall.micros", 2_000_000),
            15_000_000,
            "baseline × 7 + 1s floor"
        );
        let base = snap(&[("m.wall.micros", 2_000_000)]);
        let faster = snap(&[("m.wall.micros", 100)]);
        assert!(compare(&base, &faster, &tol).is_empty(), "a faster machine always passes");
        let slower = snap(&[("m.wall.micros", 12_000_000)]);
        assert!(compare(&base, &slower, &tol).is_empty(), "6x slower is machine variance");
        let blowup = snap(&[("m.wall.micros", 30_000_000)]);
        assert_eq!(compare(&base, &blowup, &tol).len(), 1, "15x slower is a regression");
        assert_eq!(tol.allowance("firewall.total", 100), 0, "whole segment match only");
    }

    #[test]
    fn compare_passes_within_tolerance_and_fails_beyond() {
        let tol = Tolerance::default();
        let base = snap(&[("s.cycles.clock", 100_000), ("s.counts.events", 400)]);
        let ok = snap(&[("s.cycles.clock", 101_500), ("s.counts.events", 400)]);
        assert!(compare(&base, &ok, &tol).is_empty(), "1.5% cycle drift passes");
        let slow = snap(&[("s.cycles.clock", 103_000), ("s.counts.events", 400)]);
        let v = compare(&base, &slow, &tol);
        assert_eq!(v.len(), 1, "3% cycle drift fails: {v:?}");
        assert!(v[0].contains("s.cycles.clock"));
        let restructured = snap(&[("s.cycles.clock", 100_000), ("s.counts.events", 401)]);
        assert_eq!(compare(&base, &restructured, &tol).len(), 1, "counts are exact");
    }

    #[test]
    fn missing_and_extra_keys_always_fail() {
        let tol = Tolerance::default();
        let base = snap(&[("a.cycles.clock", 10), ("b.counts.events", 1)]);
        let cur = snap(&[("a.cycles.clock", 10), ("c.counts.events", 1)]);
        let v = compare(&base, &cur, &tol);
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v
            .iter()
            .any(|x| x.contains("b.counts.events") && x.contains("missing from this run")));
        assert!(v
            .iter()
            .any(|x| x.contains("c.counts.events") && x.contains("missing from baseline")));
    }
}
