//! Regenerate **Table 1** (relative RPC performance) and the Go! memory
//! claim. Paper values are printed beside measured values; the shape —
//! strict ordering Go! < L4 < Mach < BSD with order-of-magnitude gaps —
//! is asserted.

use gokernel::kernels::all_kernels;
use gokernel::table1::{
    memory_comparison, render_table1, render_verification_row, table1_rows, verification_cost_row,
};
use machine::CostModel;

fn main() {
    let model = CostModel::pentium();
    let rows = table1_rows(&model, 5);
    print!("{}", render_table1(&rows));
    print!("{}", render_verification_row(&verification_cost_row(&model)));

    // Assert the reproduced shape.
    let measured: Vec<u64> = rows.iter().map(|r| r.measured_cycles).collect();
    assert!(measured[0] > measured[1], "BSD > Mach");
    assert!(measured[1] > measured[2], "Mach > L4");
    assert!(measured[2] > measured[3], "L4 > Go!");
    assert!(measured[0] / measured[3] > 400, "BSD/Go! gap is orders of magnitude");
    println!("\nshape check: BSD > Mach2.5 > L4 > Go!  (ratios to paper all within 0.5–1.5x)");

    println!("\nPer-primitive anatomy of one RPC:");
    for k in &mut all_kernels(&model) {
        let bd = k.breakdown(2);
        let total: u64 = bd.iter().map(|(_, v)| v).sum();
        let mut top = bd.clone();
        top.sort_by_key(|e| std::cmp::Reverse(e.1));
        let head: Vec<String> = top.iter().take(3).map(|(l, v)| format!("{l} {v}")).collect();
        println!("  {:<12} {total:>7} cycles  (top: {})", k.kind().name(), head.join(", "));
    }

    println!("\nMemory per interface (the \"32 bytes\" claim), sweeping system size:");
    println!("  components x ifaces | Go! bytes | paged bytes | improvement");
    for (c, i) in [(16, 2), (64, 4), (256, 4), (1024, 8)] {
        let m = memory_comparison(c, i);
        println!(
            "  {c:>10} x {i:<6} | {:>9} | {:>11} | {:>10.0}x",
            m.go_bytes, m.paged_bytes, m.improvement
        );
        assert!(m.improvement > 50.0, "must stay ~two orders of magnitude");
    }
}
