//! The benchmark-trajectory bin: replay the paper's workloads with the
//! observability hub armed, fold each trace through the
//! cycle-attribution profiler, and emit a stable `BENCH_adm.json` —
//! virtual-cycle totals, per-layer attribution, span/event counts.
//!
//! Three workloads, all fully seeded so every number is a deterministic
//! replay, not a wall-clock measurement:
//!
//! * **Table 1** — null-RPC cycle cost per kernel plus the SISR
//!   load-time verification row;
//! * **flash crowd** — the Table 2 / Figure 7 scenario
//!   (`scenario::chaos::paper_flash_crowd`, the same definition the
//!   golden-trace tier and `figures --trace/--flame` run);
//! * **chaos matrix** — the CI chaos storylines
//!   (`scenario::chaos::ci_chaos`) under seeds 17, 42, 20260806;
//! * **crash replay** — the `scenario::crashrep` recovery matrix (same
//!   seeds × every crash point), pricing journal recovery: total
//!   `compkit:recover` span cycles plus the landed-outcome and
//!   undo-work counts;
//! * **mega crowd** — the `scenario::megacrowd` scale run (~10.5M
//!   requests through the event engine): virtual cycles per request
//!   plus — uniquely in this bench — real wall-clock rows
//!   (`megacrowd.wall.*`), gated only against order-of-magnitude
//!   blowups since wall time is machine-dependent;
//! * **transactions** — the unbundled transaction core: clean
//!   cross-shard prepare/commit and crash-plus-recovery cycle prices,
//!   plus the conformance matrix's exact outcome counts (`txn.cycles.*`,
//!   `txn.counts.*`, `txn.matrix.counts.*`);
//! * **system tables** — the `systab` introspection layer: billed
//!   table-scan cycles over a settled chaos world and the declarative
//!   SWITCH rule's evaluation cost (`systab.cycles.*`,
//!   `systab.counts.*`).
//!
//! Modes:
//!
//! * `bench` — print the snapshot JSON to stdout;
//! * `bench --update` — rewrite the committed baseline `BENCH_adm.json`
//!   (normally via `cargo xtask update-goldens`);
//! * `bench --check` — compare this run against the committed baseline
//!   under the gate tolerances ([`adm_bench::gate`]) and exit non-zero
//!   on any out-of-tolerance drift (the CI `bench-gate` job).

use adm_bench::gate::{compare, BenchSnapshot, Tolerance};
use adm_core::scenario::chaos::{ci_chaos, paper_flash_crowd, run_observed, ChaosParams};
use adm_core::scenario::crashrep;
use gokernel::kernels::KernelKind;
use gokernel::table1::{table1_rows, verification_cost_row};
use machine::CostModel;
use obs::Profile;
use std::path::PathBuf;

/// The chaos seeds with committed goldens — keep in lockstep with the CI
/// matrix and `tests/obs_e2e.rs`.
const CHAOS_SEEDS: [u64; 3] = [17, 42, 20260806];

/// The committed baseline, at the workspace root next to README.md.
fn baseline_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_adm.json")
}

/// A short metric-key segment for a Table 1 kernel row.
fn kernel_key(kind: KernelKind) -> &'static str {
    match kind {
        KernelKind::Monolithic => "bsd",
        KernelKind::Mach => "mach",
        KernelKind::L4 => "l4",
        KernelKind::Go => "go",
    }
}

/// Metric-key segment for a profiler category (`(idle)` → `idle`).
fn category_key(cat: &str) -> String {
    cat.chars().filter(|c| c.is_ascii_alphanumeric() || *c == '_').collect()
}

/// Record one observed scenario under `prefix`: clock, per-category
/// self-cycle attribution, and the structural counts.
fn record_scenario(snap: &mut BenchSnapshot, prefix: &str, params: &ChaosParams) {
    let (report, o) = run_observed(params);
    let profile = Profile::build(o.tracer.events(), o.clock());
    assert_eq!(
        profile.self_total(),
        o.clock(),
        "{prefix}: the profile must partition the virtual clock"
    );
    snap.set(format!("{prefix}.cycles.clock"), o.clock());
    for (cat, cycles) in profile.per_category() {
        snap.set(format!("{prefix}.cycles.self.{}", category_key(&cat)), cycles);
    }
    let spans = o.tracer.events().iter().filter(|e| e.kind == obs::EventKind::Complete).count();
    snap.set(format!("{prefix}.counts.events"), o.tracer.events().len() as u64);
    snap.set(format!("{prefix}.counts.spans"), spans as u64);
    snap.set(format!("{prefix}.counts.completed"), report.completed);
    snap.set(format!("{prefix}.counts.switches"), report.migrations);
    snap.set(format!("{prefix}.counts.reconfigs_committed"), report.reconfigs_committed);
    // Tail latency from the completion histogram — a deterministic
    // replay, so the p99 is an exact, exactly-gated number.
    let p99 = o
        .metrics
        .histogram("patia.latency_ticks")
        .and_then(|h| h.quantile(0.99))
        .expect("every scenario completes requests");
    snap.set(format!("{prefix}.latency.p99_ticks"), p99);
}

/// Record the crash-replay matrix under `crashrep.*`: how much recovery
/// costs on the virtual clock (summed `compkit:recover` span cycles
/// across every cell) and the structural outcome counts the recovery
/// invariant fixes exactly.
fn record_crashrep(snap: &mut BenchSnapshot) {
    let mut recovery_cycles = 0u64;
    let mut committed = 0u64;
    let mut rolled_back = 0u64;
    let mut scanned = 0u64;
    let mut undone = 0u64;
    let mut cells = 0u64;
    for &seed in &crashrep::CRASH_SEEDS {
        for &point in &crashrep::crash_points() {
            let (cell, o) = crashrep::run_cell_observed(seed, point);
            assert!(cell.consistent(), "bench cell must recover cleanly: {}", cell.render_line());
            recovery_cycles += o
                .tracer
                .events()
                .iter()
                .filter(|e| e.cat == "compkit" && e.name == "recover")
                .map(|e| e.dur)
                .sum::<u64>();
            committed += u64::from(cell.committed());
            rolled_back += u64::from(cell.rolled_back());
            scanned += cell.records_scanned as u64;
            undone += cell.undone as u64;
            cells += 1;
        }
    }
    snap.set("crashrep.cycles.recovery", recovery_cycles);
    snap.set("crashrep.counts.cells", cells);
    snap.set("crashrep.counts.committed", committed);
    snap.set("crashrep.counts.rolled_back", rolled_back);
    snap.set("crashrep.counts.records_scanned", scanned);
    snap.set("crashrep.counts.steps_undone", undone);
}

/// SISR v3 scaling: verification cost of a many-procedure component at
/// 1×/4×/16× the base component size (8 procedures). The interprocedural
/// summaries make this ~linear in procedure count — the gated evidence
/// is that the 1×→4× and 4×→16× cycle deltas stay affine instead of
/// exploding with call-path count as the v2 concrete-stack keys did.
fn record_sisr_scaling(snap: &mut BenchSnapshot) {
    use gokernel::sisr::SisrVerifier;
    use machine::isa::{Instr, Program};
    let verifier = SisrVerifier::new(CostModel::pentium());
    let cost = |procs: u32| {
        // A dispatcher calling each procedure once, then the 3-instruction
        // procedure bodies — the same shape the sisr unit suite pins.
        let mut text = Vec::new();
        for i in 0..procs {
            text.push(Instr::Call(procs + 1 + 3 * i));
        }
        text.push(Instr::Halt);
        for _ in 0..procs {
            text.push(Instr::Push(0));
            text.push(Instr::Pop(1));
            text.push(Instr::Ret);
        }
        let img = verifier.verify_program(&Program::new(text)).expect("bench image is clean");
        assert_eq!(img.summaries().len() as u32, procs + 1, "one summary per procedure");
        img.scan_cycles()
    };
    for scale in [1u32, 4, 16] {
        snap.set(format!("sisr_v3.cycles.scale{scale}"), cost(8 * scale));
    }
}

/// planlint cost per plan: the Adaptivity Manager bills one ALU per plan
/// step ahead of every switch, so the Figure 5 lifecycle plans price the
/// gate exactly. All three plans must lint clean — the linter's verdict
/// is part of the baseline.
fn record_planlint(snap: &mut BenchSnapshot) {
    use adl::diff::diff;
    use adl::figures::{docked_session, fig4_document, wireless_session};
    use compkit::planlint::PlanLinter;
    use obs::{Obs, Primitive};
    let doc = fig4_document();
    let docked = docked_session(&doc);
    let wireless = wireless_session(&doc);
    let empty = adl::Configuration::default();
    let plans = [diff(&empty, &docked), diff(&docked, &wireless), diff(&wireless, &docked)];
    let linter = PlanLinter::new();
    let mut o = Obs::new(CostModel::pentium());
    let mut steps = 0u64;
    for plan in &plans {
        assert!(linter.lint_one(plan).is_clean(), "fig5 plans must lint clean");
        for _ in 0..plan.len() {
            o.charge(Primitive::Alu);
        }
        steps += plan.len() as u64;
    }
    snap.set("planlint.cycles.total", o.clock());
    snap.set("planlint.cycles.plan", o.clock() / plans.len() as u64);
    snap.set("planlint.counts.plans", plans.len() as u64);
    snap.set("planlint.counts.steps", steps);
}

/// Record the storage engine under `store.*`: the WAL recovery matrix
/// (replay length and landed outcomes are exact structural counts; page
/// IO and cell clocks are virtual-cycle rows) plus the buffer-pool
/// pressure sweep (hit rates per capacity — exact, since the sweep is a
/// seeded replay).
fn record_store(snap: &mut BenchSnapshot) {
    use adm_core::scenario::megacrowd::pool_pressure_sweep;
    use adm_core::scenario::storerep;

    let mut replay_len = 0u64;
    let mut committed = 0u64;
    let mut rolled_back = 0u64;
    let mut cells = 0u64;
    for cell in storerep::sweep() {
        assert!(cell.consistent(), "bench cell must recover cleanly: {}", cell.render_line());
        replay_len += cell.replayed as u64;
        committed += u64::from(cell.committed());
        rolled_back += u64::from(cell.rolled_back());
        cells += 1;
    }
    snap.set("store.counts.cells", cells);
    snap.set("store.counts.replay_len", replay_len);
    snap.set("store.counts.committed", committed);
    snap.set("store.counts.rolled_back", rolled_back);

    // Cycle rows. Recovery cost from the observed recovery cells; page
    // IO from a thrashing pass — a 4-frame pool under a 32-page record
    // set, the sweep's worst case — where every fault is billed through
    // `Primitive::PageIo` and accumulated in `store.page.io_cycles`.
    let mut cell_clock = 0u64;
    for &seed in &storerep::STORE_SEEDS {
        let (_, o) = storerep::run_cell_observed(seed, store::CrashPoint::AfterCommit);
        cell_clock += o.clock();
    }
    snap.set("store.cycles.recovery_cells", cell_clock);
    {
        use adm_rng::Pcg32;
        use store::{PolicyKind, StorageEngine, StoreOp};
        let handle = obs::Obs::new(CostModel::pentium()).into_handle();
        let mut eng = StorageEngine::with_policy(4, PolicyKind::Clock);
        eng.arm_obs(handle.clone());
        let mut rng = Pcg32::new(0x10C7);
        for key in 0..256u64 {
            let mut value = vec![0u8; 480];
            rng.fill_bytes(&mut value);
            eng.apply(&[StoreOp::Put { key, value }]).expect("bench records fit a page");
        }
        for _ in 0..4_000u32 {
            eng.get(rng.below(256)).expect("bench engine stays up").expect("bench keys exist");
        }
        drop(eng);
        let o = obs::Obs::try_unwrap(handle)
            .unwrap_or_else(|_| unreachable!("the engine is dropped before the hub is unwrapped"));
        let page_io = o.metrics.counter("store.page.io_cycles");
        assert!(page_io > 0, "the thrashing pass must pay page IO");
        snap.set("store.cycles.page_io", page_io);
    }

    // The buffer-pool pressure sweep: hit rate per capacity.
    for point in pool_pressure_sweep() {
        snap.set(format!("store.sweep.pool{}.hit_pct", point.capacity), point.hit_pct);
        snap.set(format!("store.sweep.pool{}.misses", point.capacity), point.misses);
    }
}

/// Record the unbundled transaction core under `txn.*`: what cross-shard
/// SWITCH costs on the virtual clock — a clean three-shard prepare/commit
/// (with its forced-vote count), a coordinator crash at the commit edge
/// plus the recovery that settles it — and the conformance matrix's exact
/// structural outcome counts (cells, landed sides, compensations,
/// in-doubt resolutions).
fn record_txn(snap: &mut BenchSnapshot) {
    use adm_core::scenario::txnrep;
    use txn::TxnCrashPoint;

    // The clean committed path: one three-shard transaction, every vote
    // and the decision forced.
    let (report, o) = txnrep::run_clean_observed(17, 3);
    assert_eq!(report.shards, 3, "the bench transaction spans three shards");
    snap.set("txn.cycles.clean_commit", o.clock());
    snap.set("txn.counts.clean_steps", report.steps as u64);
    snap.set("txn.counts.clean_log_forces", o.metrics.counter("txn.log.force"));

    // The crash-and-recover path: the coordinator dies with every shard
    // prepared, recovery resolves all three in doubt by the log read.
    let (cell, o) = txnrep::run_cell_observed(17, 3, TxnCrashPoint::BeforeDecision);
    assert!(cell.consistent(), "bench cell must recover cleanly: {}", cell.render_line());
    snap.set("txn.cycles.crash_recover", o.clock());
    snap.set("txn.counts.crash_in_doubt_resolved", cell.in_doubt_resolved as u64);

    // The full matrix's structural counts.
    let mut committed = 0u64;
    let mut rolled_back = 0u64;
    let mut undone = 0u64;
    let mut resolved = 0u64;
    let mut cells = 0u64;
    for cell in txnrep::sweep() {
        assert!(cell.consistent(), "bench cell must recover cleanly: {}", cell.render_line());
        committed += u64::from(cell.committed());
        rolled_back += u64::from(cell.rolled_back());
        undone += cell.undone as u64;
        resolved += cell.in_doubt_resolved as u64;
        cells += 1;
    }
    snap.set("txn.matrix.counts.cells", cells);
    snap.set("txn.matrix.counts.committed", committed);
    snap.set("txn.matrix.counts.rolled_back", rolled_back);
    snap.set("txn.matrix.counts.steps_undone", undone);
    snap.set("txn.matrix.counts.in_doubt_resolved", resolved);
}

/// Record the system-table layer under `systab.*`: what it costs to
/// serve the machine's own telemetry through the query operators
/// (billed table-scan cycles over a settled chaos world) and what the
/// declarative SWITCH rule costs per storyline (the rule engine's
/// ledgered work priced through `Primitive::Alu`, since rule evaluation
/// deliberately never bills the storyline's own hub).
fn record_systab(snap: &mut BenchSnapshot) {
    use adm_core::scenario::chaos::run_with_state;
    use systab::{metrics_table, scan_rows, spans_table, supervision_table, switches_table};

    let w = run_with_state(&ci_chaos(42));
    let hub = obs::Obs::new(CostModel::pentium()).into_handle();
    let tables = [
        metrics_table(&w.obs.metrics.snapshot()),
        spans_table(w.obs.tracer.events()),
        supervision_table(w.server.supervisor()),
        switches_table(w.am.committed(), w.am.rolled_back(), w.am.journal()),
    ];
    let mut rows = 0u64;
    for t in &tables {
        rows += scan_rows(t, Some(hub.clone())).len() as u64;
    }
    let o = obs::Obs::try_unwrap(hub)
        .unwrap_or_else(|_| unreachable!("scan handles are dropped with their plans"));
    assert_eq!(o.metrics.counter("systab.scan.rows"), rows, "every served row is billed once");
    snap.set("systab.cycles.table_scan", o.clock());
    snap.set("systab.counts.rows_served", rows);

    let q = run_with_state(&ChaosParams { query_rules: true, ..ci_chaos(42) });
    assert_eq!(q.report, w.report, "query-driven switching must not drift the storyline");
    let stats = q.server.rule_stats();
    assert!(stats.evaluations > 0, "the declarative rule must actually run");
    let mut priced = obs::Obs::new(CostModel::pentium());
    priced.charge_n(obs::Primitive::Alu, stats.ops);
    snap.set("systab.cycles.rule_eval", priced.clock());
    snap.set("systab.counts.rule_evaluations", stats.evaluations);
    snap.set("systab.counts.rule_rows_scanned", stats.rows_scanned);
}

/// Record the mega-crowd scale run under `megacrowd.*`: engine counts
/// and virtual cycles per request from an observed run, and real
/// wall-clock rows from an unobserved one. `wall.micros` is the raw run
/// time; `wall.micros_per_million_requests` is the (inverse) throughput
/// — both time-like, so a faster machine always passes the gate.
fn record_megacrowd(snap: &mut BenchSnapshot) {
    use adm_core::scenario::megacrowd::{mega_crowd, run, run_observed as run_mega_observed};
    let params = mega_crowd();
    let started = std::time::Instant::now();
    let report = run(&params);
    let wall = started.elapsed();
    assert!(report.conserved(), "mega-crowd must conserve at scale");
    let (observed, o) = run_mega_observed(&params);
    assert_eq!(observed, report, "arming observability must not perturb the run");
    snap.set("megacrowd.cycles.clock", o.clock());
    snap.set("megacrowd.cycles.per_request", o.clock() / report.totals.completed.max(1));
    snap.set("megacrowd.counts.offered", report.offered);
    snap.set("megacrowd.counts.completed", report.totals.completed);
    snap.set("megacrowd.counts.switches", report.totals.switches);
    snap.set("megacrowd.counts.evacuations", report.totals.evacuations);
    snap.set("megacrowd.counts.ticks_processed", report.totals.ticks_processed);
    snap.set("megacrowd.counts.ticks_skipped", report.totals.ticks_skipped);
    let p99 = o
        .metrics
        .histogram("patia.latency_ticks")
        .and_then(|h| h.quantile(0.99))
        .expect("the mega-crowd completes requests");
    snap.set("megacrowd.latency.p99_ticks", p99);
    #[allow(clippy::cast_possible_truncation)]
    let micros = wall.as_micros() as u64;
    snap.set("megacrowd.wall.micros", micros);
    snap.set(
        "megacrowd.wall.micros_per_million_requests",
        micros.saturating_mul(1_000_000) / report.totals.completed.max(1),
    );
}

/// Replay every workload into one snapshot.
fn measure() -> BenchSnapshot {
    let mut snap = BenchSnapshot::new();

    // Table 1: per-kernel null-RPC cycles plus the verification row.
    let model = CostModel::pentium();
    for row in table1_rows(&model, 3) {
        snap.set(format!("table1.cycles.{}", kernel_key(row.kind)), row.measured_cycles);
    }
    let v = verification_cost_row(&model);
    snap.set("table1.cycles.verify", v.verify_cycles);
    snap.set("table1.counts.breakeven_calls", v.breakeven_calls);

    // The static-analysis layers: SISR v3 summary scaling and planlint.
    record_sisr_scaling(&mut snap);
    record_planlint(&mut snap);

    // The flash crowd and the chaos matrix.
    record_scenario(&mut snap, "flash_crowd", &paper_flash_crowd());
    for seed in CHAOS_SEEDS {
        record_scenario(&mut snap, &format!("chaos.seed{seed}"), &ci_chaos(seed));
    }

    // The crash-replay recovery matrix.
    record_crashrep(&mut snap);

    // The storage engine: WAL recovery matrix + pool pressure sweep.
    record_store(&mut snap);

    // The unbundled transaction core: 2PC pricing + the cross-shard matrix.
    record_txn(&mut snap);

    // The system-table layer: billed scans + the declarative SWITCH rule.
    record_systab(&mut snap);

    // The mega-crowd scale run (cycles + wall-clock).
    record_megacrowd(&mut snap);
    snap
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mode = args.first().map(String::as_str);
    let snap = measure();
    let json = snap.to_json();
    match mode {
        None => print!("{json}"),
        Some("--update") => {
            let path = baseline_path();
            std::fs::write(&path, &json).expect("write baseline");
            println!("wrote {} ({} metrics)", path.display(), snap.values().len());
        }
        Some("--check") => {
            let path = baseline_path();
            let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
                println!(
                    "FAIL: cannot read baseline {} ({e}); \
                     commit one with `cargo xtask update-goldens`",
                    path.display()
                );
                std::process::exit(1);
            });
            let baseline = BenchSnapshot::from_json(&text).unwrap_or_else(|e| {
                println!("FAIL: malformed baseline {}: {e}", path.display());
                std::process::exit(1);
            });
            let tol = Tolerance::default();
            let violations = compare(&baseline, &snap, &tol);
            if violations.is_empty() {
                println!(
                    "bench-gate OK: {} metrics within tolerance (cycles ±{}% or {} cycles; counts exact)",
                    baseline.values().len(),
                    tol.cycle_pct,
                    tol.cycle_floor
                );
                return;
            }
            println!(
                "bench-gate FAIL: {} metric(s) out of tolerance vs {}:",
                violations.len(),
                path.display()
            );
            for v in &violations {
                println!("  {v}");
            }
            println!(
                "\nfull drift:\n{}",
                obs::diff::unified(&text, &json, "BENCH_adm.json (baseline)", "this run")
            );
            println!("if intentional, re-baseline with `cargo xtask update-goldens`");
            std::process::exit(1);
        }
        Some(other) => {
            println!("unknown argument {other:?}; usage: bench [--update|--check]");
            std::process::exit(2);
        }
    }
}
