//! Regenerate the behavioural content of every figure:
//!
//! * Figure 1 — the adaptation framework loop: detect → decide → switch
//!   latency and rollback safety;
//! * Figure 2 — data component version selection under constraints;
//! * Figure 3 — the sensor/PDA/laptop architecture (Scenario 1 series);
//! * Figures 4 & 5 — the ADL model and the switchover plan;
//! * Figure 6 — the ORB invocation anatomy;
//! * Figure 7 — Patia under flash crowd (see also `--bin table2`).
//!
//! Pass `--trace[=PATH]` to additionally replay the Figure 7 flash crowd
//! with the observability hub armed and export the cycle-accounted trace
//! as Chrome-trace JSON (open it in `chrome://tracing` or Perfetto).
//! Defaults to `target/figures-trace.json`.
//!
//! Pass `--flame[=PATH]` to fold the same trace through the
//! cycle-attribution profiler and write inferno-compatible folded stacks
//! (`inferno-flamegraph < PATH > flame.svg`, or any folded-stack viewer).
//! Defaults to `target/figures-flame.folded`. The summed leaf cycles of
//! the folded stacks equal the tracer's final virtual clock — asserted
//! on every export, because the profile is a partition of the run, not a
//! sampling estimate.

use adl::figures::{docked_session, fig4_document, fig5_switchover, wireless_session};
use adm_core::scenario::{failover, inter_query, intra_query, system_adapt};
use compkit::adaptivity::AdaptivityManager;
use compkit::runtime::{BasicFactory, FlakyFactory, Runtime};
use compkit::state::StateManager;
use datacomp::version::SelectionConstraints;
use gokernel::kernels::{GoKernel, Kernel};
use machine::CostModel;

fn fig1() {
    println!("== Figure 1: adaptation framework ==");
    let doc = fig4_document();
    let mut rt = Runtime::new();
    let mut am = AdaptivityManager::new();
    let mut st = StateManager::new();
    let boot = adl::diff::diff(&rt.configuration(), &docked_session(&doc));
    am.execute(&mut rt, &boot, &mut BasicFactory, &mut st, 0).expect("boot");
    let plan = fig5_switchover(&doc);
    let report = am.execute(&mut rt, &plan, &mut BasicFactory, &mut st, 1).expect("switch");
    println!("  monitored violation -> plan of {} steps executed transactionally", report.steps);
    let back = plan.inverse();
    let mut flaky = FlakyFactory::failing(["opt"]);
    let before = rt.clone();
    let _ = am.execute(&mut rt, &back, &mut flaky, &mut st, 2).unwrap_err();
    assert_eq!(rt, before);
    println!("  injected failure -> rolled back, runtime bit-for-bit restored");
    println!("  committed={}, rolled_back={}", am.committed(), am.rolled_back());
}

fn fig2() {
    println!("\n== Figure 2: data component structure (version selection) ==");
    let (dc, _) = inter_query::personal_data();
    println!(
        "  component `{}`: payload {} bytes, {} versions, rules {:?}",
        dc.name,
        dc.payload.size_bytes(),
        dc.versions.len(),
        dc.rules.iter().map(|r| r.id).collect::<Vec<_>>()
    );
    for (label, max_age) in [("fresh required", Some(0)), ("staleness ok", Some(10))] {
        let c = SelectionConstraints { max_age, bandwidth: 10.0, ..Default::default() };
        match dc.best_version(&c) {
            Ok(v) => println!("  {label:<16} -> version {} at {}", v.id, v.location),
            Err(e) => println!("  {label:<16} -> {e}"),
        }
    }
}

fn fig3() {
    println!("\n== Figure 3: component architecture (Scenario 1 crossover) ==");
    println!("  laptop load -> chosen device:");
    for load in [0.0, 0.5, 0.9, 0.99] {
        let r = inter_query::run(&inter_query::InterQueryParams {
            laptop_load: load,
            ..Default::default()
        });
        println!("    {load:>5.2} -> {}", r.chosen_device);
    }
}

fn fig45() {
    println!("\n== Figures 4 & 5: ADL model and switchover ==");
    let doc = fig4_document();
    let plan = fig5_switchover(&doc);
    println!(
        "  {} component types; docked {} / wireless {} instances; plan = {} steps ({} unbind, {} stop, {} start, {} bind)",
        doc.components.len(),
        docked_session(&doc).len(),
        wireless_session(&doc).len(),
        plan.len(),
        plan.unbind.len(),
        plan.stop.len(),
        plan.start.len(),
        plan.bind.len()
    );
}

fn fig6() {
    println!("\n== Figure 6: ORB thread-migration RPC anatomy ==");
    let mut go = GoKernel::new(CostModel::pentium());
    let bd = go.breakdown(0);
    let total: u64 = bd.iter().map(|(_, v)| v).sum();
    println!("  total {total} cycles:");
    for (label, cycles) in bd {
        println!("    {label:<16} {cycles:>4}");
    }
}

fn scenarios() {
    println!("\n== Section 4 scenarios (summary series) ==");
    let r2 = system_adapt::run(&system_adapt::SystemAdaptParams::default());
    let r2s = system_adapt::run(&system_adapt::SystemAdaptParams {
        adaptive: false,
        ..Default::default()
    });
    println!(
        "  scenario 2: adaptive {} ticks / static {} ticks ({}x faster); bytes {} vs {}",
        r2.total_ticks,
        r2s.total_ticks,
        r2s.total_ticks / r2.total_ticks.max(1),
        r2.bytes_sent,
        r2s.bytes_sent
    );
    let r3 = intra_query::run(&intra_query::IntraQueryParams::default());
    println!(
        "  scenario 3: {} -> {} at row {:?}, speedup {:.1}x",
        r3.initial_algo, r3.final_algo, r3.switched_at, r3.speedup
    );
}

fn extensions() {
    println!("\n== Extensions: failure mid-query & intra-request streaming ==");
    let f = failover::run(&failover::FailoverParams::default());
    println!(
        "  failover: laptop died @{:?}; query jumped to {} from safe point {:?}; redid {} rows (restart would redo {}); answer intact ({} rows)",
        f.failed_at, f.finished_on, f.resumed_from, f.rows_redone, f.rows_redone_restart, f.rows_out
    );
    use patia::stream::{default_ladder, StreamSession, TickOutcome};
    use ubinet::link::BandwidthProfile;
    let profile = BandwidthProfile::Steps(vec![(0, 500.0), (40, 40.0), (4000, 500.0)]);
    for (label, adaptive) in [("adaptive", true), ("static  ", false)] {
        let mut s = StreamSession::new(default_ladder(), 120, adaptive);
        let mut t = 0;
        loop {
            t += 1;
            if s.tick(profile.at(t)) == TickOutcome::Finished || t > 100_000 {
                break;
            }
        }
        println!(
            "  stream ({label}): {} stalls, mean quality {:.2}, {} swaps",
            s.stalls(),
            s.mean_quality(),
            s.swaps().len()
        );
    }
}

/// Replay the Figure 7 flash crowd with observability armed and write the
/// Chrome-trace JSON to `path`. The run is fully seeded, so the exported
/// trace is byte-identical across invocations.
fn export_trace(path: &str) {
    use adm_core::scenario::chaos::{paper_flash_crowd, run_observed};
    println!("\n== Trace: Figure 7 flash crowd, cycle-accounted ==");
    let (report, o) = run_observed(&paper_flash_crowd());
    let (trace_digest, metrics_digest, events) = o.digests();
    let json = obs::chrome::export(&o.tracer, "adm figures: flash crowd");
    match std::fs::write(path, &json) {
        Ok(()) => println!(
            "  wrote {path}: {events} events, {} bytes\n  trace digest {trace_digest:#018x}, metrics digest {metrics_digest:#018x}\n  {} arrivals / {} completed / {} migrations — load in chrome://tracing",
            json.len(),
            report.arrivals,
            report.completed,
            report.migrations
        ),
        Err(e) => println!("  could not write {path}: {e}"),
    }
}

/// Fold the flash-crowd trace through the cycle-attribution profiler and
/// write inferno-compatible folded stacks to `path`. Asserts the profile
/// partitions the virtual clock: summed leaf cycles == final clock.
fn export_flame(path: &str) {
    use adm_core::scenario::chaos::{paper_flash_crowd, run_observed};
    use obs::Profile;
    println!("\n== Flame: Figure 7 flash crowd, cycle attribution ==");
    let (_, o) = run_observed(&paper_flash_crowd());
    let profile = Profile::build(o.tracer.events(), o.clock());
    let folded = profile.folded();
    let leaf_sum: u64 = folded
        .lines()
        .map(|l| l.rsplit(' ').next().and_then(|n| n.parse::<u64>().ok()).unwrap_or(0))
        .sum();
    assert_eq!(
        leaf_sum,
        o.clock(),
        "folded leaf cycles must partition the tracer's final virtual clock"
    );
    match std::fs::write(path, &folded) {
        Ok(()) => {
            println!(
                "  wrote {path}: {} stacks, {leaf_sum} leaf cycles == final clock {}",
                folded.lines().count(),
                o.clock()
            );
            println!("  per-layer self cycles:");
            for (cat, cycles) in profile.per_category() {
                println!("    {cat:<10} {cycles:>8}");
            }
            println!("  render with `inferno-flamegraph < {path} > flame.svg`");
        }
        Err(e) => println!("  could not write {path}: {e}"),
    }
}

fn main() {
    fig1();
    fig2();
    fig3();
    fig45();
    fig6();
    scenarios();
    extensions();
    let trace = std::env::args().find_map(|a| {
        if a == "--trace" {
            Some("target/figures-trace.json".to_owned())
        } else {
            a.strip_prefix("--trace=").map(str::to_owned)
        }
    });
    if let Some(path) = trace {
        export_trace(&path);
    }
    let flame = std::env::args().find_map(|a| {
        if a == "--flame" {
            Some("target/figures-flame.folded".to_owned())
        } else {
            a.strip_prefix("--flame=").map(str::to_owned)
        }
    });
    if let Some(path) = flame {
        export_flame(&path);
    }
    println!("\n(Figure 7 / Table 2: run `cargo run -p adm-bench --bin table2`.)");
}
