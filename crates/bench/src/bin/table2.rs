//! Regenerate **Table 2** (Patia atom-constraint metadata) and exercise
//! each row in a live serving run:
//!
//! * 450 — `BEST` placement of the Page1.html agent;
//! * 455 — `SWITCH` under a flash crowd;
//! * 595 — bandwidth-conditional video version selection across a
//!   bandwidth sweep.

use patia::atom::AtomId;
use patia::constraint::paper_table2;
use patia::server::{PatiaServer, ServerConfig};
use patia::workload::{FlashCrowd, RequestGen};

fn main() {
    println!("Table 2: Snapshot of Atom metadata for Patia Webserver showing Constraints\n");
    println!("  Constraint | Atom | Constraint logic");
    println!("  -----------+------+-----------------");
    for c in paper_table2() {
        println!("  {:>10} | {:>4} | {}", c.id, c.atom.0, c.render());
    }

    // Row 450: BEST placement.
    let (net, atoms, constraints) = ServerConfig::paper_fleet();
    let server = PatiaServer::new(net, atoms, constraints, ServerConfig::default());
    println!(
        "\n[450] agent for Page1.html placed by BEST on: {}",
        server.agents(AtomId(123))[0].node
    );

    // Row 595: bandwidth sweep.
    println!("\n[595] video version served vs client bandwidth:");
    println!("  bandwidth (kbps) | version id | meaning");
    for bw in [10.0, 20.0, 31.0, 64.0, 99.0, 120.0, 500.0] {
        let v = server.select_version(AtomId(153), bw).expect("video atom exists");
        let meaning =
            if (1..=3).contains(&v) { "videohalf (in band)" } else { "videosmall (fallback)" };
        println!("  {bw:>16} | {v:>10} | {meaning}");
    }

    // Row 455: flash crowd SWITCH.
    println!("\n[455] flash crowd on Page1.html (x15 for 400 ticks):");
    for (label, adaptive) in [("adaptive", true), ("static", false)] {
        let (net, atoms, constraints) = ServerConfig::paper_fleet();
        let mut s = PatiaServer::new(
            net,
            atoms,
            constraints,
            ServerConfig { adaptive, work_per_request: 400 },
        );
        let crowd = FlashCrowd { from: 50, to: 450, target: AtomId(123), multiplier: 15.0 };
        let mut gen = RequestGen::new(vec![AtomId(123)], 1.0, 4.0, 7).with_crowd(crowd);
        let mut lat: Vec<u64> = Vec::new();
        let mut switches = 0;
        for t in 1..=1500 {
            let st = s.tick(&gen.tick(t), 64.0);
            switches += st.migrations.len();
            lat.extend(st.latencies);
        }
        lat.sort_unstable();
        let p99 = lat.get((lat.len().saturating_sub(1)) * 99 / 100).copied().unwrap_or(0);
        println!(
            "  {label:<8}: switches={switches}, agents={}, served={}, p99 latency={p99} ticks",
            s.agents(AtomId(123)).len(),
            lat.len()
        );
    }
    println!("\nshape check: the adaptive run SWITCHes >=1 time and bounds p99;");
    println!("the static run never switches and its tail latency explodes.");
}
