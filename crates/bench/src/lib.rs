//! # adm-bench — the benchmark harness
//!
//! Regenerates every table and figure of the paper:
//!
//! * `cargo run -p adm-bench --bin table1` — Table 1 (RPC cycles) and the
//!   32-bytes-per-interface memory claim, paper vs measured;
//! * `cargo run -p adm-bench --bin table2` — Table 2's constraints firing
//!   in a live Patia run;
//! * `cargo run -p adm-bench --bin figures` — the behavioural series
//!   behind Figures 1–7 and the three Section 4 scenarios;
//! * `cargo bench -p adm-bench` — Criterion timings for each experiment
//!   (one bench target per table/figure, see `benches/`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gate;

/// Render a labelled two-column table of (label, value) rows.
#[must_use]
pub fn kv_table(title: &str, rows: &[(String, String)]) -> String {
    let w = rows.iter().map(|(k, _)| k.len()).max().unwrap_or(0);
    let mut s = format!("{title}\n");
    for (k, v) in rows {
        s.push_str(&format!("  {k:<w$}  {v}\n"));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kv_table_aligns() {
        let t = kv_table("T", &[("a".into(), "1".into()), ("long".into(), "2".into())]);
        assert!(t.contains("a     1"));
        assert!(t.contains("long  2"));
    }
}
