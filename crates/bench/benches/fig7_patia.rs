//! Figure 7: the Patia architecture under load — whole flash-crowd runs,
//! adaptive vs static, with the p99 shape printed (the quantity the
//! architecture exists to protect).

use microbench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use patia::atom::AtomId;
use patia::server::{PatiaServer, ServerConfig};
use patia::workload::{FlashCrowd, RequestGen};
use std::hint::black_box;

fn crowd_run(adaptive: bool, ticks: u64) -> (u64, usize) {
    let (net, atoms, constraints) = ServerConfig::paper_fleet();
    let mut s =
        PatiaServer::new(net, atoms, constraints, ServerConfig { adaptive, work_per_request: 400 });
    let crowd = FlashCrowd { from: 50, to: ticks / 2, target: AtomId(123), multiplier: 15.0 };
    let mut gen = RequestGen::new(vec![AtomId(123), AtomId(153)], 1.1, 4.0, 7).with_crowd(crowd);
    let mut lat: Vec<u64> = Vec::new();
    for t in 1..=ticks {
        lat.extend(s.tick(&gen.tick(t), 64.0).latencies);
    }
    lat.sort_unstable();
    let p99 = lat.get(lat.len().saturating_sub(1) * 99 / 100).copied().unwrap_or(0);
    (p99, lat.len())
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_patia");
    group.sample_size(10);
    for adaptive in [true, false] {
        let label = if adaptive { "adaptive" } else { "static" };
        let (p99, served) = crowd_run(adaptive, 1200);
        println!("fig7 {label}: p99={p99} ticks over {served} completions");
        group.bench_function(BenchmarkId::new("flashcrowd_1200_ticks", label), |b| {
            b.iter(|| black_box(crowd_run(adaptive, 1200)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
