//! SISR verifier throughput: wall time to run the full five-pass pipeline
//! over programs of increasing size and different control-flow shapes.
//!
//! The verification pipeline is a one-off load-time cost; these benches show
//! it stays near-linear in text size for realistic shapes (straight-line,
//! branchy, call-heavy), which is what makes trading it for per-call traps a
//! win after a handful of RPCs.

use gokernel::sisr::SisrVerifier;
use machine::isa::{Instr, Program};
use machine::CostModel;
use microbench::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

/// `n` instructions of straight-line ALU work ending in `Halt`.
fn straight_line(n: usize) -> Vec<u8> {
    let mut instrs = vec![Instr::MovImm(0, 1)];
    instrs.resize(n - 1, Instr::Add(0, 0));
    instrs.push(Instr::Halt);
    Program::new(instrs).to_bytes()
}

/// `n` instructions where every fourth is a short forward branch.
fn branchy(n: usize) -> Vec<u8> {
    let mut instrs = Vec::with_capacity(n);
    for i in 0..n - 1 {
        instrs.push(if i % 4 == 0 && i + 3 < n - 1 { Instr::Jz(0, 2) } else { Instr::Add(0, 1) });
    }
    instrs.push(Instr::Halt);
    Program::new(instrs).to_bytes()
}

/// A run of small leaf functions, each called once from a driver prologue.
fn call_heavy(n: usize) -> Vec<u8> {
    // Layout: [call f0, call f1, ..., Halt, f0: Nop Ret, f1: Nop Ret, ...]
    let funcs = n.saturating_sub(1) / 3;
    let mut instrs = Vec::with_capacity(n);
    for f in 0..funcs {
        instrs.push(Instr::Call((funcs + 1 + f * 2) as u32));
    }
    instrs.push(Instr::Halt);
    for _ in 0..funcs {
        instrs.push(Instr::Nop);
        instrs.push(Instr::Ret);
    }
    Program::new(instrs).to_bytes()
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("sisr_verifier");
    let v = SisrVerifier::new(CostModel::pentium());
    for n in [64usize, 512, 4096, 32_768] {
        for (shape, text) in
            [("straight", straight_line(n)), ("branchy", branchy(n)), ("calls", call_heavy(n))]
        {
            group.throughput(Throughput::Bytes(text.len() as u64));
            group.bench_function(BenchmarkId::new(shape, n), |b| {
                b.iter(|| black_box(v.verify(&text).expect("clean")));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
