//! Table 1: null-RPC cost per kernel. The criterion numbers measure the
//! *simulator's* wall time; the paper's quantity — simulated cycles — is
//! printed alongside and asserted to preserve the table's ordering.

use gokernel::kernels::{GoKernel, Kernel, L4Kernel, MachKernel, MonolithicKernel};
use machine::CostModel;
use microbench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let model = CostModel::pentium();
    let mut group = c.benchmark_group("table1_rpc");
    let mut cycles = Vec::new();
    let mut kernels: Vec<Box<dyn Kernel>> = vec![
        Box::new(MonolithicKernel::new(model.clone())),
        Box::new(MachKernel::new(model.clone())),
        Box::new(L4Kernel::new(model.clone())),
        Box::new(GoKernel::new(model)),
    ];
    for k in &mut kernels {
        cycles.push((k.kind().name(), k.null_rpc()));
    }
    println!("simulated cycles per null RPC: {cycles:?}");
    assert!(cycles[0].1 > cycles[1].1 && cycles[1].1 > cycles[2].1 && cycles[2].1 > cycles[3].1);

    for k in &mut kernels {
        group.bench_function(BenchmarkId::from_parameter(k.kind().name()), |b| {
            b.iter(|| black_box(k.null_rpc()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
