//! Figure 4: parsing + analysing the Darwin-style model — the paper's
//! complaint that "implementations reconfigure far too slowly" starts with
//! ADL processing cost.

use adl::analysis::analyze;
use adl::config::flatten;
use adl::figures::FIG4_SOURCE;
use adl::parse::parse;
use adl::printer::print_document;
use microbench::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_adl");
    group.bench_function("parse_fig4", |b| {
        b.iter(|| black_box(parse(FIG4_SOURCE).expect("parses")));
    });
    let doc = parse(FIG4_SOURCE).expect("parses");
    group.bench_function("analyze_fig4", |b| b.iter(|| black_box(analyze(&doc).is_ok())));
    group.bench_function("flatten_docked", |b| {
        b.iter(|| black_box(flatten(&doc, "MobileCBMS", &["docked"]).expect("flattens")));
    });
    group.bench_function("print_fig4", |b| b.iter(|| black_box(print_document(&doc))));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
