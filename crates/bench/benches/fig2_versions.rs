//! Figure 2: version-list selection (`BEST`) across list sizes, and the
//! codec trade-off behind "send a compressed version".

use datacomp::codec::{Codec, LzCodec, RleCodec};
use datacomp::version::{SelectionConstraints, Version, VersionKind, VersionList};
use datacomp::xml::{sensor_reading, write_events};
use microbench::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2_versions");

    for n in [4u32, 16, 64, 256] {
        let mut list = VersionList::new();
        for i in 0..n {
            list.add(Version {
                id: i,
                location: format!("node{}", i % 7),
                kind: if i % 3 == 0 {
                    VersionKind::Replica
                } else if i % 3 == 1 {
                    VersionKind::Compressed { codec: "lz".into() }
                } else {
                    VersionKind::Summary { fraction: 0.25 }
                },
                size_bytes: u64::from(1000 + i * 37),
                age: u64::from(i % 5),
                bytes: None,
            });
        }
        let constraints = SelectionConstraints {
            max_age: Some(3),
            min_quality: 0.2,
            bandwidth: 50.0,
            decode_cost_per_byte: vec![("lz".into(), 0.01)],
        };
        group.bench_function(BenchmarkId::new("best", n), |b| {
            b.iter(|| black_box(list.best(&constraints)));
        });
    }

    // Codec throughput on a realistic sensor stream.
    let stream: Vec<u8> = (0..500)
        .flat_map(|t| write_events(&sensor_reading("temp", t, 20.5)).into_bytes())
        .collect();
    group.throughput(Throughput::Bytes(stream.len() as u64));
    group.bench_function("lz_encode_sensor_stream", |b| {
        b.iter(|| black_box(LzCodec.encode(&stream)));
    });
    group.bench_function("rle_encode_sensor_stream", |b| {
        b.iter(|| black_box(RleCodec.encode(&stream)));
    });
    let enc = LzCodec.encode(&stream);
    println!(
        "lz ratio: {} -> {} bytes ({:.1}x)",
        stream.len(),
        enc.len(),
        stream.len() as f64 / enc.len() as f64
    );
    group.bench_function("lz_decode_sensor_stream", |b| {
        b.iter(|| black_box(LzCodec.decode(&enc).expect("valid")));
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
