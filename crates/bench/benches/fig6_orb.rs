//! Figure 6: ORB invocation — cost of the thread-migration RPC, the SISR
//! load-time scan, and how invocation scales with arguments and published
//! interfaces.

use gokernel::component::Rights;
use gokernel::orb::Orb;
use gokernel::sisr::SisrVerifier;
use machine::isa::{Instr, Program};
use machine::CostModel;
use microbench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_orb");

    // The invoke path.
    let mut orb = Orb::new(1 << 20, CostModel::pentium());
    let null = Program::new(vec![Instr::Halt]).to_bytes();
    let adder = Program::new(vec![Instr::Add(0, 1), Instr::Halt]).to_bytes();
    let ty_null = orb.load_type("null", &null).expect("verifies");
    let ty_add = orb.load_type("adder", &adder).expect("verifies");
    let caller = orb.instantiate(ty_null).expect("mem");
    let callee = orb.instantiate(ty_add).expect("mem");
    let server = orb.instantiate(ty_null).expect("mem");
    let iface_add = orb.publish(callee, 0, Rights::PUBLIC, 2).expect("publish");
    let iface_null = orb.publish(server, 0, Rights::PUBLIC, 0).expect("publish");

    group.bench_function("invoke_null", |b| {
        b.iter(|| black_box(orb.invoke(caller, iface_null, &[]).expect("ok")));
    });
    group.bench_function("invoke_adder_2args", |b| {
        b.iter(|| black_box(orb.invoke(caller, iface_add, &[20, 22]).expect("ok")));
    });

    // SISR scan cost is linear in text size — the one-off price of
    // removing per-call traps.
    for n in [64usize, 1024, 16_384] {
        let mut instrs = vec![Instr::Nop; n - 1];
        instrs.push(Instr::Halt);
        let text = Program::new(instrs).to_bytes();
        let v = SisrVerifier::new(CostModel::pentium());
        group.bench_function(BenchmarkId::new("sisr_scan_instrs", n), |b| {
            b.iter(|| black_box(v.verify(&text).expect("clean")));
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
