//! Table 2: cost of evaluating the atom constraints in a live server tick,
//! adaptive vs static — "componentisation itself must not produce
//! excessive overheads".

use microbench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use patia::atom::AtomId;
use patia::server::{PatiaServer, ServerConfig};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2_constraints");
    for adaptive in [true, false] {
        let label = if adaptive { "adaptive" } else { "static" };
        let (net, atoms, constraints) = ServerConfig::paper_fleet();
        let mut server = PatiaServer::new(
            net,
            atoms,
            constraints,
            ServerConfig { adaptive, work_per_request: 400 },
        );
        let reqs = vec![AtomId(123), AtomId(153), AtomId(123)];
        group.bench_function(BenchmarkId::new("server_tick", label), |b| {
            b.iter(|| black_box(server.tick(&reqs, 64.0)));
        });
    }
    // Version selection alone (constraint 595).
    let (net, atoms, constraints) = ServerConfig::paper_fleet();
    let server = PatiaServer::new(net, atoms, constraints, ServerConfig::default());
    group.bench_function("select_version_595", |b| {
        b.iter(|| black_box(server.select_version(AtomId(153), black_box(64.0))));
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
