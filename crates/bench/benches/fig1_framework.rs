//! Figure 1: the adaptation framework's reaction path — "There is no point
//! in a system reacting to a problem so slowly that system fails before it
//! can do anything about it." Measures the full loop (gauge refresh → rule
//! check → plan → transactional switch) and its pieces.

use adl::figures::{docked_session, fig4_document, fig5_switchover};
use compkit::adaptivity::AdaptivityManager;
use compkit::gauge::{Gauge, GaugeBoard, GaugeKind};
use compkit::monitor::Monitor;
use compkit::rules::{Action, Expr, RuleSet, SwitchingRule};
use compkit::runtime::{BasicFactory, Runtime};
use compkit::state::StateManager;
use microbench::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig1_framework");

    // Gauge evaluation over a loaded board.
    let mut board = GaugeBoard::new();
    for i in 0..16 {
        board.add_monitor(Monitor::new(&format!("m{i}"), 64));
        board.add_gauge(Gauge {
            name: format!("g{i}"),
            monitor: format!("m{i}"),
            kind: GaugeKind::WindowMean(32),
        });
        for t in 0..64 {
            board.record(&format!("m{i}"), t, t as f64 * 0.01);
        }
    }
    group.bench_function("gauge_snapshot_16x64", |b| b.iter(|| black_box(board.snapshot())));

    // Rule evaluation.
    let mut rules = RuleSet::new();
    for i in 0..16 {
        rules.add(SwitchingRule {
            id: i,
            priority: (i % 4) as u8,
            constraint: Expr::gauge_gt(&format!("g{}", i % 16), 0.5),
            action: Action::Custom(format!("act{i}")),
        });
    }
    let snapshot = board.snapshot();
    group.bench_function("ruleset_decide_16", |b| b.iter(|| black_box(rules.decide(&snapshot))));

    // The full transactional switchover (plan pre-computed, as the session
    // manager would hand it over).
    let doc = fig4_document();
    let plan = fig5_switchover(&doc);
    let inverse = plan.inverse();
    let mut rt = Runtime::new();
    let mut am = AdaptivityManager::new();
    let mut st = StateManager::new();
    let boot = adl::diff::diff(&rt.configuration(), &docked_session(&doc));
    am.execute(&mut rt, &boot, &mut BasicFactory, &mut st, 0).expect("boot");
    group.bench_function("transactional_switch_roundtrip", |b| {
        b.iter(|| {
            am.execute(&mut rt, &plan, &mut BasicFactory, &mut st, 1).expect("forward");
            am.execute(&mut rt, &inverse, &mut BasicFactory, &mut st, 2).expect("back");
        });
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
