//! Ablation A1: the adaptive operators of Section 2 against their static
//! counterparts, on local (immediate) and wide-area (delayed/bursty)
//! sources. The adaptive operators should win under stalls — first-result
//! latency and stall-time productivity — and pay only a modest premium on
//! clean local data.

use datacomp::{ColumnType, Schema, Table, Value};
use microbench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use query::adaptive::ripple::AggKind;
use query::adaptive::{RippleJoin, SymmetricHashJoin, XJoin};
use query::basic::HashJoin;
use query::op::{drain, Operator, WorkCounter};
use query::source::{ArrivalPattern, DelayedScan, TableScan};
use std::hint::black_box;

fn table(n: i64, dup: i64) -> Table {
    let schema = Schema::new(&[("k", ColumnType::Int), ("v", ColumnType::Int)]).unwrap();
    let mut t = Table::new(schema);
    for i in 0..n {
        t.insert(vec![Value::Int(i % dup), Value::Int(i)]).unwrap();
    }
    t
}

fn src(t: &Table, pat: Option<ArrivalPattern>, w: &WorkCounter) -> Box<dyn Operator> {
    match pat {
        Some(p) => Box::new(DelayedScan::new(t.clone(), p, w.clone())),
        None => Box::new(TableScan::new(t.clone(), w.clone())),
    }
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_joins");
    group.sample_size(20);
    let l = table(600, 40);
    let r = table(600, 40);
    let wan = Some(ArrivalPattern { initial_delay: 200, burst: 20, gap: 30 });

    for (src_label, pat) in [("local", None), ("wan", wan)] {
        for algo in ["hash_static", "shj", "xjoin", "ripple"] {
            group.bench_function(BenchmarkId::new(algo, src_label), |b| {
                b.iter(|| {
                    let w = WorkCounter::new();
                    let rows = match algo {
                        "hash_static" => {
                            let mut op = HashJoin::new(
                                src(&l, pat, &w),
                                src(&r, pat, &w),
                                vec![0],
                                vec![0],
                                true,
                                w.clone(),
                            );
                            drain(&mut op, 1_000_000)
                        }
                        "shj" => {
                            let mut op = SymmetricHashJoin::new(
                                src(&l, pat, &w),
                                src(&r, pat, &w),
                                vec![0],
                                vec![0],
                                w.clone(),
                            );
                            drain(&mut op, 1_000_000)
                        }
                        "xjoin" => {
                            let mut op = XJoin::new(
                                src(&l, pat, &w),
                                src(&r, pat, &w),
                                vec![0],
                                vec![0],
                                64,
                                w.clone(),
                            );
                            drain(&mut op, 1_000_000)
                        }
                        _ => {
                            let mut op = RippleJoin::new(
                                src(&l, pat, &w),
                                src(&r, pat, &w),
                                vec![0],
                                vec![0],
                                8,
                                AggKind::Count,
                                w.clone(),
                            );
                            drain(&mut op, 1_000_000)
                        }
                    };
                    black_box(rows.len())
                });
            });
        }
    }

    // Shape report: polls until the FIRST result under WAN stalls — the
    // crossover the adaptive literature is about.
    for algo in ["hash_static", "shj"] {
        let w = WorkCounter::new();
        let mut op: Box<dyn Operator> = if algo == "hash_static" {
            Box::new(HashJoin::new(
                src(&l, wan, &w),
                src(&r, wan, &w),
                vec![0],
                vec![0],
                true,
                w.clone(),
            ))
        } else {
            Box::new(SymmetricHashJoin::new(
                src(&l, wan, &w),
                src(&r, wan, &w),
                vec![0],
                vec![0],
                w.clone(),
            ))
        };
        let mut polls = 0u64;
        loop {
            polls += 1;
            match op.poll() {
                query::op::Poll::Ready(_) => break,
                query::op::Poll::Pending => {}
                query::op::Poll::Done => break,
            }
        }
        println!("first result under WAN stalls: {algo} after {polls} polls");
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
