//! Ablation A2: componentisation overhead — the paper's requirement that
//! "componentisation itself must not produce excessive overheads".
//! Compares a direct (monolithic) call path against the ORB-mediated
//! component call, in *simulated cycles* (the honest currency) and wall
//! time, plus the monitoring overhead of an idle adaptation loop.

use compkit::gauge::{Gauge, GaugeBoard, GaugeKind};
use compkit::monitor::Monitor;
use compkit::rules::{Action, Expr, RuleSet, SwitchingRule};
use gokernel::component::Rights;
use gokernel::kernels::{
    ExtensibleKernel, GoKernel, Kernel, L4Kernel, MachKernel, MonolithicKernel,
};
use gokernel::orb::Orb;
use machine::cost::{CostModel, CycleCounter, Primitive};
use machine::isa::{Instr, Program};
use microbench::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_overhead");

    // Simulated-cycle comparison: a direct call (call + ret) vs the ORB
    // thread-migration RPC.
    let model = CostModel::pentium();
    let mut direct = CycleCounter::new();
    direct.charge(Primitive::Branch, &model);
    direct.charge(Primitive::BranchIndirect, &model);
    let mut orb = Orb::new(1 << 20, model.clone());
    let null = Program::new(vec![Instr::Halt]).to_bytes();
    let ty = orb.load_type("svc", &null).expect("verifies");
    let caller = orb.instantiate(ty).expect("mem");
    let callee = orb.instantiate(ty).expect("mem");
    let iface = orb.publish(callee, 0, Rights::PUBLIC, 0).expect("publish");
    let rpc = orb.invoke(caller, iface, &[]).expect("ok");
    println!(
        "simulated cycles: direct call {} vs ORB component call {} ({}x) — \
         protected isolation for ~{}x a function call",
        direct.total(),
        rpc.cycles,
        rpc.cycles / direct.total().max(1),
        rpc.cycles / direct.total().max(1),
    );

    // The §1.1 architecture ladder in one line: each stage cuts the
    // service-invocation cost.
    let ladder = {
        let m = CostModel::pentium();
        let bsd = MonolithicKernel::new(m.clone()).null_rpc();
        let mach = MachKernel::new(m.clone()).null_rpc();
        let l4 = L4Kernel::new(m.clone()).null_rpc();
        let ext = ExtensibleKernel::new(m.clone()).invoke_extension(1);
        let go = GoKernel::new(m).null_rpc();
        (bsd, mach, l4, ext, go)
    };
    println!(
        "architecture ladder (cycles): monolithic {} -> microkernel {} -> L4 {} -> extensible {} -> Go! {}",
        ladder.0, ladder.1, ladder.2, ladder.3, ladder.4
    );

    group.bench_function("orb_component_call", |b| {
        b.iter(|| black_box(orb.invoke(caller, iface, &[]).expect("ok")));
    });

    // Monitoring overhead of an idle (non-firing) adaptation loop.
    let mut board = GaugeBoard::new();
    board.add_monitor(Monitor::new("cpu", 32));
    board.add_gauge(Gauge {
        name: "util".into(),
        monitor: "cpu".into(),
        kind: GaugeKind::Ewma(0.2),
    });
    for t in 0..32 {
        board.record("cpu", t, 0.1);
    }
    let mut rules = RuleSet::new();
    rules.add(SwitchingRule {
        id: 1,
        priority: 0,
        constraint: Expr::gauge_gt("util", 0.9),
        action: Action::Custom("never".into()),
    });
    group.bench_function("idle_adaptation_check", |b| {
        b.iter(|| {
            let snap = board.snapshot();
            black_box(rules.decide(&snap))
        });
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
