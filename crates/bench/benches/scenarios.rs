//! The three Section 4 scenarios as end-to-end benchmarks (S1, S2, S3 of
//! the experiment index), adaptive vs static where the comparison exists.

use adm_core::scenario::{inter_query, intra_query, system_adapt};
use microbench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("scenarios");
    group.sample_size(10);

    group.bench_function("s1_inter_query", |b| {
        b.iter(|| black_box(inter_query::run(&inter_query::InterQueryParams::default())));
    });

    for adaptive in [true, false] {
        let label = if adaptive { "adaptive" } else { "static" };
        let params =
            system_adapt::SystemAdaptParams { readings: 500, adaptive, ..Default::default() };
        let r = system_adapt::run(&params);
        println!("s2 {label}: {} ticks, {} bytes sent", r.total_ticks, r.bytes_sent);
        group.bench_function(BenchmarkId::new("s2_system_adapt", label), |b| {
            b.iter(|| black_box(system_adapt::run(&params)));
        });
    }

    for (label, error) in [("stale", 0.0025), ("fresh", 1.0)] {
        let params =
            intra_query::IntraQueryParams { rows: 1_000, stats_error: error, ..Default::default() };
        let r = intra_query::run(&params);
        println!("s3 {label}: speedup {:.1}x ({} -> {})", r.speedup, r.initial_algo, r.final_algo);
        group.bench_function(BenchmarkId::new("s3_intra_query", label), |b| {
            b.iter(|| black_box(intra_query::run(&params)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
