//! Figure 5: the docked↔wireless switchover — diff computation and
//! transactional execution, plus diff scaling with configuration size
//! (the answer to "ADLs ... reconfigure far too slowly").

use adl::ast::{Binding, PortRef};
use adl::config::Configuration;
use adl::diff::diff;
use adl::figures::{docked_session, fig4_document, wireless_session};
use microbench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn synthetic(n: usize, offset: usize) -> Configuration {
    let mut cfg = Configuration::default();
    for i in 0..n {
        cfg.instances.insert(format!("c{}", i + offset), format!("T{}", i % 7));
        cfg.bindings.insert(Binding {
            from: PortRef::on(&format!("c{}", i + offset), "req"),
            to: PortRef::on(&format!("c{}", (i + 1) % n + offset), "prov"),
        });
    }
    cfg
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5_switchover");
    let doc = fig4_document();
    let docked = docked_session(&doc);
    let wireless = wireless_session(&doc);
    group.bench_function("diff_fig5", |b| b.iter(|| black_box(diff(&docked, &wireless))));
    for n in [16usize, 64, 256, 1024] {
        let a = synthetic(n, 0);
        let b_cfg = synthetic(n, n / 2); // half overlap
        group.bench_function(BenchmarkId::new("diff_synthetic", n), |b| {
            b.iter(|| black_box(diff(&a, &b_cfg)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
