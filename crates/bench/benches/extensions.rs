//! Benches for the reproduction's extension features (the paper's
//! future-work threads): the zero-kernel library OS, intra-request stream
//! adaptation, mid-query failover, and hierarchical ADL flattening.

use adl::hierarchy::flatten_deep;
use adl::parse::parse;
use adm_core::scenario::failover;
use gokernel::libos::{LibOs, ThreadId};
use machine::CostModel;
use microbench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use patia::stream::{default_ladder, StreamSession, TickOutcome};
use std::hint::black_box;
use ubinet::link::BandwidthProfile;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("extensions");
    group.sample_size(20);

    // Zero-kernel service calls (scheduler yield through the ORB).
    let mut os = LibOs::boot(CostModel::pentium(), 1 << 16);
    for t in 0..8 {
        os.sched_add(ThreadId(t)).expect("boot ok");
    }
    group.bench_function("libos_sched_yield", |b| {
        let mut cur = ThreadId(0);
        b.iter(|| {
            let next = os.sched_yield(cur).expect("ok").expect("non-empty");
            cur = black_box(next);
        });
    });
    group.bench_function("libos_alloc_free", |b| {
        b.iter(|| {
            let a = os.alloc(black_box(128)).expect("fits");
            os.free(a).expect("valid");
        });
    });

    // Intra-request stream adaptation over a noisy wireless walk.
    for adaptive in [true, false] {
        let label = if adaptive { "adaptive" } else { "static" };
        group.bench_function(BenchmarkId::new("stream_session_300s", label), |b| {
            b.iter(|| {
                let profile = BandwidthProfile::Walk { lo: 28.0, hi: 300.0, seed: 9 };
                let mut s = StreamSession::new(default_ladder(), 300, adaptive);
                let mut t = 0u64;
                loop {
                    t += 1;
                    if t > 200_000 {
                        break; // static sessions may be unable to finish
                    }
                    if s.tick(profile.at(t)) == TickOutcome::Finished {
                        break;
                    }
                }
                black_box((s.stalls(), s.mean_quality()))
            });
        });
    }

    // Mid-query failover: the query jumps devices and finishes.
    let params = failover::FailoverParams { rows: 600, ..Default::default() };
    group.bench_function("failover_mid_query", |b| {
        b.iter(|| black_box(failover::run(&params)));
    });

    // Hierarchical flattening of a three-level composite.
    let doc = parse(
        "component Leaf { provide p; }
         component Mid  { provide p; inst l : Leaf; bind p -- l.p; }
         component Top  { provide p; inst m : Mid; bind p -- m.p; }
         component Sys  { inst a : Top; b : Top; c : Top; }",
    )
    .expect("parses");
    group.bench_function("flatten_deep_3_levels", |b| {
        b.iter(|| black_box(flatten_deep(&doc, "Sys", &[]).expect("flattens")));
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
