//! Property: random fault plans cannot break the Adaptivity Manager's
//! atomicity — a failed switch leaves the runtime exactly as it was, a
//! successful one lands exactly on the target, and nothing panics.
//!
//! A small deterministic tier runs on every `cargo test`; the full
//! randomized sweep is opt-in: `cargo test -p faultsim --features
//! slow-props`.

use adl::ast::{Binding, PortRef};
use adl::config::Configuration;
use adl::diff::diff;
use adm_rng::{run_cases, Pcg32};
use compkit::adaptivity::{AdaptivityManager, SwitchError};
use compkit::runtime::{BasicFactory, Runtime};
use compkit::state::StateManager;
use faultsim::{flaky_factory, FaultPlan, FaultSpace, PlanStepFaults};
use std::collections::BTreeSet;

fn name(rng: &mut Pcg32) -> String {
    let n = rng.index(2) + 1;
    (0..n).map(|_| (b'a' + rng.below(5) as u8) as char).collect()
}

fn port(rng: &mut Pcg32) -> String {
    String::from(if rng.chance(0.5) { "p" } else { "q" })
}

fn configuration(rng: &mut Pcg32) -> Configuration {
    let instances: std::collections::BTreeMap<String, String> = (0..rng.index(6))
        .map(|_| {
            let ty = ["T", "U", "V"][rng.index(3)].to_string();
            (name(rng), ty)
        })
        .collect();
    let raw: BTreeSet<(String, String, String, String)> =
        (0..rng.index(6)).map(|_| (name(rng), port(rng), name(rng), port(rng))).collect();
    // Keep the target admissible: bindings reference only existing
    // instances and stay acyclic at the instance level, since the
    // Adaptivity Manager's lint gate (like the document analyser) refuses
    // cyclic configurations before executing anything.
    let keys: BTreeSet<&String> = instances.keys().collect();
    let mut edges: Vec<(String, String)> = Vec::new();
    let bindings = raw
        .into_iter()
        .filter(|(fi, _, ti, _)| keys.contains(fi) && keys.contains(ti))
        .filter(|(fi, _, ti, _)| {
            edges.push((fi.clone(), ti.clone()));
            if adl::analysis::find_cycle(&edges).is_some() {
                edges.pop();
                return false;
            }
            true
        })
        .map(|(fi, fp, ti, tp)| Binding { from: PortRef::on(&fi, &fp), to: PortRef::on(&ti, &tp) })
        .collect();
    Configuration { instances, bindings }
}

fn boot(cfg: &Configuration) -> Runtime {
    let mut rt = Runtime::new();
    let mut am = AdaptivityManager::new();
    let mut st = StateManager::new();
    let plan = diff(&Configuration::default(), cfg);
    am.execute(&mut rt, &plan, &mut BasicFactory, &mut st, 0)
        .expect("booting a self-consistent configuration succeeds");
    rt
}

/// Run `cases` random (configuration pair, fault plan) draws and check the
/// all-or-nothing contract under both start and bind failures.
fn switch_is_atomic_under_random_fault_plans(seed: u64, cases: u32) {
    run_cases(seed, cases, |rng| {
        let (a, b) = (configuration(rng), configuration(rng));
        // Fault plans drawn over the *target's* component names, so start
        // and bind failures can actually strike the reconfiguration.
        let space = FaultSpace {
            components: b.instances.keys().cloned().collect(),
            horizon: 16,
            incidents: rng.index(5),
            ..FaultSpace::default()
        };
        let fault_plan = FaultPlan::random(rng.next_u64(), &space);
        let mut injector = PlanStepFaults::new(&fault_plan);
        let mut factory = flaky_factory(&fault_plan);

        let mut rt = boot(&a);
        let before = rt.clone();
        let mut am = AdaptivityManager::new();
        let mut st = StateManager::new();
        let reconf = diff(&rt.configuration(), &b);
        match am.execute_with_faults(&mut rt, &reconf, &mut factory, &mut st, 1, &mut injector) {
            Ok(_) => assert_eq!(
                rt.configuration(),
                b,
                "a committed switch must land exactly on the target\nplan:\n{}",
                fault_plan.render()
            ),
            Err(e) => {
                assert!(
                    !matches!(e, SwitchError::RollbackIncomplete { .. }),
                    "plan injects no rollback faults, so rollback must complete: {e}"
                );
                assert_eq!(
                    rt,
                    before,
                    "a failed switch must restore the runtime bit-for-bit\nplan:\n{}",
                    fault_plan.render()
                );
            }
        }
    });
}

/// Tier-1 smoke: a few dozen cases on every `cargo test`.
#[test]
fn switch_is_atomic_under_random_fault_plans_small() {
    switch_is_atomic_under_random_fault_plans(0xfa01, 24);
}

/// The full sweep, behind `slow-props` like the other property suites.
#[cfg(feature = "slow-props")]
#[test]
fn switch_is_atomic_under_random_fault_plans_full() {
    switch_is_atomic_under_random_fault_plans(0xfa02, 400);
}

/// Determinism of the generator itself: the same seed over the same space
/// renders the same timeline even across separate generator instances.
#[test]
fn random_plan_generation_is_reproducible() {
    run_cases(0xfa03, 16, |rng| {
        let seed = rng.next_u64();
        let space = FaultSpace {
            nodes: vec!["n1".into(), "n2".into()],
            links: vec![("n1".into(), "n2".into())],
            atoms: vec![123],
            components: vec!["c".into()],
            horizon: 32,
            incidents: 8,
            crash_nodes: vec!["n1".into()],
            txn_crashes: vec![txn::TxnCrashPoint::BeforePrepare],
        };
        let first = FaultPlan::random(seed, &space);
        let second = FaultPlan::random(seed, &space);
        assert_eq!(first.render(), second.render());
        assert_eq!(first.digest(), second.digest());
    });
}
