//! Seeded fault plans: the deterministic timeline every injector reads.
//!
//! A [`FaultPlan`] maps ticks to the faults that strike there. Plans are
//! either hand-built (chaos scenarios that need a precise storyline) or
//! drawn from an [`adm_rng::Pcg32`] seed over a [`FaultSpace`] (property
//! suites). Nothing reads the wall clock: the same seed over the same
//! space yields a byte-identical timeline, which [`FaultPlan::render`]
//! and [`FaultPlan::digest`] make directly assertable.

use adm_rng::Pcg32;
use compkit::journal::CrashPoint;
use std::collections::BTreeMap;
use std::fmt;
use txn::TxnCrashPoint;

/// One injectable fault. Paired variants (death/revival, down/up,
/// partition/heal, pressure/release) model an incident and its recovery as
/// two scheduled events, so a plan is a complete storyline, not just the
/// breakage half.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Fault {
    /// Every link between two devices drops.
    LinkDown {
        /// One endpoint.
        a: String,
        /// Other endpoint.
        b: String,
    },
    /// The links between two devices come back up.
    LinkUp {
        /// One endpoint.
        a: String,
        /// Other endpoint.
        b: String,
    },
    /// The links between two devices change latency (a spike sets a high
    /// value; the recovery event restores the original).
    LatencySpike {
        /// One endpoint.
        a: String,
        /// Other endpoint.
        b: String,
        /// New latency in ticks.
        latency: u64,
    },
    /// A network partition: every link crossing the island boundary drops.
    Partition {
        /// Devices isolated from the rest of the network.
        island: Vec<String>,
    },
    /// Heal a partition: the island's boundary links come back up.
    Heal {
        /// The previously isolated devices.
        island: Vec<String>,
    },
    /// A node dies.
    NodeDeath {
        /// The victim.
        node: String,
    },
    /// A dead node comes back.
    NodeRevival {
        /// The survivor.
        node: String,
    },
    /// CPU pressure steals part of a node's capacity.
    CpuPressure {
        /// The squeezed node.
        node: String,
        /// Capacity stolen, in thousandths (kept integral so plans stay
        /// `Eq` and render identically everywhere).
        permille: u32,
    },
    /// Injected CPU pressure on a node is released.
    PressureRelease {
        /// The relieved node.
        node: String,
    },
    /// A component instance fails to start during reconfiguration.
    StartFailure {
        /// The instance name that will refuse to create.
        component: String,
    },
    /// A bind step fails during reconfiguration.
    BindFailure {
        /// The instance whose incoming bind fails.
        server: String,
    },
    /// The next SWITCH of this atom (at or after the scheduled tick) is
    /// denied.
    SwitchDenial {
        /// The atom whose switch fails.
        atom: u32,
    },
    /// A specific ORB invocation (by global call index) fails.
    InvokeFailure {
        /// The call index that will be denied.
        call_index: u64,
    },
    /// A node crashes *mid-reconfiguration*: it dies at the scheduled
    /// tick (like [`Fault::NodeDeath`]) and its in-flight adaptation
    /// transaction is killed at a precise journal-record boundary —
    /// [`adapters::PlanCrashHook`](crate::adapters::PlanCrashHook)
    /// carries the point into compkit's crash model.
    NodeCrash {
        /// The crashing node.
        node: String,
        /// Where in the transaction lifecycle the node dies.
        point: CrashPoint,
    },
    /// A crashed node restarts (pairs with [`Fault::NodeCrash`]); its
    /// supervisor-driven recovery replays the adaptation journal.
    NodeRestart {
        /// The restarting node.
        node: String,
    },
    /// A coordinator/participant crash at a cross-shard transaction
    /// protocol boundary —
    /// [`adapters::PlanTxnCrashHook`](crate::adapters::PlanTxnCrashHook)
    /// carries the point into the `txn` crate's 2PC crash model.
    TxnCrash {
        /// Where in the two-phase-commit lifecycle the crash strikes.
        point: TxnCrashPoint,
    },
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Fault::LinkDown { a, b } => write!(f, "link-down {a}<->{b}"),
            Fault::LinkUp { a, b } => write!(f, "link-up {a}<->{b}"),
            Fault::LatencySpike { a, b, latency } => {
                write!(f, "latency {a}<->{b}={latency}")
            }
            Fault::Partition { island } => write!(f, "partition [{}]", island.join(",")),
            Fault::Heal { island } => write!(f, "heal [{}]", island.join(",")),
            Fault::NodeDeath { node } => write!(f, "node-death {node}"),
            Fault::NodeRevival { node } => write!(f, "node-revival {node}"),
            Fault::CpuPressure { node, permille } => {
                write!(f, "cpu-pressure {node}={permille}/1000")
            }
            Fault::PressureRelease { node } => write!(f, "pressure-release {node}"),
            Fault::StartFailure { component } => write!(f, "start-failure {component}"),
            Fault::BindFailure { server } => write!(f, "bind-failure {server}"),
            Fault::SwitchDenial { atom } => write!(f, "switch-denial atom={atom}"),
            Fault::InvokeFailure { call_index } => write!(f, "invoke-failure call={call_index}"),
            Fault::NodeCrash { node, point } => write!(f, "node-crash {node}@{point}"),
            Fault::NodeRestart { node } => write!(f, "node-restart {node}"),
            Fault::TxnCrash { point } => write!(f, "txn-crash @{point}"),
        }
    }
}

/// The world a random plan draws from. Empty collections simply remove the
/// corresponding fault kinds from the draw, so a space with only `atoms`
/// yields pure switch-denial plans.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultSpace {
    /// Nodes that can die or feel CPU pressure.
    pub nodes: Vec<String>,
    /// Links (by endpoints) that can flap or spike.
    pub links: Vec<(String, String)>,
    /// Atoms whose switches can be denied.
    pub atoms: Vec<u32>,
    /// Component instances whose start/bind steps can fail.
    pub components: Vec<String>,
    /// Nodes that can crash mid-reconfiguration (with a journalled crash
    /// point) and later restart. Kept separate from `nodes` so existing
    /// seeded spaces draw byte-identical plans until a space opts in.
    pub crash_nodes: Vec<String>,
    /// Cross-shard transaction crash points the space may draw
    /// ([`Fault::TxnCrash`]). Opt-in like `crash_nodes` for the same
    /// reason: existing seeded spaces keep drawing byte-identical plans.
    pub txn_crashes: Vec<TxnCrashPoint>,
    /// Plans schedule within ticks `1..=horizon`.
    pub horizon: u64,
    /// How many incidents (a fault plus its recovery, where paired) to
    /// draw.
    pub incidents: usize,
}

/// A deterministic, tick-indexed schedule of faults.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    seed: u64,
    schedule: BTreeMap<u64, Vec<Fault>>,
}

impl FaultPlan {
    /// An empty plan stamped with its seed (hand-built storylines pass the
    /// scenario seed so rendered timelines stay attributable).
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self { seed, schedule: BTreeMap::new() }
    }

    /// The seed the plan was stamped or drawn with.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Builder: schedule `fault` at `tick`.
    #[must_use]
    pub fn at(mut self, tick: u64, fault: Fault) -> Self {
        self.push(tick, fault);
        self
    }

    /// Schedule `fault` at `tick`. Faults at the same tick keep insertion
    /// order.
    pub fn push(&mut self, tick: u64, fault: Fault) {
        self.schedule.entry(tick).or_default().push(fault);
    }

    /// The faults scheduled exactly at `tick`.
    #[must_use]
    pub fn faults_at(&self, tick: u64) -> &[Fault] {
        self.schedule.get(&tick).map_or(&[], Vec::as_slice)
    }

    /// Total scheduled faults.
    #[must_use]
    pub fn len(&self) -> usize {
        self.schedule.values().map(Vec::len).sum()
    }

    /// Whether the plan schedules nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.schedule.is_empty()
    }

    /// The last tick anything is scheduled at (0 for an empty plan).
    #[must_use]
    pub fn horizon(&self) -> u64 {
        self.schedule.keys().next_back().copied().unwrap_or(0)
    }

    /// Iterate `(tick, fault)` in timeline order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &Fault)> {
        self.schedule.iter().flat_map(|(t, v)| v.iter().map(move |f| (*t, f)))
    }

    /// Draw a random plan from `space` — same seed, same space, same plan,
    /// byte for byte.
    #[must_use]
    pub fn random(seed: u64, space: &FaultSpace) -> Self {
        let mut rng = Pcg32::new(seed);
        let mut plan = FaultPlan::new(seed);
        let horizon = space.horizon.max(2);
        // The kinds the space supports, in a fixed order so the draw is
        // stable as spaces grow.
        let mut kinds: Vec<u8> = Vec::new();
        if !space.links.is_empty() {
            kinds.extend([0, 1]); // flap, latency spike
        }
        if !space.nodes.is_empty() {
            kinds.extend([2, 3, 4]); // death, pressure, partition
        }
        if !space.atoms.is_empty() {
            kinds.push(5);
        }
        if !space.components.is_empty() {
            kinds.extend([6, 7]); // start failure, bind failure
        }
        kinds.push(8); // invoke failure is always drawable
        if !space.crash_nodes.is_empty() {
            kinds.push(9); // mid-reconfiguration crash + restart
        }
        if !space.txn_crashes.is_empty() {
            kinds.push(10); // cross-shard 2PC coordinator/participant crash
        }
        for _ in 0..space.incidents {
            let start = 1 + rng.below(horizon - 1);
            let duration = 1 + rng.below((horizon / 4).max(1));
            let end = (start + duration).min(horizon);
            match kinds[rng.index(kinds.len())] {
                0 => {
                    let (a, b) = space.links[rng.index(space.links.len())].clone();
                    plan.push(start, Fault::LinkDown { a: a.clone(), b: b.clone() });
                    plan.push(end, Fault::LinkUp { a, b });
                }
                1 => {
                    let (a, b) = space.links[rng.index(space.links.len())].clone();
                    let latency = 10 + rng.below(90);
                    plan.push(start, Fault::LatencySpike { a: a.clone(), b: b.clone(), latency });
                    plan.push(end, Fault::LatencySpike { a, b, latency: 1 });
                }
                2 => {
                    let node = space.nodes[rng.index(space.nodes.len())].clone();
                    plan.push(start, Fault::NodeDeath { node: node.clone() });
                    plan.push(end, Fault::NodeRevival { node });
                }
                3 => {
                    let node = space.nodes[rng.index(space.nodes.len())].clone();
                    let permille = 500 + rng.below(500) as u32;
                    plan.push(start, Fault::CpuPressure { node: node.clone(), permille });
                    plan.push(end, Fault::PressureRelease { node });
                }
                4 => {
                    let island = vec![space.nodes[rng.index(space.nodes.len())].clone()];
                    plan.push(start, Fault::Partition { island: island.clone() });
                    plan.push(end, Fault::Heal { island });
                }
                5 => {
                    let atom = space.atoms[rng.index(space.atoms.len())];
                    plan.push(start, Fault::SwitchDenial { atom });
                }
                6 => {
                    let component = space.components[rng.index(space.components.len())].clone();
                    plan.push(start, Fault::StartFailure { component });
                }
                7 => {
                    let server = space.components[rng.index(space.components.len())].clone();
                    plan.push(start, Fault::BindFailure { server });
                }
                8 => {
                    plan.push(start, Fault::InvokeFailure { call_index: rng.below(64) });
                }
                9 => {
                    let node = space.crash_nodes[rng.index(space.crash_nodes.len())].clone();
                    let point = match rng.index(6) {
                        0 => CrashPoint::MidPlan { after_steps: 1 },
                        1 => CrashPoint::MidPlan { after_steps: 2 },
                        2 => CrashPoint::BeforeCommit,
                        3 => CrashPoint::AfterCommit,
                        4 => CrashPoint::MidRollback { after_undos: 1 },
                        _ => CrashPoint::DuringRecovery { after_undos: 1 },
                    };
                    plan.push(start, Fault::NodeCrash { node: node.clone(), point });
                    plan.push(end, Fault::NodeRestart { node });
                }
                _ => {
                    let point = space.txn_crashes[rng.index(space.txn_crashes.len())];
                    plan.push(start, Fault::TxnCrash { point });
                }
            }
        }
        plan
    }

    /// The timeline as stable text — one line per fault, ticks
    /// zero-padded, headed by the seed. Two runs of the same seeded
    /// scenario must produce identical renderings; chaos tests assert
    /// exactly that.
    #[must_use]
    pub fn render(&self) -> String {
        use fmt::Write as _;
        let mut out = format!("fault-plan seed={:#018x} faults={}\n", self.seed, self.len());
        for (tick, fault) in self.iter() {
            let _ = writeln!(out, "  @{tick:06} {fault}");
        }
        out
    }

    /// FNV-1a hash of [`FaultPlan::render`] — a compact determinism
    /// fingerprint for logs and cross-run assertions.
    #[must_use]
    pub fn digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in self.render().bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> FaultSpace {
        FaultSpace {
            nodes: vec!["node1".into(), "node2".into(), "wp1".into()],
            links: vec![("node1".into(), "node2".into()), ("node2".into(), "wp1".into())],
            atoms: vec![123, 153],
            components: vec!["codec".into(), "cache".into()],
            crash_nodes: Vec::new(),
            txn_crashes: Vec::new(),
            horizon: 64,
            incidents: 12,
        }
    }

    #[test]
    fn same_seed_renders_byte_identical_timelines() {
        let s = space();
        let (a, b) = (FaultPlan::random(42, &s), FaultPlan::random(42, &s));
        assert_eq!(a, b);
        assert_eq!(a.render(), b.render());
        assert_eq!(a.digest(), b.digest());
    }

    #[test]
    fn different_seeds_diverge() {
        let s = space();
        let (a, b) = (FaultPlan::random(1, &s), FaultPlan::random(2, &s));
        assert_ne!(a.render(), b.render(), "two seeds agreeing on 12 incidents is a bug");
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn random_plans_respect_the_horizon() {
        let s = space();
        let plan = FaultPlan::random(7, &s);
        assert!(!plan.is_empty());
        assert!(plan.horizon() <= s.horizon);
        assert!(plan.iter().all(|(t, _)| t >= 1));
    }

    #[test]
    fn paired_faults_recover_after_they_strike() {
        let plan = FaultPlan::random(99, &space());
        for (tick, fault) in plan.iter() {
            if let Fault::NodeDeath { node } = fault {
                assert!(
                    plan.iter().any(|(t, f)| {
                        t > tick && matches!(f, Fault::NodeRevival { node: n } if n == node)
                    }),
                    "death of {node} at {tick} has no later revival"
                );
            }
        }
    }

    #[test]
    fn builder_orders_by_tick_and_preserves_same_tick_order() {
        let plan = FaultPlan::new(0)
            .at(9, Fault::NodeDeath { node: "b".into() })
            .at(3, Fault::NodeDeath { node: "a".into() })
            .at(3, Fault::NodeRevival { node: "z".into() });
        let seen: Vec<(u64, String)> = plan.iter().map(|(t, f)| (t, f.to_string())).collect();
        assert_eq!(
            seen,
            vec![
                (3, "node-death a".to_owned()),
                (3, "node-revival z".to_owned()),
                (9, "node-death b".to_owned()),
            ]
        );
        assert_eq!(plan.faults_at(3).len(), 2);
        assert_eq!(plan.len(), 3);
        assert_eq!(plan.horizon(), 9);
    }

    #[test]
    fn sparse_spaces_only_draw_supported_kinds() {
        let s = FaultSpace { atoms: vec![123], horizon: 16, incidents: 20, ..Default::default() };
        let plan = FaultPlan::random(5, &s);
        assert!(plan
            .iter()
            .all(|(_, f)| matches!(f, Fault::SwitchDenial { .. } | Fault::InvokeFailure { .. })));
    }

    #[test]
    fn crash_spaces_draw_paired_crash_and_restart() {
        let s = FaultSpace {
            crash_nodes: vec!["node1".into(), "node2".into()],
            horizon: 32,
            incidents: 24,
            ..Default::default()
        };
        let plan = FaultPlan::random(11, &s);
        let crashes: Vec<_> = plan
            .iter()
            .filter_map(|(t, f)| match f {
                Fault::NodeCrash { node, .. } => Some((t, node.clone())),
                _ => None,
            })
            .collect();
        assert!(!crashes.is_empty(), "a crash-only space must draw crashes");
        for (tick, node) in &crashes {
            assert!(
                plan.iter().any(|(t, f)| {
                    t > *tick && matches!(f, Fault::NodeRestart { node: n } if n == node)
                }),
                "crash of {node} at {tick} has no later restart"
            );
        }
        let rendered = plan.render();
        assert!(
            rendered.contains("node-crash") && rendered.contains('@'),
            "crash lines carry their crash point: {rendered}"
        );
    }

    #[test]
    fn spaces_without_crash_nodes_never_draw_crashes() {
        // The golden chaos seeds rely on this: the crash kind only enters
        // the draw when a space opts in, so every pre-existing space keeps
        // drawing byte-identical plans.
        for seed in [1u64, 42, 99, 20_260_806] {
            let plan = FaultPlan::random(seed, &space());
            assert!(
                plan.iter().all(|(_, f)| {
                    !matches!(f, Fault::NodeCrash { .. } | Fault::NodeRestart { .. })
                }),
                "seed {seed} drew a crash from a space with no crash_nodes"
            );
        }
    }

    #[test]
    fn txn_crash_spaces_draw_txn_crashes() {
        let s = FaultSpace {
            txn_crashes: vec![
                TxnCrashPoint::BeforePrepare,
                TxnCrashPoint::AfterDecision,
                TxnCrashPoint::MidCommitFanout { shard: 0 },
            ],
            horizon: 32,
            incidents: 16,
            ..Default::default()
        };
        let plan = FaultPlan::random(13, &s);
        assert!(
            plan.iter().any(|(_, f)| matches!(f, Fault::TxnCrash { .. })),
            "a space with txn_crashes must draw txn crashes: {}",
            plan.render()
        );
        assert!(plan.render().contains("txn-crash @"), "{}", plan.render());
    }

    #[test]
    fn spaces_without_txn_crashes_never_draw_them() {
        // Same golden-stability contract as `crash_nodes`: the txn-crash
        // kind only enters the draw when a space opts in, so every
        // pre-existing seeded space keeps drawing byte-identical plans.
        for seed in [1u64, 42, 99, 20_260_806] {
            let plan = FaultPlan::random(seed, &space());
            assert!(
                plan.iter().all(|(_, f)| !matches!(f, Fault::TxnCrash { .. })),
                "seed {seed} drew a txn crash from a space with no txn_crashes"
            );
        }
    }
}
