//! # faultsim — deterministic fault injection across the stack
//!
//! The paper argues the database machine's new slant must survive "units
//! failing — perhaps mid way through answering a query". This crate makes
//! that claim testable: a [`FaultPlan`] is a seeded, tick-indexed schedule
//! of faults — link drops, latency spikes, partitions, node death, CPU
//! pressure, component start/bind failures, SWITCH denials, ORB
//! invocation failures — built from [`adm_rng`] with no wall-clock input,
//! so the same seed replays a byte-identical fault timeline
//! ([`FaultPlan::render`] / [`FaultPlan::digest`]).
//!
//! Each subsystem exposes its own minimal injection surface and pays
//! nothing when no plan is armed:
//!
//! * `ubinet` — [`EnvEvent`](ubinet::sim::EnvEvent) schedule entries
//!   (link up/down, latency, partition/heal, device death);
//! * `compkit` — [`StepFaults`](compkit::adaptivity::StepFaults) gating
//!   each reconfiguration step, [`CrashHook`](compkit::journal::CrashHook)
//!   crash points striking at journal-record boundaries, and the
//!   pre-existing [`FlakyFactory`](compkit::runtime::FlakyFactory) start
//!   failures;
//! * `gokernel` — [`InvokeFaults`](gokernel::orb::InvokeFaults) denying
//!   ORB invocations by call index;
//! * `patia` — [`SwitchGate`](patia::server::SwitchGate) denying SWITCH
//!   migrations, plus kill/revive/pressure controls.
//!
//! The [`adapters`] feed all four surfaces from one plan, so a single
//! seed drives a coherent chaos storyline through the whole stack. The
//! root-level `chaos_e2e` conformance suite is built on exactly this.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adapters;
pub mod coverage;
pub mod plan;

pub use adapters::{
    flaky_factory, schedule_network, PatiaDriver, PlanCrashHook, PlanInvokeFaults, PlanStepFaults,
    PlanSwitchGate, PlanTxnCrashHook,
};
pub use coverage::{CoverageEntry, CoverageLedger, HookCoverage};
pub use plan::{Fault, FaultPlan, FaultSpace};
