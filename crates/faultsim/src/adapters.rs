//! Plan-driven injectors: one adapter per subsystem hook.
//!
//! Each subsystem exposes a minimal injection surface (ubinet's
//! [`EnvEvent`] schedule, compkit's [`StepFaults`], gokernel's
//! [`InvokeFaults`], patia's [`SwitchGate`] and kill/pressure methods);
//! the adapters here read a single [`FaultPlan`] and feed every surface
//! from the same timeline, so one seed drives the whole stack.

use crate::plan::{Fault, FaultPlan};
use adl::ast::Binding;
use compkit::adaptivity::StepFaults;
use compkit::journal::{CrashHook, CrashPoint, CrashSite};
use compkit::runtime::FlakyFactory;
use gokernel::component::{ComponentId, InterfaceId};
use gokernel::orb::InvokeFaults;
use patia::atom::AtomId;
use patia::server::{PatiaServer, SwitchGate};
use std::collections::{BTreeMap, BTreeSet};
use txn::{TxnCrashHook, TxnCrashPoint, TxnCrashSite};
use ubinet::sim::{EnvEvent, Simulator};

/// Schedule the plan's network faults (flaps, spikes, partitions, node
/// death) into a ubinet simulator. Returns how many events were scheduled;
/// non-network faults are left for the other adapters.
pub fn schedule_network(plan: &FaultPlan, sim: &mut Simulator) -> usize {
    let mut scheduled = 0;
    for (tick, fault) in plan.iter() {
        let ev = match fault {
            Fault::LinkDown { a, b } => {
                EnvEvent::SetLinkUp { a: a.clone(), b: b.clone(), up: false }
            }
            Fault::LinkUp { a, b } => EnvEvent::SetLinkUp { a: a.clone(), b: b.clone(), up: true },
            Fault::LatencySpike { a, b, latency } => {
                EnvEvent::SetLatency { a: a.clone(), b: b.clone(), latency: *latency }
            }
            Fault::Partition { island } => EnvEvent::Partition { island: island.clone() },
            Fault::Heal { island } => EnvEvent::Heal { island: island.clone() },
            Fault::NodeDeath { node } | Fault::NodeCrash { node, .. } => {
                EnvEvent::SetAlive { device: node.clone(), alive: false }
            }
            Fault::NodeRevival { node } | Fault::NodeRestart { node } => {
                EnvEvent::SetAlive { device: node.clone(), alive: true }
            }
            _ => continue,
        };
        sim.schedule(tick, ev);
        scheduled += 1;
    }
    scheduled
}

/// A [`FlakyFactory`] that fails creation of every component the plan
/// schedules a [`Fault::StartFailure`] for.
#[must_use]
pub fn flaky_factory(plan: &FaultPlan) -> FlakyFactory {
    FlakyFactory::failing(plan.iter().filter_map(|(_, f)| match f {
        Fault::StartFailure { component } => Some(component.clone()),
        _ => None,
    }))
}

/// [`StepFaults`] injector driven by the plan's [`Fault::BindFailure`]
/// entries: the first bind landing on a named server fails once.
#[derive(Debug, Clone)]
pub struct PlanStepFaults {
    bind: BTreeSet<String>,
}

impl PlanStepFaults {
    /// Collect the plan's bind failures.
    #[must_use]
    pub fn new(plan: &FaultPlan) -> Self {
        let bind = plan
            .iter()
            .filter_map(|(_, f)| match f {
                Fault::BindFailure { server } => Some(server.clone()),
                _ => None,
            })
            .collect();
        Self { bind }
    }

    /// Bind failures not yet consumed.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.bind.len()
    }
}

impl StepFaults for PlanStepFaults {
    fn fail_bind(&mut self, b: &Binding) -> Option<String> {
        let server = b.to.instance.as_deref()?;
        if self.bind.remove(server) {
            Some(format!("injected bind failure on {server}"))
        } else {
            None
        }
    }
}

/// [`InvokeFaults`] injector: the ORB calls whose global indices the plan
/// names fail, each exactly once.
#[derive(Debug, Clone)]
pub struct PlanInvokeFaults {
    calls: BTreeSet<u64>,
}

impl PlanInvokeFaults {
    /// Collect the plan's invocation failures.
    #[must_use]
    pub fn new(plan: &FaultPlan) -> Self {
        let calls = plan
            .iter()
            .filter_map(|(_, f)| match f {
                Fault::InvokeFailure { call_index } => Some(*call_index),
                _ => None,
            })
            .collect();
        Self { calls }
    }
}

impl InvokeFaults for PlanInvokeFaults {
    fn deny(
        &mut self,
        call_index: u64,
        _caller: ComponentId,
        _iface: InterfaceId,
    ) -> Option<String> {
        self.calls.remove(&call_index).then(|| format!("injected failure of call {call_index}"))
    }
}

/// [`SwitchGate`] injector: a [`Fault::SwitchDenial`] armed at tick `T`
/// denies that atom's first switch attempt at or after `T`.
#[derive(Debug, Clone)]
pub struct PlanSwitchGate {
    pending: BTreeMap<u32, Vec<u64>>,
}

impl PlanSwitchGate {
    /// Collect the plan's switch denials.
    #[must_use]
    pub fn new(plan: &FaultPlan) -> Self {
        let mut pending: BTreeMap<u32, Vec<u64>> = BTreeMap::new();
        for (tick, fault) in plan.iter() {
            if let Fault::SwitchDenial { atom } = fault {
                pending.entry(*atom).or_default().push(tick);
            }
        }
        Self { pending }
    }
}

impl SwitchGate for PlanSwitchGate {
    fn deny(&mut self, tick: u64, atom: AtomId, _from: &str, _to: &str) -> Option<String> {
        let armed = self.pending.get_mut(&atom.0)?;
        let pos = armed.iter().position(|t| *t <= tick)?;
        let at = armed.remove(pos);
        Some(format!("switch denial armed at tick {at}"))
    }
}

/// [`CrashHook`] injector: carries the plan's [`Fault::NodeCrash`] points
/// into compkit's crash model. Points fire in timeline order, each
/// exactly once, at the first matching journal-record boundary of
/// whatever transaction is then in flight.
#[derive(Debug, Clone)]
pub struct PlanCrashHook {
    pending: Vec<CrashPoint>,
    fired: usize,
}

impl PlanCrashHook {
    /// Collect the plan's crash points in timeline order.
    #[must_use]
    pub fn new(plan: &FaultPlan) -> Self {
        let pending = plan
            .iter()
            .filter_map(|(_, f)| match f {
                Fault::NodeCrash { point, .. } => Some(*point),
                _ => None,
            })
            .collect();
        Self { pending, fired: 0 }
    }

    /// Crash points not yet fired.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.pending.len() - self.fired
    }

    /// Crash points already fired.
    #[must_use]
    pub fn fired(&self) -> usize {
        self.fired
    }

    /// Rendered labels of the crash points that never fired.
    #[must_use]
    pub fn unfired_labels(&self) -> Vec<String> {
        self.pending[self.fired..].iter().map(ToString::to_string).collect()
    }
}

impl CrashHook for PlanCrashHook {
    fn crash(&mut self, site: &CrashSite) -> bool {
        let Some(point) = self.pending.get(self.fired) else { return false };
        if point.matches(site) {
            self.fired += 1;
            return true;
        }
        false
    }
}

/// [`TxnCrashHook`] injector: carries the plan's [`Fault::TxnCrash`]
/// points into the `txn` crate's two-phase-commit crash model. Points
/// fire in timeline order, each exactly once, at the first matching
/// protocol boundary of whatever global transaction is then in flight.
#[derive(Debug, Clone)]
pub struct PlanTxnCrashHook {
    pending: Vec<TxnCrashPoint>,
    fired: usize,
}

impl PlanTxnCrashHook {
    /// Collect the plan's 2PC crash points in timeline order.
    #[must_use]
    pub fn new(plan: &FaultPlan) -> Self {
        let pending = plan
            .iter()
            .filter_map(|(_, f)| match f {
                Fault::TxnCrash { point } => Some(*point),
                _ => None,
            })
            .collect();
        Self { pending, fired: 0 }
    }

    /// Crash points not yet fired.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.pending.len() - self.fired
    }

    /// Crash points already fired.
    #[must_use]
    pub fn fired(&self) -> usize {
        self.fired
    }

    /// Rendered labels of the crash points that never fired.
    #[must_use]
    pub fn unfired_labels(&self) -> Vec<String> {
        self.pending[self.fired..].iter().map(ToString::to_string).collect()
    }
}

impl TxnCrashHook for PlanTxnCrashHook {
    fn crash(&mut self, site: &TxnCrashSite) -> bool {
        let Some(point) = self.pending.get(self.fired) else { return false };
        if point.matches(site) {
            self.fired += 1;
            return true;
        }
        false
    }
}

/// Drives a [`PatiaServer`] through a plan: [`PatiaDriver::arm`] installs
/// the switch gate once, then [`PatiaDriver::apply`] is called every tick
/// *before* [`PatiaServer::tick`] to land that tick's node, pressure and
/// network faults.
#[derive(Debug, Clone)]
pub struct PatiaDriver {
    plan: FaultPlan,
}

impl PatiaDriver {
    /// A driver over `plan`.
    #[must_use]
    pub fn new(plan: FaultPlan) -> Self {
        Self { plan }
    }

    /// The plan being driven.
    #[must_use]
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Install the plan's switch-denial gate on the server.
    pub fn arm(&self, server: &mut PatiaServer) {
        server.arm_switch_gate(Box::new(PlanSwitchGate::new(&self.plan)));
    }

    /// Apply every fault the plan schedules at `tick`. Returns how many
    /// were applied (switch denials are handled by the armed gate and
    /// component faults by the compkit/gokernel adapters, so they don't
    /// count here).
    pub fn apply(&self, server: &mut PatiaServer, tick: u64) -> usize {
        let mut applied = 0;
        for fault in self.plan.faults_at(tick) {
            match fault {
                Fault::NodeDeath { node } | Fault::NodeCrash { node, .. } => {
                    server.kill_node(node);
                }
                Fault::NodeRevival { node } | Fault::NodeRestart { node } => {
                    server.revive_node(node);
                }
                Fault::CpuPressure { node, permille } => {
                    server.inject_pressure(node, f64::from(*permille) / 1000.0);
                }
                Fault::PressureRelease { node } => server.clear_pressure(node),
                Fault::LinkDown { a, b } => {
                    server.network_mut().set_link_up(a, b, false);
                }
                Fault::LinkUp { a, b } => {
                    server.network_mut().set_link_up(a, b, true);
                }
                Fault::LatencySpike { a, b, latency } => {
                    server.network_mut().set_latency(a, b, *latency);
                }
                Fault::Partition { island } => {
                    server.network_mut().partition(island);
                }
                Fault::Heal { island } => {
                    server.network_mut().heal(island);
                }
                _ => continue,
            }
            applied += 1;
        }
        applied
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use patia::server::ServerConfig;
    use ubinet::device::{Device, DeviceKind};
    use ubinet::link::{BandwidthProfile, Link, LinkKind};
    use ubinet::net::Network;

    fn two_node_sim() -> Simulator {
        let mut net = Network::new();
        net.add_device(Device::new("a", DeviceKind::Server));
        net.add_device(Device::new("b", DeviceKind::Server));
        net.add_link(Link::new("a", "b", LinkKind::Wired, BandwidthProfile::Constant(100.0), 1));
        Simulator::new(net, 0.0)
    }

    #[test]
    fn network_faults_schedule_and_strike_on_time() {
        let plan = FaultPlan::new(1)
            .at(2, Fault::LinkDown { a: "a".into(), b: "b".into() })
            .at(5, Fault::LinkUp { a: "a".into(), b: "b".into() })
            .at(7, Fault::SwitchDenial { atom: 123 });
        let mut sim = two_node_sim();
        assert_eq!(schedule_network(&plan, &mut sim), 2, "switch denial is not a network event");
        sim.advance(2);
        assert!(sim.net.hop_distance("a", "b").is_err(), "link down at tick 2");
        sim.advance(5);
        assert!(sim.net.hop_distance("a", "b").is_ok(), "link restored at tick 5");
    }

    #[test]
    fn plan_switch_gate_denies_once_per_armed_denial() {
        let plan = FaultPlan::new(2).at(4, Fault::SwitchDenial { atom: 123 });
        let mut gate = PlanSwitchGate::new(&plan);
        assert!(gate.deny(3, AtomId(123), "n1", "n2").is_none(), "not armed yet");
        assert!(gate.deny(6, AtomId(153), "n1", "n2").is_none(), "other atom untouched");
        assert!(gate.deny(6, AtomId(123), "n1", "n2").is_some(), "armed denial fires");
        assert!(gate.deny(7, AtomId(123), "n1", "n2").is_none(), "consumed");
    }

    #[test]
    fn patia_driver_applies_node_faults_at_their_tick() {
        let plan = FaultPlan::new(3)
            .at(1, Fault::NodeDeath { node: "node1".into() })
            .at(2, Fault::NodeRevival { node: "node1".into() })
            .at(2, Fault::CpuPressure { node: "node2".into(), permille: 900 });
        let (net, atoms, constraints) = ServerConfig::paper_fleet();
        let mut server = PatiaServer::new(net, atoms, constraints, ServerConfig::default());
        let driver = PatiaDriver::new(plan);
        assert_eq!(driver.apply(&mut server, 1), 1);
        assert!(!server.network().device("node1").unwrap().alive);
        assert_eq!(driver.apply(&mut server, 2), 2);
        assert!(server.network().device("node1").unwrap().alive);
        assert_eq!(driver.apply(&mut server, 3), 0, "nothing scheduled later");
    }

    #[test]
    fn flaky_factory_collects_start_failures() {
        use compkit::runtime::ComponentFactory;
        let plan = FaultPlan::new(4).at(1, Fault::StartFailure { component: "codec".into() });
        let mut factory = flaky_factory(&plan);
        assert!(factory.create("codec", "T", 0).is_err());
        assert!(factory.create("cache", "T", 0).is_ok());
    }

    #[test]
    fn plan_step_faults_fire_once_per_named_server() {
        use adl::ast::PortRef;
        let plan = FaultPlan::new(5).at(1, Fault::BindFailure { server: "gw".into() });
        let mut faults = PlanStepFaults::new(&plan);
        assert_eq!(faults.pending(), 1);
        let other = Binding { from: PortRef::on("u", "need"), to: PortRef::on("cache", "p") };
        assert!(faults.fail_bind(&other).is_none(), "non-matching binding untouched");
        assert_eq!(faults.pending(), 1);
        let hit = Binding { from: PortRef::on("u", "need"), to: PortRef::on("gw", "p") };
        assert!(faults.fail_bind(&hit).is_some(), "armed bind failure fires");
        assert_eq!(faults.pending(), 0);
        assert!(faults.fail_bind(&hit).is_none(), "consumed after one strike");
    }

    #[test]
    fn plan_invoke_faults_deny_exactly_the_armed_call_index() {
        let plan = FaultPlan::new(6).at(3, Fault::InvokeFailure { call_index: 7 });
        let mut faults = PlanInvokeFaults::new(&plan);
        let caller = ComponentId(1);
        let iface = InterfaceId(2);
        assert!(faults.deny(6, caller, iface).is_none(), "other call index untouched");
        assert!(faults.deny(7, caller, iface).is_some(), "armed call denied");
        assert!(faults.deny(7, caller, iface).is_none(), "denial consumed");
    }

    #[test]
    fn plan_crash_hook_fires_each_point_once_in_timeline_order() {
        let plan = FaultPlan::new(7)
            .at(2, Fault::NodeCrash { node: "node1".into(), point: CrashPoint::BeforeCommit })
            .at(9, Fault::NodeRestart { node: "node1".into() });
        let mut hook = PlanCrashHook::new(&plan);
        assert_eq!(hook.pending(), 1);
        assert!(!hook.crash(&CrashSite::Intent), "wrong site does not fire");
        assert!(!hook.crash(&CrashSite::AfterCommit), "wrong site does not fire");
        assert_eq!(hook.pending(), 1, "misses do not consume the point");
        assert!(hook.crash(&CrashSite::BeforeCommit), "matching site fires");
        assert_eq!((hook.pending(), hook.fired()), (0, 1));
        assert!(!hook.crash(&CrashSite::BeforeCommit), "point fires at most once");
    }

    #[test]
    fn plan_crash_hook_holds_later_points_until_earlier_ones_fire() {
        let plan = FaultPlan::new(8)
            .at(
                1,
                Fault::NodeCrash {
                    node: "node1".into(),
                    point: CrashPoint::MidPlan { after_steps: 1 },
                },
            )
            .at(5, Fault::NodeCrash { node: "node2".into(), point: CrashPoint::AfterCommit });
        let mut hook = PlanCrashHook::new(&plan);
        assert_eq!(hook.pending(), 2);
        assert!(!hook.crash(&CrashSite::AfterCommit), "second point waits its turn");
        assert!(hook.crash(&CrashSite::AfterStep { index: 0 }), "first point fires");
        assert!(hook.crash(&CrashSite::AfterCommit), "then the second");
        assert_eq!(hook.pending(), 0);
    }

    #[test]
    fn schedule_network_maps_crash_and_restart_to_alive_flips() {
        let plan = FaultPlan::new(9)
            .at(2, Fault::NodeCrash { node: "a".into(), point: CrashPoint::BeforeCommit })
            .at(6, Fault::NodeRestart { node: "a".into() });
        let mut sim = two_node_sim();
        assert_eq!(schedule_network(&plan, &mut sim), 2);
        sim.advance(2);
        assert!(!sim.net.device("a").unwrap().alive, "crash takes the node down");
        sim.advance(6);
        assert!(sim.net.device("a").unwrap().alive, "restart brings it back");
    }
}
