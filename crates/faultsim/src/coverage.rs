//! Crash-hook coverage accounting.
//!
//! A fault matrix is only as strong as the crash points it actually
//! reaches: a scripted crash that never fires means the protocol path it
//! was supposed to interrupt was never executed, and the matrix cell
//! silently degenerates into a fault-free run. The [`CoverageLedger`]
//! closes that hole — scenarios record every armed hook at teardown and
//! fail the cell if any point is still pending ([`CoverageLedger::unfired`]).

use crate::adapters::{PlanCrashHook, PlanTxnCrashHook};
use std::fmt::Write as _;

/// Anything that arms crash points and can report how many fired.
///
/// Implemented for the plan-driven hooks ([`PlanCrashHook`],
/// [`PlanTxnCrashHook`]) and the single-shot scripted crashes
/// ([`compkit::journal::PlannedCrash`], [`txn::PlannedTxnCrash`]), so one
/// ledger can audit a whole scenario's injection surfaces.
pub trait HookCoverage {
    /// How many crash points the hook was armed with.
    fn armed(&self) -> usize;
    /// How many of those points actually fired.
    fn fired_points(&self) -> usize;
    /// Rendered labels of the points that never fired. May be empty even
    /// when points are pending, if the hook cannot name them; the ledger
    /// then falls back to the entry name and a count.
    fn unfired_labels(&self) -> Vec<String> {
        Vec::new()
    }
}

impl HookCoverage for PlanCrashHook {
    fn armed(&self) -> usize {
        self.fired() + self.pending()
    }
    fn fired_points(&self) -> usize {
        self.fired()
    }
    fn unfired_labels(&self) -> Vec<String> {
        PlanCrashHook::unfired_labels(self)
    }
}

impl HookCoverage for PlanTxnCrashHook {
    fn armed(&self) -> usize {
        self.fired() + self.pending()
    }
    fn fired_points(&self) -> usize {
        self.fired()
    }
    fn unfired_labels(&self) -> Vec<String> {
        PlanTxnCrashHook::unfired_labels(self)
    }
}

impl HookCoverage for compkit::journal::PlannedCrash {
    fn armed(&self) -> usize {
        1
    }
    fn fired_points(&self) -> usize {
        usize::from(self.fired())
    }
}

impl HookCoverage for txn::PlannedTxnCrash {
    fn armed(&self) -> usize {
        1
    }
    fn fired_points(&self) -> usize {
        usize::from(self.fired())
    }
    fn unfired_labels(&self) -> Vec<String> {
        if self.fired() {
            Vec::new()
        } else {
            vec![self.point().to_string()]
        }
    }
}

/// One audited hook: who it was, what it armed, what actually fired.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoverageEntry {
    /// Caller-chosen hook name (e.g. `"coordinator"`, `"shard s1"`).
    pub name: String,
    /// Points the hook was armed with.
    pub armed: usize,
    /// Points that fired.
    pub fired: usize,
    /// Labels of the unfired points, when the hook can name them.
    pub unfired_labels: Vec<String>,
}

/// Scenario-teardown audit of every armed crash hook.
///
/// Scenarios [`record`](CoverageLedger::record) each hook after the run
/// and assert [`all_fired`](CoverageLedger::all_fired); an unreached
/// crash point shows up in [`unfired`](CoverageLedger::unfired) with its
/// hook name and label, and fails the matrix cell instead of passing it
/// vacuously.
#[derive(Debug, Clone, Default)]
pub struct CoverageLedger {
    entries: Vec<CoverageEntry>,
}

impl CoverageLedger {
    /// An empty ledger.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Audit `hook` under `name`.
    pub fn record(&mut self, name: &str, hook: &dyn HookCoverage) {
        self.entries.push(CoverageEntry {
            name: name.to_owned(),
            armed: hook.armed(),
            fired: hook.fired_points(),
            unfired_labels: hook.unfired_labels(),
        });
    }

    /// Every recorded entry, in recording order.
    #[must_use]
    pub fn entries(&self) -> &[CoverageEntry] {
        &self.entries
    }

    /// True when every armed point of every recorded hook fired.
    #[must_use]
    pub fn all_fired(&self) -> bool {
        self.entries.iter().all(|e| e.fired == e.armed)
    }

    /// One line per unfired point: `"name: label"`, or
    /// `"name: N point(s) unfired"` when the hook cannot name them.
    #[must_use]
    pub fn unfired(&self) -> Vec<String> {
        let mut out = Vec::new();
        for e in &self.entries {
            let missing = e.armed - e.fired;
            if missing == 0 {
                continue;
            }
            if e.unfired_labels.is_empty() {
                out.push(format!("{}: {missing} point(s) unfired", e.name));
            } else {
                for label in &e.unfired_labels {
                    out.push(format!("{}: {label}", e.name));
                }
            }
        }
        out
    }

    /// A rendered audit: one line per entry, then one per unfired point.
    #[must_use]
    pub fn report(&self) -> String {
        let mut out = String::new();
        for e in &self.entries {
            let _ = writeln!(out, "{} armed={} fired={}", e.name, e.armed, e.fired);
        }
        for line in self.unfired() {
            let _ = writeln!(out, "UNFIRED {line}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{Fault, FaultPlan};
    use compkit::journal::{CrashHook, CrashPoint, CrashSite, PlannedCrash};
    use txn::{PlannedTxnCrash, TxnCrashHook, TxnCrashPoint, TxnCrashSite};

    #[test]
    fn fired_planned_crashes_audit_clean() {
        let mut tc = PlannedTxnCrash::new(TxnCrashPoint::BeforePrepare);
        assert!(tc.crash(&TxnCrashSite::BeforePrepare));
        let mut cc = PlannedCrash::new(CrashPoint::BeforeCommit);
        assert!(cc.crash(&CrashSite::BeforeCommit));
        let mut ledger = CoverageLedger::new();
        ledger.record("coordinator", &tc);
        ledger.record("journal", &cc);
        assert!(ledger.all_fired());
        assert!(ledger.unfired().is_empty());
        assert_eq!(ledger.entries().len(), 2);
    }

    #[test]
    fn an_unfired_point_is_named_in_the_audit() {
        let tc = PlannedTxnCrash::new(TxnCrashPoint::AfterDecision);
        let mut ledger = CoverageLedger::new();
        ledger.record("coordinator", &tc);
        assert!(!ledger.all_fired());
        assert_eq!(ledger.unfired(), vec!["coordinator: after-decision".to_owned()]);
        assert!(ledger.report().contains("UNFIRED coordinator: after-decision"));
    }

    #[test]
    fn unnameable_pending_points_fall_back_to_a_count() {
        let cc = PlannedCrash::new(CrashPoint::AfterCommit);
        let mut ledger = CoverageLedger::new();
        ledger.record("journal", &cc);
        assert_eq!(ledger.unfired(), vec!["journal: 1 point(s) unfired".to_owned()]);
    }

    #[test]
    fn plan_hooks_report_their_pending_tail() {
        let plan = FaultPlan::new(0)
            .at(1, Fault::TxnCrash { point: TxnCrashPoint::BeforePrepare })
            .at(2, Fault::TxnCrash { point: TxnCrashPoint::AfterDecision });
        let mut hook = crate::adapters::PlanTxnCrashHook::new(&plan);
        assert!(hook.crash(&TxnCrashSite::BeforePrepare));
        let mut ledger = CoverageLedger::new();
        ledger.record("plan", &hook);
        assert!(!ledger.all_fired());
        assert_eq!(ledger.unfired(), vec!["plan: after-decision".to_owned()]);
    }
}
