//! Trace-query invariants: the causal structure the paper's Adaptation
//! Framework promises, asserted over real traces with `obs::query`
//! instead of eyeballed from renders.
//!
//! Every test sweeps the Table 2 flash crowd plus the CI chaos seed
//! matrix (17, 42, 20260806), so the invariants hold both in the happy
//! path and under injected faults:
//!
//! 1. every SWITCH instant lies **within** a Patia tick span;
//! 2. every load-driven SWITCH (`migrate`/`spread`) is **preceded
//!    within** its tick by a CPU-gauge breach for the same atom on the
//!    same node — monitors → gauges → session manager, in that order;
//! 3. every evacuation is **preceded by** the death of the node it
//!    flees;
//! 4. every reconfiguration span (boot and migration mirror)
//!    **encloses** a committed compkit bind/unbind transaction;
//! 5. tick spans are **pairwise disjoint** — the virtual clock never
//!    double-books the server;
//! 6. every ORB invocation span's duration equals its own
//!    `RpcOutcome::cycles` argument (asserted on a Go! kernel replay);
//! 7. query counts agree with the report and the folded profile
//!    partitions the clock (summed leaf cycles == final virtual clock).

use adm_core::scenario::chaos::{ci_chaos, paper_flash_crowd, run_observed, ChaosParams};
use obs::query::{arg, Query};
use obs::{Obs, Profile, TraceEvent};

/// The CI chaos seed matrix — keep in lockstep with `tests/obs_e2e.rs`.
const CHAOS_SEEDS: [u64; 3] = [17, 42, 20260806];

/// Every scenario the invariants sweep: the flash crowd plus the chaos
/// matrix, each replayed once with observability armed.
fn scenarios() -> Vec<(String, adm_core::scenario::chaos::ChaosReport, Obs)> {
    let mut out = Vec::new();
    let named: Vec<(String, ChaosParams)> =
        std::iter::once(("flash-crowd".to_owned(), paper_flash_crowd()))
            .chain(CHAOS_SEEDS.iter().map(|s| (format!("chaos-seed-{s}"), ci_chaos(*s))))
            .collect();
    for (name, params) in named {
        let (report, o) = run_observed(&params);
        out.push((name, report, o));
    }
    out
}

/// Relation: witness and marker name the same atom.
fn same_atom(w: &TraceEvent, m: &TraceEvent) -> bool {
    arg(w, "atom") == arg(m, "atom")
}

/// Invariant 1 — *within*: every SWITCH instant (migrate, spread,
/// evacuate, failed) happens inside some tick span; the session manager
/// never acts between ticks.
#[test]
fn every_switch_instant_lies_within_a_tick_span() {
    for (name, _, o) in scenarios() {
        let all = Query::over(o.tracer.events());
        let ticks = all.clone().cat("patia").name_prefix("tick:").spans();
        let switches = all.clone().cat("patia").name_prefix("switch:").instants();
        assert!(!ticks.is_empty(), "{name}: ticks must be traced");
        switches
            .each_within(&ticks)
            .unwrap_or_else(|v| panic!("{name}: switch escaped its tick: {v}"));
    }
}

/// Invariant 2 — *precedes within*: every load-driven SWITCH is
/// justified by a CPU-gauge breach for the same atom on the source node,
/// earlier in the same tick. This is Figure 1's monitors→gauges→decision
/// causality, machine-checked.
#[test]
fn every_load_switch_is_preceded_by_a_gauge_breach_in_its_tick() {
    let mut checked = 0usize;
    for (name, _, o) in scenarios() {
        let all = Query::over(o.tracer.events());
        let ticks = all.clone().cat("patia").name_prefix("tick:").spans();
        let breaches = all.clone().cat("patia").name("gauge:breach");
        let moves = all
            .clone()
            .cat("patia")
            .instants()
            .filter(|e| e.name == "switch:migrate" || e.name == "switch:spread");
        checked += moves.count();
        moves
            .each_preceded_within(&breaches, &ticks, |w, m| {
                same_atom(w, m) && arg(w, "node") == arg(m, "from")
            })
            .unwrap_or_else(|v| panic!("{name}: unjustified SWITCH: {v}"));
    }
    assert!(checked >= 3, "the sweep must actually exercise load switches ({checked})");
}

/// Invariant 3 — *precedes*: an evacuation only happens after the node
/// it flees died. The flash crowd injects no faults, so it contributes
/// the vacuous case; the chaos seeds contribute real evacuations.
#[test]
fn every_evacuation_is_preceded_by_the_source_nodes_death() {
    let mut evacuations = 0usize;
    for (name, report, o) in scenarios() {
        let all = Query::over(o.tracer.events());
        let deaths = all.clone().cat("patia").name("fault:node_death");
        let evts = all.clone().cat("patia").name("switch:evacuate");
        evacuations += evts.count();
        assert_eq!(
            evts.count() as u64,
            report.evacuations,
            "{name}: traced evacuations match the report"
        );
        evts.each_preceded_by(&deaths, |w, m| arg(w, "node") == arg(m, "from"))
            .unwrap_or_else(|v| panic!("{name}: evacuation without a prior node death: {v}"));
        if name == "flash-crowd" {
            assert!(
                all.clone().name_prefix("fault:").is_empty(),
                "{name}: a fault-free scenario must trace no fault instants"
            );
        }
    }
    assert!(evacuations > 0, "the chaos seeds must exercise at least one evacuation");
}

/// Invariant 4 — *encloses*: every reconfiguration the chaos glue
/// mirrors (the boot transaction and one per SWITCH) wholly contains a
/// committed compkit bind/unbind transaction — the paper's "migration is
/// a transactional reconfiguration", span-nested.
#[test]
fn every_reconfiguration_span_encloses_a_committed_transaction() {
    for (name, report, o) in scenarios() {
        let all = Query::over(o.tracer.events());
        let commits = all.clone().cat("compkit").name("switch").arg("outcome", "committed");
        let reconfigs =
            all.clone().cat("chaos").spans().filter(|e| e.name == "boot" || e.name == "migration");
        assert_eq!(
            reconfigs.count() as u64,
            report.migrations + 1,
            "{name}: one mirror span per SWITCH plus the boot transaction"
        );
        reconfigs.each_encloses(&commits, |_, _| true).unwrap_or_else(|v| {
            panic!("{name}: reconfiguration without a committed transaction: {v}")
        });
        assert_eq!(
            report.reconfigs_committed,
            report.migrations + 1,
            "{name}: every mirrored plan commits"
        );
        assert_eq!(report.reconfigs_rolled_back, 0, "{name}: no mirrored plan rolls back");
    }
}

/// Invariant 5 — *disjoint*: tick spans partition server time; the
/// virtual clock never runs two ticks at once.
#[test]
fn tick_spans_are_pairwise_disjoint() {
    for (name, _, o) in scenarios() {
        Query::over(o.tracer.events())
            .cat("patia")
            .name_prefix("tick:")
            .spans()
            .pairwise_disjoint()
            .unwrap_or_else(|v| panic!("{name}: overlapping ticks: {v}"));
    }
}

/// Invariant 6 — the trace agrees with the measurement it annotates:
/// every ORB invocation span's duration equals the `cycles` it reported
/// in its `RpcOutcome`, on the Go! kernel's own cycle counter.
#[test]
fn orb_invocation_spans_reproduce_their_rpc_outcome_cycles() {
    use gokernel::kernels::{GoKernel, Kernel};
    use machine::CostModel;
    let obs = Obs::new(CostModel::pentium()).into_handle();
    let mut go = GoKernel::new(CostModel::pentium());
    go.arm_obs(obs.clone());
    let mut cycles = Vec::new();
    for _ in 0..5 {
        cycles.push(go.null_rpc());
    }
    drop(go);
    let o = Obs::try_unwrap(obs).unwrap_or_else(|_| unreachable!("kernel dropped"));
    let invokes = Query::over(o.tracer.events()).cat("gokernel").name("invoke").spans();
    assert_eq!(invokes.count(), cycles.len(), "one span per invocation");
    invokes.dur_equals_arg("cycles").expect("span duration equals RpcOutcome::cycles");
    for ((_, e), reported) in invokes.events().iter().zip(&cycles) {
        assert_eq!(e.dur, *reported, "the span rides the ORB's own counter");
        assert_eq!(arg(e, "outcome"), Some("ok"));
    }
}

/// Invariant 7 — queries, report, and profiler tell one story: SWITCH
/// counts agree across all three views, and the folded stacks partition
/// the final virtual clock.
#[test]
fn query_counts_report_and_profile_agree() {
    for (name, report, o) in scenarios() {
        let all = Query::over(o.tracer.events());
        let moves = all
            .clone()
            .cat("patia")
            .instants()
            .filter(|e| {
                e.name == "switch:migrate"
                    || e.name == "switch:spread"
                    || e.name == "switch:evacuate"
            })
            .count() as u64;
        assert_eq!(moves, report.migrations, "{name}: traced SWITCHes match the report");
        assert_eq!(
            all.clone().cat("patia").name("switch:failed").count() as u64,
            report.failed_switches,
            "{name}: traced failures match the report"
        );

        let profile = Profile::build(o.tracer.events(), o.clock());
        let folded = profile.folded();
        let leaf_sum: u64 = folded
            .lines()
            .map(|l| l.rsplit(' ').next().and_then(|n| n.parse::<u64>().ok()).unwrap_or(0))
            .sum();
        assert_eq!(leaf_sum, o.clock(), "{name}: folded leaf cycles partition the clock");
        assert_eq!(profile.self_total(), o.clock(), "{name}: self+idle partition the clock");
    }
}
