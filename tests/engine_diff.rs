//! Differential tier: the event engine vs the legacy tick loop.
//!
//! The engine refactor's proof obligation is *byte identity*: every
//! committed scenario — the Table 2 flash crowd, the CI chaos seed
//! matrix, and the crash-replay supervision storylines — must produce
//! the same report, the same trace, and the same metrics snapshot
//! whichever core serves it. Not "statistically close": equal. The
//! engine leg drives the identical per-tick workload through the timer
//! wheel ([`run_engine`]), so any divergence is the engine's fault, not
//! the workload's.
//!
//! The committed golden files are additionally re-derived through the
//! engine, pinning it to the same history `obs_e2e` pins the legacy
//! loop to.

use adm_core::scenario::chaos::{
    ci_chaos, paper_flash_crowd, run, run_engine, run_engine_observed, run_observed, ChaosParams,
};
use adm_core::scenario::crashrep::{supervised_storyline, CRASH_SEEDS};
use obs::Obs;
use std::path::PathBuf;

/// Seeds with a committed chaos golden (mirrors `obs_e2e`).
const GOLDEN_SEEDS: [u64; 3] = [17, 42, 20260806];

/// Every committed serving-loop scenario, by name. The `storage-*`
/// variants replay the flash crowd and the supervision storylines with
/// the atoms on the persistent storage engine, so the byte-identity
/// obligation extends to page IO: both cores must hit and miss the
/// buffer pool on exactly the same ticks.
fn committed_scenarios() -> Vec<(String, ChaosParams)> {
    let mut v = vec![("flash-crowd".to_owned(), paper_flash_crowd())];
    for seed in GOLDEN_SEEDS {
        v.push((format!("chaos-seed-{seed}"), ci_chaos(seed)));
    }
    for seed in CRASH_SEEDS {
        v.push((format!("supervised-{seed}"), supervised_storyline(seed)));
    }
    v.push((
        "storage-flash-crowd".to_owned(),
        ChaosParams { storage: true, ..paper_flash_crowd() },
    ));
    for seed in CRASH_SEEDS {
        v.push((
            format!("storage-supervised-{seed}"),
            ChaosParams { storage: true, ..supervised_storyline(seed) },
        ));
    }
    v
}

/// Unobserved leg: report equality for every committed scenario.
#[test]
fn engine_reports_match_legacy_reports() {
    for (name, params) in committed_scenarios() {
        let legacy = run(&params);
        let engine = run_engine(&params);
        assert_eq!(legacy, engine, "{name}: engine report diverged from the legacy loop");
        assert!(engine.conserved(), "{name}: engine run must conserve requests");
    }
}

/// Observed leg: byte-identical traces and metric snapshots — the full
/// cycle-accounted history, not just the aggregates.
#[test]
fn engine_traces_and_metrics_are_byte_identical() {
    for (name, params) in committed_scenarios() {
        let (lr, lo) = run_observed(&params);
        let (er, eo) = run_engine_observed(&params);
        assert_eq!(lr, er, "{name}: observed reports diverged");
        assert_eq!(
            lo.tracer.render(),
            eo.tracer.render(),
            "{name}: trace must be byte-identical across cores"
        );
        assert_eq!(
            lo.metrics.snapshot(),
            eo.metrics.snapshot(),
            "{name}: metrics snapshot must be identical across cores"
        );
        assert_eq!(lo.digests(), eo.digests(), "{name}: digests must agree");
    }
}

/// The storage-backed variants are not vacuous: the pool is actually
/// consulted (batches read atom records), and disarming storage changes
/// the cycle history — so the byte-identity assertions above really do
/// cover the page-IO path.
#[test]
fn storage_backed_variants_bill_the_buffer_pool() {
    let params = ChaosParams { storage: true, ..paper_flash_crowd() };
    let (_, o) = run_observed(&params);
    assert!(
        o.metrics.counter("store.pool.hit") > 0,
        "routed batches must read atom records through the pool"
    );
    let (_, plain) = run_observed(&paper_flash_crowd());
    assert_ne!(
        o.digests(),
        plain.digests(),
        "storage must change the cycle history, or the variant tests nothing"
    );
}

fn goldens_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/goldens")
}

/// The golden snapshot format from `obs_e2e`, reproduced so the engine
/// is pinned to the same committed files.
fn snapshot(scenario: &str, seed: u64, o: &Obs) -> String {
    let (trace_digest, metrics_digest, events) = o.digests();
    let mut s = String::new();
    s.push_str(&format!("scenario: {scenario}\n"));
    s.push_str(&format!("seed: {seed}\n"));
    s.push_str(&format!("trace-digest: {trace_digest:#018x}\n"));
    s.push_str(&format!("trace-events: {events}\n"));
    s.push_str(&format!("metrics-digest: {metrics_digest:#018x}\n"));
    s.push_str("--- metrics ---\n");
    s.push_str(&o.metrics.render());
    s
}

/// The engine reproduces the committed golden files byte for byte — the
/// same pin `obs_e2e` holds the legacy loop to, no regeneration allowed.
#[test]
fn engine_reproduces_committed_goldens() {
    let mut pinned = vec![("flash-crowd".to_owned(), 0u64, paper_flash_crowd())];
    for seed in GOLDEN_SEEDS {
        pinned.push((format!("chaos-seed-{seed}"), seed, ci_chaos(seed)));
    }
    for (name, seed, params) in pinned {
        let (_, o) = run_engine_observed(&params);
        let got = snapshot(&name, seed, &o);
        let path = goldens_dir().join(format!("{name}.txt"));
        let want = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("missing golden {} ({e})", path.display()));
        assert!(
            got == want,
            "{name}: the engine drifted from the committed golden\n{}",
            obs::diff::unified(&want, &got, &format!("golden {name}.txt"), "engine run")
        );
    }
}
