//! Integration: the regenerated Table 1 preserves the paper's shape under
//! both cost-model calibrations, and the SISR safety story holds across
//! the machine/gokernel boundary.

use gokernel::kernels::{all_kernels, KernelKind};
use gokernel::table1::{memory_comparison, table1_rows};
use machine::CostModel;

#[test]
fn table1_shape_holds_on_pentium_calibration() {
    let rows = table1_rows(&CostModel::pentium(), 3);
    assert_eq!(rows.len(), 4);
    for r in &rows {
        assert!(
            (0.5..=1.5).contains(&r.ratio_to_paper),
            "{}: measured {} vs paper {}",
            r.kind.name(),
            r.measured_cycles,
            r.paper_cycles
        );
    }
    // Strict ordering, matching the table.
    assert!(rows[0].measured_cycles > rows[1].measured_cycles);
    assert!(rows[1].measured_cycles > rows[2].measured_cycles);
    assert!(rows[2].measured_cycles > rows[3].measured_cycles);
}

#[test]
fn table1_ordering_survives_a_different_machine() {
    // On a deep-pipeline calibration the absolute numbers move but the
    // ordering — the paper's claim — must not.
    let mut costs: Vec<(KernelKind, u64)> = all_kernels(&CostModel::deep_pipeline())
        .iter_mut()
        .map(|k| (k.kind(), k.null_rpc()))
        .collect();
    costs.sort_by_key(|&(_, c)| c);
    assert_eq!(
        costs.iter().map(|(k, _)| *k).collect::<Vec<_>>(),
        vec![KernelKind::Go, KernelKind::L4, KernelKind::Mach, KernelKind::Monolithic]
    );
}

#[test]
fn go_memory_claim_two_orders_of_magnitude() {
    for (c, i) in [(8, 1), (64, 4), (512, 8)] {
        let m = memory_comparison(c, i);
        assert!(
            m.improvement > 50.0 && m.improvement < 1000.0,
            "{c}x{i}: improvement {:.0}",
            m.improvement
        );
    }
}

#[test]
fn per_interface_cost_is_exactly_32_bytes_marginal() {
    let base = memory_comparison(100, 1).go_bytes;
    let more = memory_comparison(100, 3).go_bytes;
    assert_eq!(more - base, 100 * 2 * 32);
}
