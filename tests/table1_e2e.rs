//! Integration: the regenerated Table 1 preserves the paper's shape under
//! both cost-model calibrations, and the SISR safety story holds across
//! the machine/gokernel boundary.

use gokernel::kernels::{all_kernels, GoKernel, Kernel, KernelKind};
use gokernel::table1::{memory_comparison, table1_rows, verification_cost_row};
use machine::CostModel;

#[test]
fn table1_shape_holds_on_pentium_calibration() {
    let rows = table1_rows(&CostModel::pentium(), 3);
    assert_eq!(rows.len(), 4);
    for r in &rows {
        assert!(
            (0.5..=1.5).contains(&r.ratio_to_paper),
            "{}: measured {} vs paper {}",
            r.kind.name(),
            r.measured_cycles,
            r.paper_cycles
        );
    }
    // Strict ordering, matching the table.
    assert!(rows[0].measured_cycles > rows[1].measured_cycles);
    assert!(rows[1].measured_cycles > rows[2].measured_cycles);
    assert!(rows[2].measured_cycles > rows[3].measured_cycles);
}

#[test]
fn table1_ordering_survives_a_different_machine() {
    // On a deep-pipeline calibration the absolute numbers move but the
    // ordering — the paper's claim — must not.
    let mut costs: Vec<(KernelKind, u64)> = all_kernels(&CostModel::deep_pipeline())
        .iter_mut()
        .map(|k| (k.kind(), k.null_rpc()))
        .collect();
    costs.sort_by_key(|&(_, c)| c);
    assert_eq!(
        costs.iter().map(|(k, _)| *k).collect::<Vec<_>>(),
        vec![KernelKind::Go, KernelKind::L4, KernelKind::Mach, KernelKind::Monolithic]
    );
}

#[test]
fn go_memory_claim_two_orders_of_magnitude() {
    for (c, i) in [(8, 1), (64, 4), (512, 8)] {
        let m = memory_comparison(c, i);
        assert!(
            m.improvement > 50.0 && m.improvement < 1000.0,
            "{c}x{i}: improvement {:.0}",
            m.improvement
        );
    }
}

#[test]
fn per_interface_cost_is_exactly_32_bytes_marginal() {
    let base = memory_comparison(100, 1).go_bytes;
    let more = memory_comparison(100, 3).go_bytes;
    assert_eq!(more - base, 100 * 2 * 32);
}

/// The paper's Table 1 column is fixed history: BSD 55,000 · Mach 3,000 ·
/// L4 665 · Go! 73 cycles. The regenerated rows must carry exactly those
/// reference numbers, in that order.
#[test]
fn table1_reports_the_paper_cycle_numbers_exactly() {
    let rows = table1_rows(&CostModel::pentium(), 3);
    let reported: Vec<(KernelKind, u64)> = rows.iter().map(|r| (r.kind, r.paper_cycles)).collect();
    assert_eq!(
        reported,
        vec![
            (KernelKind::Monolithic, 55_000),
            (KernelKind::Mach, 3_000),
            (KernelKind::L4, 665),
            (KernelKind::Go, 73),
        ]
    );
}

/// The verification-cost addendum (ROADMAP: "Table 1 row for load-time
/// verification cost"): SISR's one-off scan of the null service is billed
/// in cycles and amortises against the per-call saving over L4 within a
/// handful of calls.
#[test]
fn verification_row_is_consistent_and_amortises() {
    let model = CostModel::pentium();
    let row = verification_cost_row(&model);
    assert!(row.verify_cycles > 0, "the scan must cost something");
    assert_eq!(row.go_call_cycles, GoKernel::new(model).null_rpc());
    assert!(row.go_call_cycles < row.l4_call_cycles, "Go! must undercut L4 per call");
    let saving = row.l4_call_cycles - row.go_call_cycles;
    assert_eq!(row.breakeven_calls, row.verify_cycles.div_ceil(saving));
    assert!(
        (1..=20).contains(&row.breakeven_calls),
        "load-time verification must pay for itself quickly, got {} calls",
        row.breakeven_calls
    );
}

/// The acceptance criterion for the observability layer: an armed Go!
/// kernel emits one invocation span per RPC whose duration equals the
/// measured `RpcOutcome.cycles` exactly — the trace *is* the Table 1
/// measurement, not an approximation of it.
#[test]
fn orb_invocation_span_reproduces_the_measured_go_row() {
    let model = CostModel::pentium();
    let mut go = GoKernel::new(model.clone());
    let hub = obs::Obs::new(model.clone()).into_handle();
    go.arm_obs(hub.clone());
    let measured = go.null_rpc();
    assert_eq!(measured, GoKernel::new(model).null_rpc(), "arming obs must not change the cost");
    go.disarm_obs();
    let o = obs::Obs::try_unwrap(hub).expect("kernel disarmed, hub has one owner");
    let spans: Vec<_> =
        o.tracer.events().iter().filter(|e| e.cat == "gokernel" && e.name == "invoke").collect();
    assert_eq!(spans.len(), 1, "one RPC, one span");
    assert_eq!(spans[0].dur, measured, "span duration must equal RpcOutcome.cycles");
    assert_eq!(o.metrics.counter("orb.invocations"), 1);
    let h = o.metrics.histogram("orb.invoke.cycles").expect("invoke histogram");
    assert_eq!((h.count, h.sum, h.min, h.max), (1, measured, measured, measured));
}
