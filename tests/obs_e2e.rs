//! Golden-trace tier: the observability substrate must be *deterministic*
//! — two runs of the same seeded scenario produce byte-identical traces
//! and metric snapshots — and *inert* — arming it must not change what
//! the system does. Both properties are asserted here, and the known CI
//! seeds are additionally pinned against committed golden snapshots so
//! any drift in instrumentation, cost model, or scheduling shows up as a
//! diff in review rather than silently rewriting history.
//!
//! Regenerate the goldens after an intentional change with:
//!
//! ```text
//! cargo xtask update-goldens
//! ```

use adm_core::scenario::chaos::{ci_chaos, paper_flash_crowd, run, run_observed, ChaosParams};
use obs::Obs;
use std::path::PathBuf;

/// The seed the chaos determinism golden runs under; CI overrides it per
/// matrix leg (17, 42, 20260806). Unknown seeds still get the full
/// run-vs-run determinism check — only the file comparison is skipped.
fn chaos_seed() -> u64 {
    std::env::var("CHAOS_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(42)
}

/// Seeds with a committed golden snapshot (the CI matrix).
const GOLDEN_SEEDS: [u64; 3] = [17, 42, 20260806];

fn goldens_dir() -> PathBuf {
    // The test is registered under crates/core, so walk back to the repo
    // root where the goldens live next to the e2e sources.
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/goldens")
}

/// The Table 2 flash-crowd scenario — shared with `figures` and the bench
/// gate via `scenario::chaos`.
fn flash_crowd_params() -> ChaosParams {
    paper_flash_crowd()
}

/// The chaos determinism scenario (mirrors `chaos_e2e` scenario 7) —
/// shared via `scenario::chaos`.
fn chaos_params(seed: u64) -> ChaosParams {
    ci_chaos(seed)
}

/// Render the run's observability snapshot in the golden format: a small
/// digest header (what CI diffs on) followed by the full metrics render
/// (what a human diffs on).
fn snapshot(scenario: &str, seed: u64, o: &Obs) -> String {
    let (trace_digest, metrics_digest, events) = o.digests();
    let mut s = String::new();
    s.push_str(&format!("scenario: {scenario}\n"));
    s.push_str(&format!("seed: {seed}\n"));
    s.push_str(&format!("trace-digest: {trace_digest:#018x}\n"));
    s.push_str(&format!("trace-events: {events}\n"));
    s.push_str(&format!("metrics-digest: {metrics_digest:#018x}\n"));
    s.push_str("--- metrics ---\n");
    s.push_str(&o.metrics.render());
    s
}

/// Run a scenario twice under one seed, assert byte-identical traces and
/// metric snapshots, then pin against the committed golden (or write it
/// under `UPDATE_GOLDENS=1`).
fn assert_golden(name: &str, seed: u64, params: &ChaosParams) {
    let (ra, oa) = run_observed(params);
    let (rb, ob) = run_observed(params);
    assert_eq!(ra, rb, "{name}: reports must replay identically under seed {seed}");
    assert_eq!(
        oa.tracer.render(),
        ob.tracer.render(),
        "{name}: trace must be byte-identical across runs under seed {seed}"
    );
    assert_eq!(
        oa.metrics.snapshot(),
        ob.metrics.snapshot(),
        "{name}: metric snapshot must be identical across runs under seed {seed}"
    );
    assert_eq!(oa.digests(), ob.digests());
    assert!(ra.conserved(), "{name}: conservation must hold under seed {seed}");
    assert!(!oa.tracer.events().is_empty(), "{name}: an armed run must actually record events");
    assert_eq!(oa.tracer.open_spans(), 0, "{name}: every span must be closed");

    let path = goldens_dir().join(format!("{name}.txt"));
    let got = snapshot(name, seed, &oa);
    if std::env::var("UPDATE_GOLDENS").is_ok() {
        std::fs::create_dir_all(goldens_dir()).expect("create goldens dir");
        std::fs::write(&path, &got).expect("write golden");
        println!("updated golden {}", path.display());
        return;
    }
    if name.starts_with("chaos-seed-") && !GOLDEN_SEEDS.contains(&seed) {
        // A custom CHAOS_SEED has no committed golden; the determinism
        // assertions above still ran.
        println!("seed {seed} has no committed golden; skipped file compare");
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {} ({e}); regenerate with `cargo xtask update-goldens`",
            path.display()
        )
    });
    // A drifted golden fails with a unified diff of the snapshot, not just
    // digest values — the reviewer sees *which* metric or digest moved.
    assert!(
        got == want,
        "{name}: observability snapshot drifted from the committed golden; if the change \
         is intentional, regenerate with `cargo xtask update-goldens`\n{}",
        obs::diff::unified(&want, &got, &format!("golden {name}.txt"), "this run")
    );
}

/// Table 2 flash crowd: golden trace + metrics, fixed scenario seed.
#[test]
fn flash_crowd_golden_trace_is_stable() {
    assert_golden("flash-crowd", 0, &flash_crowd_params());
}

/// Chaos determinism under the CI seed matrix: golden per seed.
#[test]
fn chaos_golden_trace_is_stable_under_seed() {
    let seed = chaos_seed();
    assert_golden(&format!("chaos-seed-{seed}"), seed, &chaos_params(seed));
}

/// The inertness guarantee: arming observability must not perturb the
/// run. `run` and `run_observed` agree report-for-report.
#[test]
fn armed_run_matches_disarmed_run_exactly() {
    for params in [flash_crowd_params(), chaos_params(42)] {
        let plain = run(&params);
        let (observed, _) = run_observed(&params);
        assert_eq!(plain, observed, "observability must be inert");
    }
}

/// The registry's cumulative counters must agree with the report's
/// aggregates — the same numbers, two roads.
#[test]
fn registry_counters_agree_with_the_report() {
    let (r, o) = run_observed(&chaos_params(42));
    assert_eq!(o.metrics.counter("patia.requests.arrived"), r.arrivals);
    assert_eq!(o.metrics.counter("patia.requests.completed"), r.completed);
    assert_eq!(o.metrics.counter("patia.requests.dropped"), r.dropped);
    assert_eq!(o.metrics.counter("patia.switch.failed"), r.failed_switches);
    assert_eq!(o.metrics.counter("patia.switch.retries"), r.switch_retries);
    assert_eq!(o.metrics.counter("patia.switch.evacuations"), r.evacuations);
    assert_eq!(o.metrics.counter("patia.requests.degraded"), r.degraded);
    let h = o.metrics.histogram("patia.latency_ticks").expect("latency histogram exists");
    assert_eq!(h.count, r.completed, "every completion is observed exactly once");
}

/// The profiler's attribution and the published metrics must agree: the
/// `profile.self_cycles.*` counters `run_observed` writes into the
/// registry equal a fresh fold of the same trace, name for name and
/// cycle for cycle, and they partition the final virtual clock. This is
/// the `figures --trace` / metrics-snapshot equivalence the bench gate
/// relies on.
#[test]
fn profiler_attribution_agrees_with_published_metrics() {
    for (name, params) in
        [("flash-crowd", flash_crowd_params()), ("chaos-seed-42", chaos_params(42))]
    {
        let (_, o) = run_observed(&params);
        let profile = obs::Profile::build(o.tracer.events(), o.clock());
        let per_cat = profile.per_category();
        assert!(!per_cat.is_empty(), "{name}: attribution must be non-trivial");
        for (cat, cycles) in &per_cat {
            assert_eq!(
                o.metrics.counter(&format!("profile.self_cycles.{cat}")),
                *cycles,
                "{name}: published counter for {cat} matches a fresh fold"
            );
        }
        assert_eq!(o.metrics.counter("profile.clock"), o.clock());
        assert_eq!(
            per_cat.values().sum::<u64>(),
            o.clock(),
            "{name}: per-category self cycles partition the clock"
        );
        // No stray profile.* counters beyond the fold's categories.
        let published = o
            .metrics
            .render()
            .lines()
            .filter(|l| l.trim_start().starts_with("counter profile.self_cycles."))
            .count();
        assert_eq!(
            published,
            per_cat.len(),
            "{name}: registry holds exactly the fold's categories"
        );
    }
}

/// The Chrome-trace exporter must be as deterministic as the trace it
/// renders, and structurally sane enough for `chrome://tracing` to load.
#[test]
fn chrome_export_is_deterministic_and_well_formed() {
    let (_, oa) = run_observed(&flash_crowd_params());
    let (_, ob) = run_observed(&flash_crowd_params());
    let ja = obs::chrome::export(&oa.tracer, "adm");
    assert_eq!(ja, obs::chrome::export(&ob.tracer, "adm"));
    assert!(ja.starts_with("{\"traceEvents\":["));
    assert!(ja.trim_end().ends_with('}'));
    assert!(ja.contains("\"ph\":\"X\""), "complete spans must be exported");
    assert!(ja.contains("\"ph\":\"i\""), "instants must be exported");
    assert!(ja.contains("\"process_name\""));
}
