//! Golden-trace tier: the observability substrate must be *deterministic*
//! — two runs of the same seeded scenario produce byte-identical traces
//! and metric snapshots — and *inert* — arming it must not change what
//! the system does. Both properties are asserted here, and the known CI
//! seeds are additionally pinned against committed golden snapshots so
//! any drift in instrumentation, cost model, or scheduling shows up as a
//! diff in review rather than silently rewriting history.
//!
//! Regenerate the goldens after an intentional change with:
//!
//! ```text
//! UPDATE_GOLDENS=1 cargo test -p adm-core --test obs_e2e
//! ```

use adm_core::scenario::chaos::{run, run_observed, ChaosParams};
use faultsim::{FaultPlan, FaultSpace};
use obs::Obs;
use patia::atom::AtomId;
use patia::workload::FlashCrowd;
use std::path::PathBuf;

/// The seed the chaos determinism golden runs under; CI overrides it per
/// matrix leg (17, 42, 20260806). Unknown seeds still get the full
/// run-vs-run determinism check — only the file comparison is skipped.
fn chaos_seed() -> u64 {
    std::env::var("CHAOS_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(42)
}

/// Seeds with a committed golden snapshot (the CI matrix).
const GOLDEN_SEEDS: [u64; 3] = [17, 42, 20260806];

fn goldens_dir() -> PathBuf {
    // The test is registered under crates/core, so walk back to the repo
    // root where the goldens live next to the e2e sources.
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/goldens")
}

/// The Table 2 flash-crowd scenario: no injected faults, just the paper's
/// load spike on atom 123 with the constraints adapting around it.
fn flash_crowd_params() -> ChaosParams {
    ChaosParams {
        plan: FaultPlan::new(0),
        ticks: 400,
        crowd: Some(FlashCrowd { from: 50, to: 250, target: AtomId(123), multiplier: 30.0 }),
        ..ChaosParams::default()
    }
}

/// The chaos determinism scenario (mirrors `chaos_e2e` scenario 7): a
/// seeded random fault storyline over the paper fleet plus a flash crowd.
fn chaos_params(seed: u64) -> ChaosParams {
    let fleet: Vec<String> =
        ["node1", "node2", "node3", "wp1", "wp2"].iter().map(|s| (*s).to_owned()).collect();
    let space = FaultSpace {
        links: vec![
            ("node1".to_owned(), "node2".to_owned()),
            ("node2".to_owned(), "node3".to_owned()),
            ("node1".to_owned(), "wp1".to_owned()),
        ],
        nodes: fleet,
        atoms: vec![123, 153],
        components: Vec::new(),
        horizon: 250,
        incidents: 10,
    };
    ChaosParams {
        plan: FaultPlan::random(seed, &space),
        ticks: 300,
        crowd: Some(FlashCrowd { from: 60, to: 180, target: AtomId(123), multiplier: 20.0 }),
        ..ChaosParams::default()
    }
}

/// Render the run's observability snapshot in the golden format: a small
/// digest header (what CI diffs on) followed by the full metrics render
/// (what a human diffs on).
fn snapshot(scenario: &str, seed: u64, o: &Obs) -> String {
    let (trace_digest, metrics_digest, events) = o.digests();
    let mut s = String::new();
    s.push_str(&format!("scenario: {scenario}\n"));
    s.push_str(&format!("seed: {seed}\n"));
    s.push_str(&format!("trace-digest: {trace_digest:#018x}\n"));
    s.push_str(&format!("trace-events: {events}\n"));
    s.push_str(&format!("metrics-digest: {metrics_digest:#018x}\n"));
    s.push_str("--- metrics ---\n");
    s.push_str(&o.metrics.render());
    s
}

/// Run a scenario twice under one seed, assert byte-identical traces and
/// metric snapshots, then pin against the committed golden (or write it
/// under `UPDATE_GOLDENS=1`).
fn assert_golden(name: &str, seed: u64, params: &ChaosParams) {
    let (ra, oa) = run_observed(params);
    let (rb, ob) = run_observed(params);
    assert_eq!(ra, rb, "{name}: reports must replay identically under seed {seed}");
    assert_eq!(
        oa.tracer.render(),
        ob.tracer.render(),
        "{name}: trace must be byte-identical across runs under seed {seed}"
    );
    assert_eq!(
        oa.metrics.snapshot(),
        ob.metrics.snapshot(),
        "{name}: metric snapshot must be identical across runs under seed {seed}"
    );
    assert_eq!(oa.digests(), ob.digests());
    assert!(ra.conserved(), "{name}: conservation must hold under seed {seed}");
    assert!(!oa.tracer.events().is_empty(), "{name}: an armed run must actually record events");
    assert_eq!(oa.tracer.open_spans(), 0, "{name}: every span must be closed");

    let path = goldens_dir().join(format!("{name}.txt"));
    let got = snapshot(name, seed, &oa);
    if std::env::var("UPDATE_GOLDENS").is_ok() {
        std::fs::create_dir_all(goldens_dir()).expect("create goldens dir");
        std::fs::write(&path, &got).expect("write golden");
        println!("updated golden {}", path.display());
        return;
    }
    if name.starts_with("chaos-seed-") && !GOLDEN_SEEDS.contains(&seed) {
        // A custom CHAOS_SEED has no committed golden; the determinism
        // assertions above still ran.
        println!("seed {seed} has no committed golden; skipped file compare");
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {} ({e}); regenerate with UPDATE_GOLDENS=1 cargo test -p adm-core --test obs_e2e",
            path.display()
        )
    });
    assert_eq!(
        got, want,
        "{name}: observability snapshot drifted from the committed golden; if the change \
         is intentional, regenerate with UPDATE_GOLDENS=1"
    );
}

/// Table 2 flash crowd: golden trace + metrics, fixed scenario seed.
#[test]
fn flash_crowd_golden_trace_is_stable() {
    assert_golden("flash-crowd", 0, &flash_crowd_params());
}

/// Chaos determinism under the CI seed matrix: golden per seed.
#[test]
fn chaos_golden_trace_is_stable_under_seed() {
    let seed = chaos_seed();
    assert_golden(&format!("chaos-seed-{seed}"), seed, &chaos_params(seed));
}

/// The inertness guarantee: arming observability must not perturb the
/// run. `run` and `run_observed` agree report-for-report.
#[test]
fn armed_run_matches_disarmed_run_exactly() {
    for params in [flash_crowd_params(), chaos_params(42)] {
        let plain = run(&params);
        let (observed, _) = run_observed(&params);
        assert_eq!(plain, observed, "observability must be inert");
    }
}

/// The registry's cumulative counters must agree with the report's
/// aggregates — the same numbers, two roads.
#[test]
fn registry_counters_agree_with_the_report() {
    let (r, o) = run_observed(&chaos_params(42));
    assert_eq!(o.metrics.counter("patia.requests.arrived"), r.arrivals);
    assert_eq!(o.metrics.counter("patia.requests.completed"), r.completed);
    assert_eq!(o.metrics.counter("patia.requests.dropped"), r.dropped);
    assert_eq!(o.metrics.counter("patia.switch.failed"), r.failed_switches);
    assert_eq!(o.metrics.counter("patia.switch.retries"), r.switch_retries);
    assert_eq!(o.metrics.counter("patia.switch.evacuations"), r.evacuations);
    assert_eq!(o.metrics.counter("patia.requests.degraded"), r.degraded);
    let h = o.metrics.histogram("patia.latency_ticks").expect("latency histogram exists");
    assert_eq!(h.count, r.completed, "every completion is observed exactly once");
}

/// The Chrome-trace exporter must be as deterministic as the trace it
/// renders, and structurally sane enough for `chrome://tracing` to load.
#[test]
fn chrome_export_is_deterministic_and_well_formed() {
    let (_, oa) = run_observed(&flash_crowd_params());
    let (_, ob) = run_observed(&flash_crowd_params());
    let ja = obs::chrome::export(&oa.tracer, "adm");
    assert_eq!(ja, obs::chrome::export(&ob.tracer, "adm"));
    assert!(ja.starts_with("{\"traceEvents\":["));
    assert!(ja.trim_end().ends_with('}'));
    assert!(ja.contains("\"ph\":\"X\""), "complete spans must be exported");
    assert!(ja.contains("\"ph\":\"i\""), "instants must be exported");
    assert!(ja.contains("\"process_name\""));
}
