//! Chaos conformance suite: seeded fault storylines driven end-to-end
//! through the stack, asserting the paper's resilience claims hold —
//! "units failing – perhaps mid way through answering a query" must not
//! lose requests, corrupt the component runtime, or panic anything.
//!
//! Every scenario is deterministic: the fault timeline comes from a
//! seeded [`FaultPlan`], never the wall clock. The CI chaos job sweeps
//! the determinism scenario over several seeds via `CHAOS_SEED`.

use adl::ast::{Binding, PortRef};
use adl::config::Configuration;
use adl::diff::diff;
use adm_core::scenario::chaos::{run, ChaosParams};
use compkit::adaptivity::{AdaptivityManager, SwitchError};
use compkit::runtime::{BasicFactory, Runtime};
use compkit::state::StateManager;
use faultsim::{
    flaky_factory, schedule_network, Fault, FaultPlan, FaultSpace, PlanInvokeFaults, PlanStepFaults,
};
use gokernel::component::Rights;
use gokernel::{Orb, OrbError};
use machine::isa::{Instr, Program};
use machine::CostModel;
use patia::atom::AtomId;
use patia::stream::{default_ladder, StreamSession, TickOutcome};
use patia::workload::FlashCrowd;
use std::collections::BTreeMap;
use ubinet::{BandwidthProfile, Device, DeviceKind, Link, LinkKind, Network, Simulator};

/// The seed the determinism sweep runs under; CI overrides it per matrix
/// leg.
fn chaos_seed() -> u64 {
    std::env::var("CHAOS_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(42)
}

/// Scenario 1 — node death mid-flash-crowd. The crowd's victim node dies
/// while saturated; its agents must evacuate and every request must be
/// accounted for.
#[test]
fn node_death_mid_flash_crowd_loses_no_request() {
    let plan = FaultPlan::new(1)
        .at(80, Fault::NodeDeath { node: "node1".into() })
        .at(160, Fault::NodeRevival { node: "node1".into() });
    let params = ChaosParams {
        plan,
        ticks: 400,
        crowd: Some(FlashCrowd { from: 50, to: 250, target: AtomId(123), multiplier: 30.0 }),
        ..ChaosParams::default()
    };
    let r = run(&params);
    assert!(
        r.conserved(),
        "conservation broken: {} arrivals vs {} completed + {} dropped + {} queued",
        r.arrivals,
        r.completed,
        r.dropped,
        r.queued_at_end
    );
    assert!(r.evacuations >= 1, "agents on the corpse must evacuate");
    assert_eq!(r.dropped, 0, "replicas exist, so nothing may be dropped");
    assert!(r.completed > 0);
    assert!(r.switches_consistent, "switch counters must match observed events");
}

/// Scenario 2 — partition during SWITCH. The typing pool is unreachable
/// exactly when constraint 455 wants to spread onto it; attempts fail and
/// back off until the partition heals.
#[test]
fn partition_during_switch_backs_off_then_lands() {
    let island = vec!["wp1".to_owned(), "wp2".to_owned()];
    let plan = FaultPlan::new(2)
        .at(40, Fault::Partition { island: island.clone() })
        .at(150, Fault::Heal { island });
    let params = ChaosParams {
        plan,
        ticks: 400,
        crowd: Some(FlashCrowd { from: 50, to: 250, target: AtomId(123), multiplier: 40.0 }),
        ..ChaosParams::default()
    };
    let r = run(&params);
    assert!(r.conserved());
    assert!(
        r.failed_switches >= 1,
        "switching into the partitioned typing pool must fail, not hang or panic"
    );
    assert!(r.migrations >= 1, "switches must land on reachable nodes or after the heal");
    assert!(r.switches_consistent);
}

/// Scenario 3 — start and bind failures mid-reconfiguration. The
/// Adaptivity Manager must roll back to a bit-identical runtime, then
/// succeed once the faults clear.
#[test]
fn reconfiguration_faults_roll_back_cleanly() {
    let a = Configuration {
        instances: BTreeMap::from([
            ("src".to_owned(), "T".to_owned()),
            ("dst".to_owned(), "U".to_owned()),
        ]),
        bindings: vec![Binding { from: PortRef::on("src", "p"), to: PortRef::on("dst", "q") }]
            .into_iter()
            .collect(),
    };
    let b = Configuration {
        instances: BTreeMap::from([
            ("src".to_owned(), "T".to_owned()),
            ("dst".to_owned(), "U".to_owned()),
            ("cache".to_owned(), "V".to_owned()),
        ]),
        bindings: vec![
            Binding { from: PortRef::on("src", "p"), to: PortRef::on("dst", "q") },
            Binding { from: PortRef::on("src", "p"), to: PortRef::on("cache", "q") },
        ]
        .into_iter()
        .collect(),
    };
    let mut rt = Runtime::new();
    let mut am = AdaptivityManager::new();
    let mut st = StateManager::new();
    am.execute(&mut rt, &diff(&Configuration::default(), &a), &mut BasicFactory, &mut st, 0)
        .expect("boot succeeds");
    let before = rt.clone();

    // Injected bind failure: the switch aborts and rolls back completely.
    let bind_plan = FaultPlan::new(3).at(1, Fault::BindFailure { server: "cache".into() });
    let mut injector = PlanStepFaults::new(&bind_plan);
    let reconf = diff(&rt.configuration(), &b);
    let err = am
        .execute_with_faults(&mut rt, &reconf, &mut BasicFactory, &mut st, 1, &mut injector)
        .unwrap_err();
    assert!(matches!(err, SwitchError::Injected { .. }), "got {err}");
    assert_eq!(rt, before, "bind-failure rollback must restore the runtime bit-for-bit");

    // Injected start failure via the plan-driven flaky factory: same story.
    let start_plan = FaultPlan::new(4).at(1, Fault::StartFailure { component: "cache".into() });
    let mut factory = flaky_factory(&start_plan);
    let reconf = diff(&rt.configuration(), &b);
    am.execute(&mut rt, &reconf, &mut factory, &mut st, 2).unwrap_err();
    assert_eq!(rt, before, "start-failure rollback must restore the runtime bit-for-bit");
    assert_eq!(am.rollbacks_incomplete(), 0);

    // Faults cleared: the same switch lands exactly on the target.
    let reconf = diff(&rt.configuration(), &b);
    am.execute(&mut rt, &reconf, &mut BasicFactory, &mut st, 3).unwrap();
    assert_eq!(rt.configuration(), b);
}

/// Scenario 4 — link flap during codec switchover. A stream's only link
/// drops mid-delivery; the adaptive session swaps codecs and every media
/// second is eventually delivered.
#[test]
fn link_flap_during_codec_switchover_delivers_everything() {
    let mut net = Network::new();
    net.add_device(Device::new("server", DeviceKind::Server));
    net.add_device(Device::new("client", DeviceKind::Pda));
    net.add_link(Link::new(
        "server",
        "client",
        LinkKind::Wireless,
        BandwidthProfile::Constant(200.0),
        1,
    ));
    let mut sim = Simulator::new(net, 0.0);
    let plan = FaultPlan::new(5)
        .at(10, Fault::LinkDown { a: "server".into(), b: "client".into() })
        .at(26, Fault::LinkUp { a: "server".into(), b: "client".into() });
    assert_eq!(schedule_network(&plan, &mut sim), 2);

    let mut session = StreamSession::new(default_ladder(), 60, true);
    let mut stalls_during_flap = 0;
    let mut t = 0u64;
    loop {
        t += 1;
        assert!(t < 10_000, "stream never finished — a request was effectively lost");
        sim.advance(t);
        let bandwidth = sim.net.path_metrics("server", "client", t).map_or(0.0, |(bw, _)| bw);
        match session.tick(bandwidth) {
            TickOutcome::Finished => break,
            TickOutcome::Stalled if (10..26).contains(&t) => stalls_during_flap += 1,
            _ => {}
        }
    }
    assert!(stalls_during_flap >= 1, "a dead link must stall delivery");
    assert!(!session.swaps().is_empty(), "the flap must force a codec switchover");
    assert_eq!(session.position(), 60, "every media second is eventually delivered");
}

/// Scenario 5 — ORB invocation failures. Planned call indices fail with a
/// contained error; every other call completes and the ORB stays healthy.
#[test]
fn orb_invocation_faults_are_contained() {
    let service = Program::new(vec![Instr::MovImm(0, 7), Instr::Halt]).to_bytes();
    let mut orb = Orb::new(1 << 20, CostModel::pentium());
    let caller_ty = orb.load_type("caller", &service).unwrap();
    let callee_ty = orb.load_type("callee", &service).unwrap();
    let caller = orb.instantiate(caller_ty).unwrap();
    let callee = orb.instantiate(callee_ty).unwrap();
    let iface = orb.publish(callee, 0, Rights::PUBLIC, 0).unwrap();

    let plan = FaultPlan::new(6)
        .at(1, Fault::InvokeFailure { call_index: 2 })
        .at(1, Fault::InvokeFailure { call_index: 4 });
    orb.arm_faults(Box::new(PlanInvokeFaults::new(&plan)));
    let mut injected = 0;
    let mut served = 0;
    for _ in 0..8 {
        match orb.invoke(caller, iface, &[]) {
            Ok(out) => {
                assert_eq!(out.result, 7);
                served += 1;
            }
            Err(OrbError::Injected { .. }) => injected += 1,
            Err(e) => panic!("only injected failures are allowed here: {e:?}"),
        }
    }
    assert_eq!(injected, 2, "exactly the two planned calls fail");
    assert_eq!(served, 6);
    assert_eq!(orb.invocations(), 8);
}

/// Scenario 6 — SWITCH denial storm. Every early switch attempt during
/// the crowd is denied; the server backs off, serves degraded, and never
/// drops or spreads inconsistently.
#[test]
fn switch_denial_storm_degrades_but_serves() {
    let mut plan = FaultPlan::new(7);
    for t in [50, 52, 54, 56, 58, 60, 64, 68] {
        plan.push(t, Fault::SwitchDenial { atom: 123 });
    }
    let params = ChaosParams {
        plan,
        ticks: 350,
        crowd: Some(FlashCrowd { from: 50, to: 200, target: AtomId(123), multiplier: 30.0 }),
        ..ChaosParams::default()
    };
    let r = run(&params);
    assert!(r.conserved());
    assert!(r.failed_switches >= 1, "armed denials must be consumed by real attempts");
    assert!(r.degraded >= 1, "requests during the denial window serve degraded");
    assert!(r.completed > 0, "degradation serves rather than drops");
    assert_eq!(r.dropped, 0);
    assert!(r.switches_consistent);
}

/// Scenario 7 — determinism. The same seed yields a byte-identical fault
/// timeline and identical per-tick stats across two full runs. CI sweeps
/// this over several seeds via `CHAOS_SEED`.
#[test]
fn same_seed_replays_identical_timeline_and_stats() {
    let seed = chaos_seed();
    let fleet: Vec<String> =
        ["node1", "node2", "node3", "wp1", "wp2"].iter().map(|s| (*s).to_owned()).collect();
    let space = FaultSpace {
        links: vec![
            ("node1".to_owned(), "node2".to_owned()),
            ("node2".to_owned(), "node3".to_owned()),
            ("node1".to_owned(), "wp1".to_owned()),
        ],
        nodes: fleet,
        atoms: vec![123, 153],
        components: Vec::new(),
        horizon: 250,
        incidents: 10,
        crash_nodes: Vec::new(),
        txn_crashes: Vec::new(),
    };
    let plan = FaultPlan::random(seed, &space);
    assert_eq!(plan.render(), FaultPlan::random(seed, &space).render());
    let params = ChaosParams {
        plan,
        ticks: 300,
        crowd: Some(FlashCrowd { from: 60, to: 180, target: AtomId(123), multiplier: 20.0 }),
        ..ChaosParams::default()
    };
    let (a, b) = (run(&params), run(&params));
    assert_eq!(a.timeline, b.timeline, "fault timeline must be byte-identical");
    assert_eq!(a.plan_digest, b.plan_digest);
    assert_eq!(a.per_tick, b.per_tick, "every TickStats must match across runs");
    assert_eq!(a, b);
    assert!(a.conserved(), "conservation must hold under seed {seed}");
    assert!(a.switches_consistent, "switch counters must stay consistent under seed {seed}");
}
