//! Storage recovery conformance tier: the WAL's crash guarantee under
//! the Atoms, asserted end to end.
//!
//! Part 1 sweeps the (seed × crash point) matrix of
//! `scenario::storerep`: after a crash at any WAL record boundary —
//! after `Begin`, after any op record, either commit edge, mid-way
//! through an abort's undo chain, or inside the recovery scan itself —
//! `recover()` must land the store byte-identical to either the
//! committed or the rolled-back reference, never a hybrid, and a second
//! recovery must be a no-op. The matrix transcript (including the WAL
//! replay length of every cell) is pinned as a golden
//! (`tests/goldens/storerep.txt`; regenerate with
//! `cargo xtask update-goldens`), and recovery cost must surface as
//! `store.wal.replay_len` / `store.recovery` registry counters on the
//! virtual clock.
//!
//! Part 2 crosses layers: a relational table persisted through
//! `query::persist_table` survives an engine crash and reads back
//! byte-identical through a `StoreScan` — the paper's "database machine"
//! loop closed from query operator down to page and back.

use adm_core::scenario::storerep::{
    crash_points, render_matrix, run_cell_observed, sweep, StoreCellReport, STORE_SEEDS,
};
use datacomp::{ColumnType, Schema, Table, Value};
use query::op::{drain, WorkCounter};
use query::{persist_table, StoreScan};
use std::path::PathBuf;
use store::{CrashPoint, NoCrash, PolicyKind, StorageEngine};

fn goldens_dir() -> PathBuf {
    // Registered under crates/core; the goldens live at the repo root
    // next to the e2e sources.
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/goldens")
}

/// Part 1a — the tentpole invariant over the full matrix: every cell
/// settles on exactly one reference state and replays as a no-op.
#[test]
fn every_wal_boundary_recovers_to_committed_or_rolled_back_never_hybrid() {
    let cells = sweep();
    assert_eq!(cells.len(), STORE_SEEDS.len() * crash_points().len(), "the matrix is complete");
    for cell in &cells {
        assert!(
            cell.consistent(),
            "cell must land on exactly one reference and replay as a no-op: {}",
            cell.render_line()
        );
        match cell.point {
            CrashPoint::AfterCommit => {
                assert!(
                    cell.committed(),
                    "post-commit crash must roll forward: {}",
                    cell.render_line()
                );
            }
            _ => {
                assert!(
                    cell.rolled_back(),
                    "pre-commit crash must roll back: {}",
                    cell.render_line()
                );
            }
        }
        let expected_calls =
            if matches!(cell.point, CrashPoint::DuringRecovery { .. }) { 2 } else { 1 };
        assert_eq!(
            cell.recover_calls,
            expected_calls,
            "recovery must settle in the minimum number of passes: {}",
            cell.render_line()
        );
        assert!(
            cell.replayed > 0 && cell.pages_rebuilt > 0,
            "recovery must actually replay the log and rebuild pages: {}",
            cell.render_line()
        );
    }
    // The matrix must exercise both outcomes, not collapse to one.
    assert!(cells.iter().any(StoreCellReport::committed));
    assert!(cells.iter().any(StoreCellReport::rolled_back));
}

/// Part 1b — the matrix transcript is deterministic and pinned as a
/// golden, so any drift in WAL layout, replay length, or recovery order
/// shows up as a reviewable diff.
#[test]
fn store_crash_matrix_golden_is_stable() {
    let got = render_matrix(&sweep());
    assert_eq!(got, render_matrix(&sweep()), "the matrix must replay byte-identically");
    let path = goldens_dir().join("storerep.txt");
    if std::env::var("UPDATE_GOLDENS").is_ok() {
        std::fs::create_dir_all(goldens_dir()).expect("create goldens dir");
        std::fs::write(&path, &got).expect("write golden");
        println!("updated golden {}", path.display());
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {} ({e}); regenerate with `cargo xtask update-goldens`",
            path.display()
        )
    });
    assert!(
        got == want,
        "storage crash matrix drifted from the committed golden; if intentional, regenerate \
         with `cargo xtask update-goldens`\n{}",
        obs::diff::unified(&want, &got, "golden storerep.txt", "this run")
    );
}

/// Part 1c — recovery is work the machine performs: billed on the
/// virtual clock and published to the registry, without perturbing the
/// recovery itself.
#[test]
fn recovery_cost_is_billed_and_published() {
    for &seed in &STORE_SEEDS {
        for point in [CrashPoint::BeforeCommit, CrashPoint::AfterCommit] {
            let (cell, o) = run_cell_observed(seed, point);
            assert_eq!(o.metrics.counter("store.crash"), 1, "the crash itself is published");
            assert_eq!(
                o.metrics.counter("store.recovery"),
                2,
                "settling recovery plus the idempotence replay"
            );
            assert_eq!(
                o.metrics.counter("store.wal.replay_len"),
                2 * cell.replayed as u64,
                "both replays scan the full log"
            );
            if point == CrashPoint::AfterCommit {
                assert!(
                    o.metrics.counter("store.wal.force") >= 1,
                    "a committed victim forces the log"
                );
            }
            assert!(o.clock() > 0, "recovery must cost cycles on the virtual clock");
        }
    }
}

/// Part 2 — cross-layer durability: a relational table persisted into
/// the engine survives a crash; after WAL replay a `StoreScan` returns
/// the rows byte-identical, under either replacement policy.
#[test]
fn persisted_table_survives_crash_and_scans_back_identical() {
    for kind in [PolicyKind::Clock, PolicyKind::Lru] {
        let schema = Schema::new(&[("id", ColumnType::Int), ("payload", ColumnType::Str)])
            .expect("schema is well-formed");
        let mut table = Table::new(schema.clone());
        for i in 0..48 {
            table
                .insert(vec![Value::Int(i), Value::Str(format!("{i:0>120}"))])
                .expect("rows match the schema");
        }
        let mut engine = StorageEngine::with_policy(3, kind);
        persist_table(&table, 0, &mut engine).expect("the table persists in one transaction");

        engine.crash();
        let stats = engine.recover(&mut NoCrash).expect("recovery settles");
        assert!(stats.redone >= 48, "{kind}: every row rolls forward");

        let w = WorkCounter::new();
        let mut scan =
            StoreScan::new(engine, 0, 47, schema, w.clone()).expect("recovered engine scans");
        let rows = drain(&mut scan, 0);
        assert_eq!(rows, table.rows(), "{kind}: recovered rows must be byte-identical");
        assert_eq!(w.snapshot().tuples_moved, 48);
    }
}

/// The matrix replays deterministically — the storage layer adds no
/// hidden nondeterminism below the journal.
#[test]
fn store_matrix_is_deterministic() {
    let a = sweep();
    let b = sweep();
    assert_eq!(a, b, "sweeps must replay identically");
}
