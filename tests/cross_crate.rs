//! Cross-crate integration: the seams between substrates.
//!
//! * ADL figures ↔ component runtime (boot, switch, rollback, flapping);
//! * SISR images ↔ ORB loading (the verified-image typestate crosses the
//!   boundary);
//! * data components ↔ query engine (stale metadata drives the optimiser);
//! * environment simulator ↔ gauges ↔ rules (readings flow end to end).

use adl::figures::{docked_session, fig4_document, wireless_session};
use compkit::adaptivity::AdaptivityManager;
use compkit::gauge::{Gauge, GaugeBoard, GaugeKind};
use compkit::monitor::Monitor;
use compkit::rules::{Action, Expr, RuleSet, SwitchingRule};
use compkit::runtime::{BasicFactory, Runtime};
use compkit::session::SessionManager;
use compkit::state::StateManager;
use datacomp::metadata::Metadata;
use datacomp::{ColumnType, Schema, Table, Value};
use gokernel::component::Rights;
use gokernel::orb::Orb;
use gokernel::sisr::SisrVerifier;
use machine::isa::{Instr, Program};
use machine::CostModel;
use query::exec::AdaptiveJoinExec;
use query::op::WorkCounter;
use query::optimizer::Catalog;
use ubinet::device::{Device, DeviceKind};
use ubinet::link::{BandwidthProfile, Link, LinkKind};
use ubinet::net::Network;
use ubinet::sim::{EnvEvent, Simulator};

#[test]
fn verified_image_crosses_from_sisr_into_the_orb() {
    let verifier = SisrVerifier::new(CostModel::pentium());
    let img = verifier
        .verify_program(&Program::new(vec![Instr::MovImm(0, 9), Instr::Halt]))
        .expect("clean program verifies");
    let mut orb = Orb::new(1 << 20, CostModel::pentium());
    let ty = orb.install_type("svc", img).expect("verified image installs");
    let a = orb.instantiate(ty).unwrap();
    let b = orb.instantiate(ty).unwrap();
    let iface = orb.publish(b, 0, Rights::PUBLIC, 0).unwrap();
    assert_eq!(orb.invoke(a, iface, &[]).unwrap().result, 9);
}

#[test]
fn session_manager_drives_runtime_from_simulator_readings() {
    // Environment: laptop that undocks at tick 5.
    let mut net = Network::new();
    net.add_device(Device::new("laptop", DeviceKind::Laptop));
    net.add_device(Device::new("sensor", DeviceKind::Sensor));
    net.add_link(Link::new(
        "laptop",
        "sensor",
        LinkKind::Wired,
        BandwidthProfile::Constant(100.0),
        1,
    ));
    let mut sim = Simulator::new(net, 0.001);
    sim.schedule(5, EnvEvent::SetDocked { device: "laptop".into(), docked: false });

    // Adaptation loop over the Figure 4 model.
    let mut board = GaugeBoard::new();
    board.add_monitor(Monitor::new("dock", 4));
    board.add_gauge(Gauge {
        name: "docked".into(),
        monitor: "dock".into(),
        kind: GaugeKind::Latest,
    });
    let mut rules = RuleSet::new();
    rules.add(SwitchingRule {
        id: 1,
        priority: 0,
        constraint: Expr::gauge_lt("docked", 0.5),
        action: Action::SwitchMode("wireless".into()),
    });
    let mut sm = SessionManager::new(fig4_document(), "MobileCBMS", "docked", rules, board);
    let mut rt = Runtime::new();
    let mut am = AdaptivityManager::new();
    let mut st = StateManager::new();
    sm.boot(&mut rt, &mut BasicFactory, &mut am, &mut st, 0).unwrap();
    assert_eq!(rt.configuration(), docked_session(&fig4_document()));

    for t in 1..=10 {
        sim.advance(t);
        let dock = sim.readings()["docked:laptop"];
        sm.board.record("dock", t, dock);
        sm.tick(&mut rt, &mut BasicFactory, &mut am, &mut st, t);
    }
    assert_eq!(sm.mode(), "wireless");
    assert_eq!(rt.configuration(), wireless_session(&fig4_document()));
}

#[test]
fn datacomp_metadata_feeds_the_optimizer() {
    // Build a table, wrap it in Figure 2 metadata with staleness, and let
    // the optimiser consume the stale view end to end.
    let schema = Schema::new(&[("k", ColumnType::Int)]).unwrap();
    let mut t = Table::new(schema);
    for i in 0..1_000 {
        t.insert(vec![Value::Int(i % 20)]).unwrap();
    }
    let mut md = Metadata::fresh(&t);
    md.staleness_error = 0.004;
    let stale_view = md.optimizer_view().unwrap();
    assert_eq!(stale_view.rows, 4, "believes 4 rows where 1000 exist");

    let mut catalog = Catalog::new();
    catalog.register_with_stale_stats("a", t.clone(), 0.004);
    catalog.register_with_stale_stats("b", t, 0.004);
    let w = WorkCounter::new();
    let (_, report) = AdaptiveJoinExec::default().run(&catalog, "a", "b", 0, 0, true, &w).unwrap();
    assert!(report.replans >= 1, "stale Figure 2 metadata must trigger re-planning");
}

#[test]
fn device_failure_breaks_paths_and_best_reroutes() {
    // "the system must be able to cope with units failing".
    let mut net = Network::new();
    net.add_device(Device::new("pda", DeviceKind::Pda));
    net.add_device(Device::new("laptop", DeviceKind::Laptop));
    net.add_device(Device::new("server", DeviceKind::Server));
    net.add_link(Link::new(
        "pda",
        "laptop",
        LinkKind::Wireless,
        BandwidthProfile::Constant(50.0),
        1,
    ));
    net.add_link(Link::new("pda", "server", LinkKind::Wired, BandwidthProfile::Constant(500.0), 1));
    assert_eq!(ubinet::select::best(&net, &["laptop", "server"]), Some("server"));
    net.device_mut("server").unwrap().alive = false;
    assert_eq!(ubinet::select::best(&net, &["laptop", "server"]), Some("laptop"));
    assert!(net.transfer_ticks("pda", "server", 100, 0).is_err());
    assert!(net.transfer_ticks("pda", "laptop", 100, 0).is_ok());
}
