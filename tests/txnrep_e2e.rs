//! Cross-shard transaction conformance tier: the unbundled transaction
//! core's never-hybrid guarantee, asserted end to end.
//!
//! Part 1 sweeps the (seed × crash point × topology) matrix of
//! `scenario::txnrep`: wherever the coordinator or a participant dies,
//! recovery must land *every* shard's runtime-plus-store digest on the
//! committed reference or the rolled-back reference — never a mix — a
//! further recovery must be a no-op, and every armed crash hook must
//! actually have fired. The matrix transcript is pinned as a golden
//! (`tests/goldens/txnrep.txt`; regenerate with
//! `cargo xtask update-goldens`).
//!
//! Part 2 prices the protocol: 2PC shows up as cycle-billed
//! `txn:cross_switch` / `txn:recover` spans whose args agree with the
//! cell report, and as `txn.*` registry counters (one forced vote per
//! shard plus the forced decision on the clean path).
//!
//! Part 3 closes the introspection loop: the same crashed core is
//! queried through the `sys.txns` system table, prepared votes and all.

use adm_core::scenario::txnrep::{
    crash_points, render_matrix, run_cell_observed, run_clean_observed, seeded_world, sweep,
    TxnCellReport, TOPOLOGIES, TXN_SEEDS,
};
use compkit::{AdaptivityManager, NoFaults};
use datacomp::Value;
use obs::query::{arg, Query};
use query::expr::Pred;
use std::path::PathBuf;
use systab::{filter_count, sum_int, txns_table};
use txn::{NoTxnCrash, PlannedTxnCrash, TransactionCore, TxnCrashPoint};

fn goldens_dir() -> PathBuf {
    // Registered under crates/core; the goldens live at the repo root
    // next to the e2e sources.
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/goldens")
}

/// Part 1a — the tentpole invariant over the full matrix: every cell
/// lands all shards on exactly one reference, replays recovery as a
/// no-op, and fires every armed crash hook.
#[test]
fn every_txn_cell_lands_all_shards_on_one_side_never_hybrid() {
    let cells = sweep();
    let expected: usize = TOPOLOGIES.iter().map(|&t| TXN_SEEDS.len() * crash_points(t).len()).sum();
    assert_eq!(cells.len(), expected, "the matrix is complete");
    for cell in &cells {
        assert!(
            cell.consistent(),
            "cell must land whole, replay as a no-op, and fire its hooks: {}",
            cell.render_line()
        );
        match cell.point {
            TxnCrashPoint::AfterDecision | TxnCrashPoint::MidCommitFanout { .. } => {
                assert!(
                    cell.committed(),
                    "a crash after the logged decision must roll forward: {}",
                    cell.render_line()
                );
            }
            _ => {
                assert!(
                    cell.rolled_back(),
                    "presumed abort: no decision record must roll back: {}",
                    cell.render_line()
                );
            }
        }
        let expected_calls =
            if matches!(cell.point, TxnCrashPoint::DuringRecovery { .. }) { 2 } else { 1 };
        assert_eq!(
            cell.recover_calls,
            expected_calls,
            "recovery must settle in the minimum number of passes: {}",
            cell.render_line()
        );
        assert!(cell.scanned > 0, "every cell leaves a log to scan: {}", cell.render_line());
        if cell.topology == 3 && cell.point == TxnCrashPoint::BeforeDecision {
            assert_eq!(
                cell.in_doubt_resolved,
                3,
                "all three prepared shards consult the missing decision: {}",
                cell.render_line()
            );
        }
    }
    // The matrix must exercise both outcomes, not collapse to one.
    assert!(cells.iter().any(TxnCellReport::committed));
    assert!(cells.iter().any(TxnCellReport::rolled_back));
}

/// Part 1b — the matrix transcript is deterministic and pinned as a
/// golden, so any drift in log layout, recovery order, shard digesting,
/// or hook coverage shows up as a reviewable diff.
#[test]
fn txn_matrix_golden_is_stable() {
    let got = render_matrix(&sweep());
    assert_eq!(got, render_matrix(&sweep()), "the matrix must replay byte-identically");
    let path = goldens_dir().join("txnrep.txt");
    if std::env::var("UPDATE_GOLDENS").is_ok() {
        std::fs::create_dir_all(goldens_dir()).expect("create goldens dir");
        std::fs::write(&path, &got).expect("write golden");
        println!("updated golden {}", path.display());
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {} ({e}); regenerate with `cargo xtask update-goldens`",
            path.display()
        )
    });
    assert!(
        got == want,
        "cross-shard txn matrix drifted from the committed golden; if intentional, regenerate \
         with `cargo xtask update-goldens`\n{}",
        obs::diff::unified(&want, &got, "golden txnrep.txt", "this run")
    );
}

/// Part 2a — the crash and its recovery are work the machine performs:
/// billed on the virtual clock, traced as `txn:cross_switch` /
/// `txn:recover` spans whose args agree with the cell report, and
/// published to the registry.
#[test]
fn two_phase_commit_recovery_is_billed_traced_and_published() {
    for point in [TxnCrashPoint::BeforeDecision, TxnCrashPoint::AfterDecision] {
        let (cell, o) = run_cell_observed(17, 2, point);
        let all = Query::over(o.tracer.events());
        let crashed = all.clone().cat("txn").name("cross_switch").arg("outcome", "crashed");
        assert_eq!(crashed.count(), 1, "the crash itself must be traced");
        assert!(
            arg(crashed.events()[0].1, "site").is_some(),
            "the crashed span names its protocol site"
        );
        let recovers = all.clone().cat("txn").name("recover").spans();
        assert_eq!(recovers.count(), 1, "one settled recovery, one span (noop replays are free)");
        let (_, span) = recovers.events()[0];
        assert!(span.dur > 0, "recovery must cost cycles");
        assert_eq!(arg(span, "outcome").unwrap(), cell.outcome.to_string());
        assert_eq!(arg(span, "scanned").unwrap(), cell.scanned.to_string());
        assert_eq!(arg(span, "undone").unwrap(), cell.undone.to_string());
        assert_eq!(arg(span, "in_doubt_resolved").unwrap(), cell.in_doubt_resolved.to_string());
        assert_eq!(o.metrics.counter("txn.switch.crashed"), 1);
        assert_eq!(o.metrics.counter("txn.recovery.runs"), 1);
        assert_eq!(o.metrics.counter("txn.recovery.records_scanned"), cell.scanned as u64);
        assert_eq!(o.metrics.counter("txn.recovery.steps_undone"), cell.undone as u64);
        assert_eq!(
            o.metrics.counter("txn.recovery.in_doubt_resolved"),
            cell.in_doubt_resolved as u64
        );
        assert_eq!(o.metrics.counter("txn.log.replay_len"), cell.scanned as u64);
        assert_eq!(o.tracer.open_spans(), 0, "every span must be closed");
    }
}

/// Part 2b — the clean committed path prices prepare and commit: one
/// forced vote per shard plus the forced decision, and two locked,
/// two-step sub-plans.
#[test]
fn clean_cross_shard_commit_prices_votes_and_decision() {
    let (report, o) = run_clean_observed(17, 2);
    assert_eq!(report.shards, 2);
    assert_eq!(report.steps, 4, "unbind+stop on the source, start+bind on the target");
    assert_eq!(o.metrics.counter("txn.switch.committed"), 1);
    assert_eq!(o.metrics.counter("txn.prepare.shards"), 2);
    assert_eq!(o.metrics.counter("txn.log.force"), 3, "two votes plus the decision");
    assert_eq!(o.metrics.counter("txn.switch.crashed"), 0);
    assert_eq!(o.tracer.open_spans(), 0);
}

/// Part 3 — the introspection loop: a crashed core served through the
/// `sys.txns` system table exposes the prepared votes, the recovery
/// resolves them, and the table reads settled afterwards.
#[test]
fn sys_txns_serves_the_crashed_core_and_its_recovery() {
    let (mut shards, plans) = seeded_world(42, 2);
    let mut core = TransactionCore::new();
    let mut hook = PlannedTxnCrash::new(TxnCrashPoint::BeforeDecision);
    let run = core.execute_cross_shard(&mut shards, &plans, 50, &mut NoFaults, &mut hook);
    assert!(run.is_err(), "the planned crash fires before the decision");

    let mut am = AdaptivityManager::new();
    am.attach_journal();
    let t = txns_table(&core, Some(&am));
    let stat = |name: &str| sum_int(&t, 4, Pred::eq(1, Value::Str(name.to_owned())), None);
    assert_eq!(stat("crashes"), 1);
    assert_eq!(stat("log_live") as usize, core.log().len());
    assert_eq!(
        filter_count(&t, Pred::eq(1, Value::Str("prepared".to_owned())), None),
        2,
        "both shards' votes are visible as sys.txns record rows"
    );
    assert_eq!(
        filter_count(&t, Pred::eq(0, Value::Str("record".to_owned())), None) as usize,
        core.log().len(),
        "one record row per live log record"
    );

    let report = core.recover(&mut shards, &mut NoTxnCrash);
    assert_eq!(report.in_doubt_resolved, 2);
    let t = txns_table(&core, Some(&am));
    let stat = |name: &str| sum_int(&t, 4, Pred::eq(1, Value::Str(name.to_owned())), None);
    assert_eq!(stat("aborted"), 1, "presumed abort lands in the stats");
    assert_eq!(stat("recoveries"), 1);
    assert_eq!(stat("in_doubt_resolved"), 2);
    assert_eq!(stat("log_live"), 0, "recovery ends the txn and truncation reclaims it");
    assert_eq!(stat("locks_held"), 0);
    assert_eq!(stat("journal_live"), 0, "the legacy journal rides along, empty");
}
