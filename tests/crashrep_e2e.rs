//! Crash-replay conformance tier: the adaptation journal's recovery
//! guarantee and the patia supervision layer, asserted end to end.
//!
//! Part 1 sweeps the (seed × crash point) matrix of
//! `scenario::crashrep`: after a crash at any journal-record boundary,
//! `recover()` must land the runtime byte-identical to either the
//! committed or the rolled-back reference — never a hybrid — and a
//! second recovery must be a no-op. The matrix transcript is pinned as
//! a golden (`tests/goldens/crashrep.txt`; regenerate with
//! `cargo xtask update-goldens`), and recovery cost must surface as
//! cycle-billed `compkit:recover` spans plus `compkit.recovery.*`
//! registry counters.
//!
//! Part 2 replays the supervised chaos storyline and asserts the
//! failure-detector/circuit-breaker causality over the real trace:
//! suspicion within `k` missed beats of a crash, no SWITCH toward an
//! open circuit, and readmission after restart.

use adm_core::scenario::chaos::run_observed;
use adm_core::scenario::crashrep::{
    crash_points, render_matrix, run_cell_observed, supervised_storyline, sweep, CrashCellReport,
    CRASH_SEEDS,
};
use compkit::journal::CrashPoint;
use obs::query::{arg, Query};
use obs::TraceEvent;
use std::path::PathBuf;

fn goldens_dir() -> PathBuf {
    // Registered under crates/core; the goldens live at the repo root
    // next to the e2e sources.
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/goldens")
}

/// Part 1a — the tentpole invariant over the full matrix: every cell
/// settles on exactly one reference configuration and replays as a
/// no-op.
#[test]
fn every_crash_cell_recovers_to_committed_or_rolled_back_never_hybrid() {
    let cells = sweep();
    assert_eq!(cells.len(), CRASH_SEEDS.len() * crash_points().len(), "the matrix is complete");
    for cell in &cells {
        assert!(
            cell.consistent(),
            "cell must land on exactly one reference and replay as a no-op: {}",
            cell.render_line()
        );
        match cell.point {
            CrashPoint::AfterCommit => {
                assert!(
                    cell.committed(),
                    "post-commit crash must roll forward: {}",
                    cell.render_line()
                );
            }
            _ => {
                assert!(
                    cell.rolled_back(),
                    "pre-commit crash must roll back: {}",
                    cell.render_line()
                );
            }
        }
        let expected_calls =
            if matches!(cell.point, CrashPoint::DuringRecovery { .. }) { 2 } else { 1 };
        assert_eq!(
            cell.recover_calls,
            expected_calls,
            "recovery must settle in the minimum number of passes: {}",
            cell.render_line()
        );
    }
    // The matrix must exercise both outcomes, not collapse to one.
    assert!(cells.iter().any(CrashCellReport::committed));
    assert!(cells.iter().any(CrashCellReport::rolled_back));
}

/// Part 1b — the matrix transcript is deterministic and pinned as a
/// golden, so any drift in journal layout, recovery order, or digesting
/// shows up as a reviewable diff.
#[test]
fn crash_matrix_golden_is_stable() {
    let got = render_matrix(&sweep());
    assert_eq!(got, render_matrix(&sweep()), "the matrix must replay byte-identically");
    let path = goldens_dir().join("crashrep.txt");
    if std::env::var("UPDATE_GOLDENS").is_ok() {
        std::fs::create_dir_all(goldens_dir()).expect("create goldens dir");
        std::fs::write(&path, &got).expect("write golden");
        println!("updated golden {}", path.display());
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {} ({e}); regenerate with `cargo xtask update-goldens`",
            path.display()
        )
    });
    assert!(
        got == want,
        "crash-replay matrix drifted from the committed golden; if intentional, regenerate \
         with `cargo xtask update-goldens`\n{}",
        obs::diff::unified(&want, &got, "golden crashrep.txt", "this run")
    );
}

/// Part 1c — recovery is work the machine performs, so it is billed on
/// the virtual clock, traced as a `compkit:recover` span whose args
/// agree with the report, and published to the registry.
#[test]
fn recovery_cost_is_billed_traced_and_published() {
    for &seed in &CRASH_SEEDS {
        for point in [CrashPoint::MidPlan { after_steps: 3 }, CrashPoint::AfterCommit] {
            let (cell, o) = run_cell_observed(seed, point);
            let all = Query::over(o.tracer.events());
            let recovers = all.clone().cat("compkit").name("recover").spans();
            assert_eq!(
                recovers.count(),
                1,
                "one settled recovery, one span (noop replays are free)"
            );
            let (_, span) = recovers.events()[0];
            assert!(span.dur > 0, "recovery must cost cycles");
            assert_eq!(arg(span, "scanned").unwrap(), cell.records_scanned.to_string());
            assert_eq!(arg(span, "undone").unwrap(), cell.undone.to_string());
            assert_eq!(arg(span, "outcome").unwrap(), cell.outcome.to_string());
            // The crashed switchover is also visible: a compkit:switch
            // span with outcome "crashed", never "committed".
            assert_eq!(
                all.clone().cat("compkit").name("switch").arg("outcome", "crashed").count(),
                1,
                "the crash itself must be traced"
            );
            assert_eq!(o.metrics.counter("compkit.switch.crashed"), 1);
            assert_eq!(o.metrics.counter("compkit.recovery.runs"), 1);
            assert_eq!(
                o.metrics.counter("compkit.recovery.records_scanned"),
                cell.records_scanned as u64
            );
            assert_eq!(o.metrics.counter("compkit.recovery.steps_undone"), cell.undone as u64);
            assert_eq!(o.tracer.open_spans(), 0, "every span must be closed");
        }
    }
}

/// The tick number of the `tick:N` span enclosing `e`, if any.
fn enclosing_tick(events: &[TraceEvent], e: &TraceEvent) -> Option<u64> {
    events
        .iter()
        .filter(|s| s.cat == "patia" && s.name.starts_with("tick:") && s.dur > 0)
        .find(|s| s.ts <= e.ts && e.ts <= s.ts + s.dur)
        .and_then(|s| s.name.strip_prefix("tick:")?.parse().ok())
}

/// The circuit-open intervals `[open_ts, contact_ts)` for `node`,
/// reconstructed from the trace's `circuit:open` / `circuit:half_open` /
/// `circuit:close` instants.
fn open_intervals(events: &[TraceEvent], node: &str) -> Vec<(u64, u64)> {
    let mut intervals = Vec::new();
    let mut open_since: Option<u64> = None;
    for e in events {
        if e.cat != "patia" || arg(e, "node") != Some(node) {
            continue;
        }
        match e.name.as_str() {
            "circuit:open" => open_since = open_since.or(Some(e.ts)),
            "circuit:half_open" | "circuit:close" => {
                if let Some(since) = open_since.take() {
                    intervals.push((since, e.ts));
                }
            }
            _ => {}
        }
    }
    if let Some(since) = open_since {
        intervals.push((since, u64::MAX));
    }
    intervals
}

/// Part 2 — supervision causality over the real trace, swept across the
/// chaos seed matrix.
#[test]
fn supervision_invariants_hold_over_the_storyline() {
    for &seed in &CRASH_SEEDS {
        let (report, o) = run_observed(&supervised_storyline(seed));
        assert!(report.conserved(), "seed {seed}: conservation must hold");
        let events = o.tracer.events();
        let all = Query::over(events);

        // (a) node2's crash is suspected within k missed beats: the
        // suspect instant carries missed=3 and lands at most
        // suspect_after ticks after the death tick.
        let deaths = all.clone().cat("patia").name("fault:node_death").arg("node", "node2");
        assert_eq!(deaths.count(), 1, "seed {seed}: the storyline kills node2 once");
        let suspects: Vec<&TraceEvent> = all
            .clone()
            .cat("patia")
            .name("detector:suspect")
            .arg("node", "node2")
            .events()
            .iter()
            .map(|(_, e)| *e)
            .collect();
        assert_eq!(suspects.len(), 1, "seed {seed}: node2 must be suspected exactly once");
        let death = deaths.events()[0].1;
        let suspect = suspects[0];
        assert!(suspect.ts > death.ts, "seed {seed}: suspicion follows the crash");
        assert_eq!(arg(suspect, "missed"), Some("3"), "seed {seed}: k=3 missed beats convict");
        let suspect_tick = enclosing_tick(events, suspect)
            .unwrap_or_else(|| panic!("seed {seed}: suspicion must land inside a tick"));
        // The crash strikes at timeline tick 70 (before that tick's
        // heartbeat round), so the third consecutive miss is tick 72.
        assert!(
            (71..=73).contains(&suspect_tick),
            "seed {seed}: suspected at tick {suspect_tick}, expected within k beats of 70"
        );

        // (b) the partitioned-but-alive wp1 is suspected too — the case
        // plain BEST cannot see.
        assert_eq!(
            all.clone().cat("patia").name("detector:suspect").arg("node", "wp1").count(),
            1,
            "seed {seed}: partition must be indistinguishable from death"
        );

        // (c) BEST never routes a SWITCH toward an open circuit: no
        // switch instant's destination lies inside that node's
        // reconstructed open interval.
        let switch_names = ["switch:migrate", "switch:spread", "switch:evacuate"];
        for (_, sw) in all
            .clone()
            .cat("patia")
            .instants()
            .filter(|e| switch_names.contains(&e.name.as_str()))
            .events()
        {
            let to = arg(sw, "to").expect("switch instants carry a destination");
            for (from_ts, until_ts) in open_intervals(events, to) {
                assert!(
                    !(from_ts <= sw.ts && sw.ts < until_ts),
                    "seed {seed}: SWITCH routed to {to} while its circuit was open: {sw:?}"
                );
            }
        }

        // (d) after the restart, node2 rejoins: revival, then its
        // circuit closes, and it is never suspected again.
        let revival = all.clone().cat("patia").name("fault:node_revival").arg("node", "node2");
        assert_eq!(revival.count(), 1, "seed {seed}: the storyline restarts node2 once");
        let revival_ts = revival.events()[0].1.ts;
        let closes: Vec<u64> = all
            .clone()
            .cat("patia")
            .name("circuit:close")
            .arg("node", "node2")
            .events()
            .iter()
            .map(|(_, e)| e.ts)
            .collect();
        assert!(
            closes.iter().any(|&ts| ts > revival_ts),
            "seed {seed}: node2's circuit must close after its restart"
        );
        assert!(
            open_intervals(events, "node2").iter().all(|&(_, until)| until != u64::MAX),
            "seed {seed}: node2 must not end the run isolated"
        );

        // (e) the restart policy probed while node2 was down, backing
        // off; and the registry totals agree with the trace.
        let probes = all.clone().cat("patia").name("restart:attempt").arg("node", "node2");
        assert!(probes.count() >= 2, "seed {seed}: the backoff policy must probe repeatedly");
        for (counter, instant) in [
            ("patia.detector.suspects", "detector:suspect"),
            ("patia.detector.revivals", "detector:revive"),
            ("patia.circuit.opens", "circuit:open"),
            ("patia.circuit.half_opens", "circuit:half_open"),
            ("patia.circuit.closes", "circuit:close"),
            ("patia.restart.probes", "restart:attempt"),
        ] {
            let traced = all.clone().cat("patia").name(instant).count();
            assert!(traced > 0, "seed {seed}: the storyline must emit {instant}");
            assert_eq!(
                o.metrics.counter(counter),
                traced as u64,
                "seed {seed}: registry counter {counter} must match the trace"
            );
        }
    }
}

/// The storyline replays deterministically — the supervision layer adds
/// no hidden nondeterminism to the chaos harness.
#[test]
fn supervised_storyline_is_deterministic() {
    let params = supervised_storyline(42);
    let (ra, oa) = run_observed(&params);
    let (rb, ob) = run_observed(&params);
    assert_eq!(ra, rb, "reports must replay identically");
    assert_eq!(oa.digests(), ob.digests(), "trace and metrics digests must replay identically");
}
