//! Integration: the Table 2 constraints drive a full Patia run — BEST
//! placement, SWITCH under flash crowd, bandwidth-banded version serving.

use patia::atom::AtomId;
use patia::constraint::{paper_table2, ConstraintLogic};
use patia::server::{PatiaServer, ServerConfig};
use patia::workload::{FlashCrowd, RequestGen};

fn fleet(adaptive: bool) -> PatiaServer {
    let (net, atoms, constraints) = ServerConfig::paper_fleet();
    PatiaServer::new(net, atoms, constraints, ServerConfig { adaptive, work_per_request: 400 })
}

#[test]
fn table2_has_the_three_paper_rows() {
    let rows = paper_table2();
    assert_eq!(rows.iter().map(|c| c.id).collect::<Vec<_>>(), vec![450, 455, 595]);
    assert!(matches!(rows[0].logic, ConstraintLogic::SelectBest { .. }));
    assert!(matches!(rows[1].logic, ConstraintLogic::SwitchOnCpu { .. }));
    assert!(matches!(rows[2].logic, ConstraintLogic::BandwidthVersion { .. }));
}

/// The paper's Table 2 parameters are fixed history: constraint 455 fires
/// at 90 % processor utilisation, constraint 595 bands bandwidth strictly
/// between 30 and 100 Kbps, and both page constraints govern atom 123
/// while the video constraint governs atom 153.
#[test]
fn table2_carries_the_paper_parameters_exactly() {
    let rows = paper_table2();
    assert_eq!(rows[0].atom, AtomId(123));
    assert_eq!(rows[1].atom, AtomId(123));
    assert_eq!(rows[2].atom, AtomId(153));
    let ConstraintLogic::SelectBest { candidates } = &rows[0].logic else {
        panic!("row 450 is Select BEST")
    };
    assert_eq!(candidates, &["node1".to_owned(), "node2".to_owned()]);
    let ConstraintLogic::SwitchOnCpu { threshold, candidates } = &rows[1].logic else {
        panic!("row 455 is SWITCH on cpu")
    };
    assert!((threshold - 0.9).abs() < f64::EPSILON, "the paper's 90% threshold");
    assert_eq!(candidates, &["node1".to_owned(), "node2".to_owned()]);
    let ConstraintLogic::BandwidthVersion { lo, hi, preferred, fallback } = &rows[2].logic else {
        panic!("row 595 is bandwidth-banded")
    };
    assert_eq!((*lo, *hi), (30.0, 100.0), "the paper's > 30 < 100 Kbps band");
    assert_eq!(preferred, &[1, 2, 3]);
    assert_eq!(*fallback, 4);
}

/// The metrics registry reports the same numbers the tick loop observes:
/// a flash-crowd run with observability armed bills every arrival,
/// completion, and migration into counters that match the TickStats sums.
#[test]
fn registry_reports_the_flash_crowd_numbers() {
    let mut s = fleet(true);
    let hub = obs::Obs::new(obs::CostModel::pentium()).into_handle();
    s.arm_obs(hub.clone());
    let crowd = FlashCrowd { from: 50, to: 450, target: AtomId(123), multiplier: 15.0 };
    let mut gen = RequestGen::new(vec![AtomId(123)], 1.0, 4.0, 77).with_crowd(crowd);
    let (mut arrived, mut completed, mut migrations) = (0u64, 0u64, 0u64);
    for t in 1..=1500 {
        let st = s.tick(&gen.tick(t), 64.0);
        arrived += st.arrivals as u64;
        completed += st.latencies.len() as u64;
        migrations += st.migrations.len() as u64;
    }
    s.disarm_obs();
    let o = obs::Obs::try_unwrap(hub).expect("server disarmed, hub has one owner");
    assert_eq!(o.metrics.counter("patia.requests.arrived"), arrived);
    assert_eq!(o.metrics.counter("patia.requests.completed"), completed);
    assert!(migrations >= 1, "the crowd must force at least one SWITCH");
    assert!(
        o.tracer.events().iter().filter(|e| e.name.starts_with("switch:")).count() as u64
            >= migrations,
        "every SWITCH must leave a trace event"
    );
    let h = o.metrics.histogram("patia.latency_ticks").expect("latency histogram");
    assert_eq!(h.count, completed);
}

#[test]
fn constraint_450_places_the_agent_on_a_candidate() {
    let s = fleet(true);
    assert!(["node1", "node2"].contains(&s.agents(AtomId(123))[0].node.as_str()));
}

#[test]
fn constraint_455_switches_under_flash_crowd_and_bounds_latency() {
    let run = |adaptive: bool| {
        let mut s = fleet(adaptive);
        let crowd = FlashCrowd { from: 50, to: 450, target: AtomId(123), multiplier: 15.0 };
        let mut gen = RequestGen::new(vec![AtomId(123)], 1.0, 4.0, 77).with_crowd(crowd);
        let mut lat: Vec<u64> = Vec::new();
        let mut switches = 0;
        for t in 1..=1500 {
            let st = s.tick(&gen.tick(t), 64.0);
            switches += st.migrations.len();
            lat.extend(st.latencies);
        }
        lat.sort_unstable();
        let p99 = lat[lat.len().saturating_sub(1) * 99 / 100];
        (switches, p99)
    };
    let (adaptive_switches, adaptive_p99) = run(true);
    let (static_switches, static_p99) = run(false);
    assert!(adaptive_switches >= 1);
    assert_eq!(static_switches, 0);
    assert!(
        (adaptive_p99 as f64) * 1.5 < static_p99 as f64,
        "adaptive p99 {adaptive_p99} vs static {static_p99}"
    );
}

#[test]
fn constraint_595_serves_by_bandwidth_band() {
    let s = fleet(true);
    // In-band bandwidths get videohalf (a 0.5-quality rendition, versions 1-3).
    for bw in [31.0, 50.0, 99.0] {
        let v = s.select_version(AtomId(153), bw).unwrap();
        assert!((1..=3).contains(&v), "bw {bw} -> version {v}");
    }
    // Out-of-band gets videosmall (version 4).
    for bw in [5.0, 30.0, 100.0, 900.0] {
        assert_eq!(s.select_version(AtomId(153), bw), Some(4), "bw {bw}");
    }
}

#[test]
fn whole_fleet_survives_a_long_mixed_run() {
    let mut s = fleet(true);
    let crowd = FlashCrowd { from: 200, to: 600, target: AtomId(123), multiplier: 12.0 };
    let mut gen = RequestGen::new(vec![AtomId(123), AtomId(153)], 1.1, 6.0, 3).with_crowd(crowd);
    let mut served = 0usize;
    let mut arrived = 0usize;
    for t in 1..=2000 {
        let reqs = gen.tick(t);
        arrived += reqs.len();
        served += s.tick(&reqs, 64.0).latencies.len();
    }
    // Everything that arrived is eventually served (queues drain).
    assert!(served as f64 > arrived as f64 * 0.99, "served {served} of {arrived}");
}
