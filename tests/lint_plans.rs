//! The `cargo xtask lint-plans` gate: planlint over every reconfiguration
//! plan the committed scenarios produce, plus the ADL analyser over every
//! committed architecture document.
//!
//! Two layers of evidence:
//!
//! 1. **Direct** — the plans the Figure 5 machinery generates (boot,
//!    docked→wireless switchover, and back, plus the chaos scenarios'
//!    migration-mirror plans) are linted explicitly and must be clean.
//! 2. **Enforced** — the Adaptivity Manager now refuses any plan carrying
//!    an Error-severity finding ([`SwitchError::LintRejected`]), so the
//!    crashrep and chaos suites completing with consistent reports *is*
//!    a lint pass over every plan they executed. The scenarios driven
//!    here re-assert that.
//!
//! CI's lint-gate job fails if any assertion here trips.

use adl::analysis::analyze;
use adl::diff::{diff, ReconfigurationPlan};
use adl::figures::{docked_session, fig4_document, wireless_session};
use adm_core::scenario::{chaos, crashrep};
use compkit::adaptivity::SwitchError;
use compkit::planlint::PlanLinter;
use patia::atom::AtomId;

/// Layer 1a: the committed architecture documents are analyser-clean.
#[test]
fn committed_adl_documents_analyze_cleanly() {
    let doc = fig4_document();
    analyze(&doc).unwrap_or_else(|errs| {
        panic!("fig4 document has {} analysis error(s): {errs:?}", errs.len())
    });
}

/// Layer 1b: every Figure 5 lifecycle plan is lint-clean, individually.
#[test]
fn figure5_lifecycle_plans_are_lint_clean() {
    let doc = fig4_document();
    let docked = docked_session(&doc);
    let wireless = wireless_session(&doc);
    let empty = adl::Configuration::default();
    let linter = PlanLinter::new();
    for (label, plan) in [
        ("boot", diff(&empty, &docked)),
        ("switchover", diff(&docked, &wireless)),
        ("switchback", diff(&wireless, &docked)),
        ("teardown", diff(&docked, &empty)),
    ] {
        let r = linter.lint_one(&plan);
        assert!(r.is_clean(), "{label} plan must lint clean:\n{r}");
    }
}

/// Layer 1c: the chaos scenarios' migration-mirror plans have the shape
/// `unbind old placement; bind new placement` — lint that shape directly,
/// at every combination that occurs (move and spread).
#[test]
fn migration_mirror_plans_are_lint_clean() {
    use adl::ast::{Binding, PortRef};
    let glue = |atom: AtomId, node: &str| Binding {
        from: PortRef::on(&format!("atom:{}", atom.0), "route"),
        to: PortRef::on(&format!("host:{node}"), "slot"),
    };
    let linter = PlanLinter::new();
    // A move: unbind the old placement, bind the new.
    let mut mv = ReconfigurationPlan::default();
    mv.unbind.push(glue(AtomId(123), "node1"));
    mv.bind.push(glue(AtomId(123), "node2"));
    assert!(linter.lint_one(&mv).is_clean());
    // A spread: the source agent stays; only a bind is added.
    let mut spread = ReconfigurationPlan::default();
    spread.bind.push(glue(AtomId(153), "node3"));
    assert!(linter.lint_one(&spread).is_clean());
}

/// Layer 2a: the crashrep recovery matrix still completes consistently
/// with the Adaptivity Manager's lint gate armed — i.e. every plan that
/// suite executes passes the linter.
#[test]
fn crashrep_suite_passes_the_lint_gate() {
    for cell in crashrep::sweep() {
        assert!(cell.consistent(), "inconsistent cell under the lint gate: {:?}", cell);
    }
}

/// Layer 2b: a chaos storyline (migrations, evacuations, failed switches)
/// completes conserved with the lint gate armed.
#[test]
fn chaos_suite_passes_the_lint_gate() {
    let r = chaos::run(&chaos::ci_chaos(42));
    assert!(r.conserved(), "chaos run must conserve requests under the lint gate");
    assert!(r.switches_consistent, "mirrored switches must stay consistent");
}

/// Negative control: the gate actually bites. A statically-broken plan is
/// refused by the Adaptivity Manager with `LintRejected`, so the green
/// suites above really do certify their plans.
#[test]
fn gate_refuses_a_broken_plan() {
    use adl::ast::{Binding, PortRef};
    use compkit::adaptivity::AdaptivityManager;
    use compkit::runtime::{BasicFactory, Runtime};
    use compkit::state::StateManager;
    let mut plan = ReconfigurationPlan::default();
    plan.start.push(("a".into(), "T".into()));
    plan.start.push(("b".into(), "T".into()));
    plan.bind.push(Binding { from: PortRef::on("a", "r"), to: PortRef::on("b", "p") });
    plan.bind.push(Binding { from: PortRef::on("b", "r"), to: PortRef::on("a", "p") });
    let mut rt = Runtime::new();
    let mut am = AdaptivityManager::new();
    let mut sm = StateManager::new();
    let err = am.execute(&mut rt, &plan, &mut BasicFactory, &mut sm, 0).unwrap_err();
    assert!(matches!(err, SwitchError::LintRejected(_)), "got {err}");
}
