//! Scale tier: the full mega-crowd — ten million requests through the
//! event engine inside a wall-clock budget.
//!
//! The unit tier runs a 1/100-rate miniature; this tier runs the real
//! thing and holds the engine to the ISSUE's acceptance bar: at least
//! 10M requests offered and completed, conservation exact, and the whole
//! run inside seconds of wall-clock (budget relaxed under debug builds —
//! CI runs this tier with `--release`).

use adm_core::scenario::megacrowd::{mega_crowd, run};
use std::time::Instant;

/// Wall-clock budget for the full run.
fn budget_secs() -> u64 {
    if cfg!(debug_assertions) {
        300
    } else {
        30
    }
}

#[test]
fn mega_crowd_serves_ten_million_requests_within_budget() {
    let params = mega_crowd();
    let started = Instant::now();
    let report = run(&params);
    let elapsed = started.elapsed();

    assert!(
        report.offered >= 10_000_000,
        "the crowd must offer at least 10M requests (offered {})",
        report.offered
    );
    assert!(report.conserved(), "conservation must hold at scale: {report:?}");
    assert_eq!(report.totals.shed, 0, "no admission cap is armed");
    assert_eq!(
        report.totals.completed, report.offered,
        "every offered request completes within the horizon"
    );
    assert_eq!(report.queued_at_end, 0, "the storm fully drains");
    assert!(report.totals.evacuations >= 1, "the mid-storm node death must evacuate");
    assert!(
        report.totals.switches >= 1,
        "the storm must push utilisation over the SWITCH threshold"
    );
    assert!(
        report.totals.ticks_processed < 10_000,
        "flows expand lazily: the engine touches storm ticks, not the 200k horizon \
         ({} processed)",
        report.totals.ticks_processed
    );
    assert!(
        elapsed.as_secs() < budget_secs(),
        "10M requests must clear in under {}s of wall-clock (took {:.1}s)",
        budget_secs(),
        elapsed.as_secs_f64()
    );
}

/// The scale run is as deterministic as the small ones — same report,
/// twice, wall-clock excluded.
#[test]
fn mega_crowd_replays_identically() {
    let params = mega_crowd();
    assert_eq!(run(&params), run(&params));
}
