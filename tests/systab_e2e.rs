//! System-table tier: every committed scenario is replayed to its
//! settled state and then *queried* — the machine's own telemetry served
//! through the `query` operators as `sys.*` tables.
//!
//! Each scenario leg runs at least six invariant queries (arrivals and
//! completions cross-checked against the report, span counts against the
//! trace, circuit codes partitioning the supervision rows, journal stats
//! against the live records, pool residency against the engine) and the
//! full result set is pinned against a committed golden, so a drift in
//! any table's schema, row order, or contents shows up as a diff in
//! review. The queries themselves are cycle-billed through a fresh hub —
//! querying the machine is work the machine performs, and that bill is
//! golden-pinned too.
//!
//! The differential leg closes the loop on the declarative SWITCH rule:
//! replaying the chaos and crash-replay matrices with the circuit-breaker
//! screen evaluated as a query over `sys.supervision` must be
//! byte-identical — reports, traces, metric digests — to the compiled-in
//! filter.
//!
//! Regenerate the golden after an intentional change with:
//!
//! ```text
//! cargo xtask update-goldens
//! ```

use adm_core::scenario::chaos::{self, ChaosParams, ChaosWorld};
use adm_core::scenario::crashrep;
use adm_core::scenario::megacrowd;
use adm_core::scenario::storerep;
use datacomp::{Table, Value};
use obs::{CostModel, Obs, ObsHandle};
use query::expr::Pred;
use std::fmt::Write as _;
use std::path::PathBuf;
use store::CrashPoint;
use systab::{
    filter_count, metrics_table, pool_table, scan_rows, spans_table, sum_int, supervision_table,
    switches_table, timers_table,
};

// Column indexes of the stable sys.* schemas (pinned by unit tests in
// the `systab` and `patia` crates).
const MET_NAME: usize = 1;
const MET_VALUE: usize = 3;
const SPAN_DUR: usize = 2;
const SPAN_KIND: usize = 5;
const SUP_CIRCUIT_CODE: usize = 5;
const SW_KIND: usize = 0;
const SW_NAME: usize = 1;
const SW_VALUE: usize = 3;
const POOL_PAGE: usize = 1;
const POOL_DIRTY: usize = 2;
const TIMER_LIVE: usize = 3;

fn goldens_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/goldens")
}

fn seq(s: &str) -> Pred {
    Pred::eq(SW_NAME, Value::Str(s.to_owned()))
}

/// One scenario leg's query session: a fresh billed hub plus the output
/// lines it accumulates for the golden.
struct Session {
    hub: ObsHandle,
    out: String,
}

impl Session {
    fn new(name: &str) -> Self {
        let mut out = String::new();
        writeln!(out, "scenario: {name}").expect("string writes cannot fail");
        Self { hub: Obs::new(CostModel::pentium()).into_handle(), out }
    }

    fn q(&self) -> Option<ObsHandle> {
        Some(self.hub.clone())
    }

    fn record(&mut self, key: &str, value: i64) {
        writeln!(self.out, "  {key} = {value}").expect("string writes cannot fail");
    }

    /// Close the leg: the billed hub must show the queries cost cycles,
    /// and the bill itself is part of the golden.
    fn finish(self, golden: &mut String) {
        let obs = Obs::try_unwrap(self.hub)
            .unwrap_or_else(|_| unreachable!("query handles are dropped with their plans"));
        let scanned = obs.metrics.counter("systab.scan.rows");
        assert!(scanned > 0, "a query session must scan rows");
        assert!(obs.clock() > 0, "system-table reads are cycle-billed");
        let mut out = self.out;
        writeln!(out, "  scan.rows = {scanned}").expect("string writes cannot fail");
        writeln!(out, "  scan.cycles = {}", obs.clock()).expect("string writes cannot fail");
        golden.push_str(&out);
    }
}

/// The six-plus invariant queries every chaos-shaped world answers:
/// metrics vs report, spans vs trace, supervision partition, journal
/// stats vs live records.
fn query_chaos_world(name: &str, w: &ChaosWorld, golden: &mut String) {
    let mut s = Session::new(name);
    let metrics = metrics_table(&w.obs.metrics.snapshot());
    let spans = spans_table(w.obs.tracer.events());
    let sup = supervision_table(w.server.supervisor());
    let switches = switches_table(w.am.committed(), w.am.rolled_back(), w.am.journal());

    // 1–2: the registry served as a table agrees with the report.
    let arrivals = sum_int(&metrics, MET_VALUE, seq_named("patia.requests.arrived"), s.q());
    let completed = sum_int(&metrics, MET_VALUE, seq_named("patia.requests.completed"), s.q());
    assert_eq!(arrivals, as_i64(w.report.arrivals), "{name}: sys.metrics arrivals");
    assert_eq!(completed, as_i64(w.report.completed), "{name}: sys.metrics completions");

    // 3: the span log served as a table is complete.
    let complete = filter_count(&spans, Pred::eq(SPAN_KIND, str_v("complete")), s.q());
    let instant = filter_count(&spans, Pred::eq(SPAN_KIND, str_v("instant")), s.q());
    assert_eq!(
        complete + instant,
        w.obs.tracer.events().len() as u64,
        "{name}: sys.spans serves every trace event"
    );

    // 4: circuit codes partition the supervision rows.
    let peers = filter_count(&sup, Pred::True, s.q());
    let closed = filter_count(&sup, Pred::eq(SUP_CIRCUIT_CODE, Value::Int(0)), s.q());
    let open = filter_count(&sup, Pred::eq(SUP_CIRCUIT_CODE, Value::Int(1)), s.q());
    let half = filter_count(&sup, Pred::eq(SUP_CIRCUIT_CODE, Value::Int(2)), s.q());
    assert_eq!(closed + open + half, peers, "{name}: circuit codes partition sys.supervision");

    // 5: the journal's commit stat agrees with the report.
    let committed = sum_int(&switches, SW_VALUE, seq("committed"), s.q());
    assert_eq!(committed, as_i64(w.report.reconfigs_committed), "{name}: sys.switches committed");

    // 6: the journal_live stat counts exactly the live record rows.
    let live = sum_int(&switches, SW_VALUE, seq("journal_live"), s.q());
    let records = filter_count(&switches, Pred::eq(SW_KIND, str_v("record")), s.q());
    assert_eq!(live, as_i64(records), "{name}: sys.switches live stat matches its records");

    let metrics_rows = scan_rows(&metrics, s.q()).len();
    let span_cycles = sum_int(&spans, SPAN_DUR, Pred::True, s.q());
    s.record("metrics.rows", as_i64(metrics_rows as u64));
    s.record("metrics.arrivals", arrivals);
    s.record("metrics.completed", completed);
    s.record("spans.complete", as_i64(complete));
    s.record("spans.instant", as_i64(instant));
    s.record("spans.dur_cycles", span_cycles);
    s.record("supervision.peers", as_i64(peers));
    s.record("supervision.open", as_i64(open));
    s.record("switches.committed", committed);
    s.record("switches.journal_live", live);

    // The storage leg additionally queries the buffer pool under the
    // atoms (7–8: frame count and residency against the engine).
    if let Some(engine) = w.server.storage() {
        let pool = pool_table(engine.pool());
        let frames = filter_count(&pool, Pred::True, s.q());
        let resident = filter_count(&pool, Pred::gt(POOL_PAGE, Value::Int(-1)), s.q());
        let dirty = filter_count(&pool, Pred::eq(POOL_DIRTY, Value::Bool(true)), s.q());
        assert_eq!(frames, engine.pool().frame_table().len() as u64, "{name}: sys.pool frames");
        assert_eq!(resident, engine.pool().resident() as u64, "{name}: sys.pool residency");
        assert!(dirty <= resident, "{name}: only resident frames can be dirty");
        s.record("pool.frames", as_i64(frames));
        s.record("pool.resident", as_i64(resident));
        s.record("pool.dirty", as_i64(dirty));
    }
    s.finish(golden);
}

fn seq_named(name: &str) -> Pred {
    Pred::eq(MET_NAME, Value::Str(name.to_owned()))
}

fn str_v(s: &str) -> Value {
    Value::Str(s.to_owned())
}

fn as_i64(v: u64) -> i64 {
    i64::try_from(v).expect("scenario aggregates fit i64")
}

/// The mega-crowd leg: the engine's wheel joins the queryable surface.
fn query_mega_world(name: &str, golden: &mut String) {
    let p = megacrowd::mini_crowd();
    let w = megacrowd::run_with_state(&p);
    assert_eq!(w.report, megacrowd::run(&p), "{name}: keeping the engine must not perturb");
    let mut s = Session::new(name);
    let metrics = metrics_table(&w.obs.metrics.snapshot());
    let spans = spans_table(w.obs.tracer.events());
    let sup = supervision_table(w.engine.server().supervisor());
    let timers = timers_table(w.engine.wheel());

    let arrivals = sum_int(&metrics, MET_VALUE, seq_named("patia.requests.arrived"), s.q());
    let completed = sum_int(&metrics, MET_VALUE, seq_named("patia.requests.completed"), s.q());
    assert_eq!(arrivals, as_i64(w.report.totals.arrivals), "{name}: sys.metrics arrivals");
    assert_eq!(completed, as_i64(w.report.totals.completed), "{name}: sys.metrics completions");

    let complete = filter_count(&spans, Pred::eq(SPAN_KIND, str_v("complete")), s.q());
    let instant = filter_count(&spans, Pred::eq(SPAN_KIND, str_v("instant")), s.q());
    assert_eq!(
        complete + instant,
        w.obs.tracer.events().len() as u64,
        "{name}: sys.spans serves every trace event"
    );

    let peers = filter_count(&sup, Pred::True, s.q());
    let closed = filter_count(&sup, Pred::eq(SUP_CIRCUIT_CODE, Value::Int(0)), s.q());
    let open = filter_count(&sup, Pred::eq(SUP_CIRCUIT_CODE, Value::Int(1)), s.q());
    let half = filter_count(&sup, Pred::eq(SUP_CIRCUIT_CODE, Value::Int(2)), s.q());
    assert_eq!(closed + open + half, peers, "{name}: circuit codes partition sys.supervision");

    let live = sum_int(&timers, TIMER_LIVE, Pred::True, s.q());
    assert_eq!(live, as_i64(w.engine.wheel().len() as u64), "{name}: sys.timers sums to len");

    s.record("metrics.arrivals", arrivals);
    s.record("metrics.completed", completed);
    s.record("spans.complete", as_i64(complete));
    s.record("spans.instant", as_i64(instant));
    s.record("supervision.peers", as_i64(peers));
    s.record("supervision.open", as_i64(open));
    s.record("timers.live", live);
    s.finish(golden);
}

/// The storage crash-replay leg: the recovered engine's pool and the
/// crash/recovery metrics are the queryable surface.
fn query_store_world(name: &str, seed: u64, point: CrashPoint, golden: &mut String) {
    let w = storerep::run_cell_with_state(seed, point);
    assert_eq!(
        w.report,
        storerep::run_cell(seed, point),
        "{name}: keeping the engine must not perturb recovery"
    );
    assert!(w.report.consistent(), "{name}: the cell must settle cleanly");
    let mut s = Session::new(name);
    let metrics = metrics_table(&w.obs.metrics.snapshot());
    let spans = spans_table(w.obs.tracer.events());
    let pool = pool_table(w.engine.pool());

    let replay = sum_int(&metrics, MET_VALUE, seq_named("store.wal.replay_len"), s.q());
    assert_eq!(
        replay,
        as_i64(2 * w.report.replayed as u64),
        "{name}: settling + idempotence replays both bill their scan"
    );
    let crashes = sum_int(&metrics, MET_VALUE, seq_named("store.crash"), s.q());
    assert!(crashes >= 1, "{name}: the planned crash is counted");
    let recoveries = sum_int(&metrics, MET_VALUE, seq_named("store.recovery"), s.q());
    assert!(recoveries >= 2, "{name}: settle + idempotence witness both recover");

    let frames = filter_count(&pool, Pred::True, s.q());
    let resident = filter_count(&pool, Pred::gt(POOL_PAGE, Value::Int(-1)), s.q());
    let dirty = filter_count(&pool, Pred::eq(POOL_DIRTY, Value::Bool(true)), s.q());
    assert_eq!(frames, w.engine.pool().frame_table().len() as u64, "{name}: sys.pool frames");
    assert_eq!(resident, w.engine.pool().resident() as u64, "{name}: sys.pool residency");
    assert!(dirty <= resident, "{name}: only resident frames can be dirty");

    let events = filter_count(&spans, Pred::True, s.q());
    assert_eq!(events, w.obs.tracer.events().len() as u64, "{name}: sys.spans is complete");

    s.record("metrics.replay_len", replay);
    s.record("metrics.crashes", crashes);
    s.record("metrics.recoveries", recoveries);
    s.record("pool.frames", as_i64(frames));
    s.record("pool.resident", as_i64(resident));
    s.record("pool.dirty", as_i64(dirty));
    s.record("spans.events", as_i64(events));
    s.finish(golden);
}

/// Every committed scenario, settled and queried: the full result set is
/// pinned against `tests/goldens/systab.txt`.
#[test]
fn system_tables_answer_invariant_queries_over_every_scenario() {
    let mut golden = String::new();

    let flash = chaos::run_with_state(&chaos::paper_flash_crowd());
    assert_eq!(
        flash.report,
        chaos::run(&chaos::paper_flash_crowd()),
        "flash-crowd: keeping the world alive must not perturb the run"
    );
    query_chaos_world("flash-crowd", &flash, &mut golden);

    for seed in [17, 42, 20_260_806u64] {
        let w = chaos::run_with_state(&chaos::ci_chaos(seed));
        query_chaos_world(&format!("chaos-seed-{seed}"), &w, &mut golden);
    }

    let storage = chaos::run_with_state(&ChaosParams { storage: true, ..chaos::ci_chaos(42) });
    query_chaos_world("chaos-storage-42", &storage, &mut golden);

    for seed in crashrep::CRASH_SEEDS {
        let w = chaos::run_with_state(&crashrep::supervised_storyline(seed));
        query_chaos_world(&format!("crashrep-seed-{seed}"), &w, &mut golden);
    }

    query_mega_world("mega-mini", &mut golden);

    query_store_world("store-cell-17", 17, CrashPoint::BeforeCommit, &mut golden);
    query_store_world("store-cell-42", 42, CrashPoint::MidPlan { after_steps: 2 }, &mut golden);

    let path = goldens_dir().join("systab.txt");
    if std::env::var("UPDATE_GOLDENS").is_ok() {
        std::fs::create_dir_all(goldens_dir()).expect("create goldens dir");
        std::fs::write(&path, &golden).expect("write golden");
        println!("updated golden {}", path.display());
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {} ({e}); regenerate with `cargo xtask update-goldens`",
            path.display()
        )
    });
    assert!(
        golden == want,
        "system-table query results drifted from the committed golden; if the change is \
         intentional, regenerate with `cargo xtask update-goldens`\n{}",
        obs::diff::unified(&want, &golden, "golden systab.txt", "this run")
    );
}

/// The declarative SWITCH rule is *exactly* the compiled-in filter: the
/// chaos and crash-replay matrices replay byte-identically — reports,
/// traces, metric digests — whichever way the circuit-breaker screen is
/// evaluated.
#[test]
fn query_driven_switching_is_byte_identical_to_hardcoded() {
    let mut storylines = vec![chaos::paper_flash_crowd()];
    storylines.extend([17, 42, 20_260_806u64].map(chaos::ci_chaos));
    storylines.extend(crashrep::CRASH_SEEDS.map(crashrep::supervised_storyline));
    for base in storylines {
        assert!(!base.query_rules, "storylines default to the compiled-in filter");
        let queried = ChaosParams { query_rules: true, ..base.clone() };
        let (hard_report, hard_obs) = chaos::run_observed(&base);
        let (query_report, query_obs) = chaos::run_observed(&queried);
        assert_eq!(
            hard_report,
            query_report,
            "plan {:#x}: per-tick stats and aggregates must match",
            base.plan.digest()
        );
        assert_eq!(
            hard_obs.tracer.render(),
            query_obs.tracer.render(),
            "plan {:#x}: traces must be byte-identical",
            base.plan.digest()
        );
        assert_eq!(
            hard_obs.digests(),
            query_obs.digests(),
            "plan {:#x}: trace and metric digests must match",
            base.plan.digest()
        );
        assert_eq!(
            hard_obs.metrics.snapshot(),
            query_obs.metrics.snapshot(),
            "plan {:#x}: metric snapshots must match",
            base.plan.digest()
        );
    }
}

/// The rule engine actually ran on the query path — the differential
/// equality above is not vacuous — and its work is ledgered outside the
/// billed hub.
#[test]
fn query_policy_does_measurable_rule_work() {
    let p = ChaosParams { query_rules: true, ..chaos::ci_chaos(42) };
    let w = chaos::run_with_state(&p);
    let stats = w.server.rule_stats();
    assert!(stats.evaluations > 0, "the rule must be evaluated during the run");
    assert!(
        stats.rows_scanned >= stats.evaluations,
        "every evaluation scans the supervision table"
    );
    assert!(stats.ops > 0, "rule work is ledgered");
    assert_eq!(
        w.report,
        chaos::run(&chaos::ci_chaos(42)),
        "rule evaluation must not perturb the storyline"
    );
}

/// Deterministic replay of the query tier itself: the same world queried
/// twice answers identically, including the cycle bill.
#[test]
fn query_sessions_replay_identically() {
    let p = chaos::ci_chaos(17);
    let bill = |w: &ChaosWorld| {
        let hub = Obs::new(CostModel::pentium()).into_handle();
        let metrics = metrics_table(&w.obs.metrics.snapshot());
        let rows = scan_rows(&metrics, Some(hub.clone())).len();
        let obs = Obs::try_unwrap(hub)
            .unwrap_or_else(|_| unreachable!("query handles are dropped with their plans"));
        (rows, obs.clock(), obs.metrics.counter("systab.scan.rows"))
    };
    let (wa, wb) = (chaos::run_with_state(&p), chaos::run_with_state(&p));
    let (ra, rb) = (bill(&wa), bill(&wb));
    assert_eq!(ra, rb, "the same world must answer (and bill) identically");
    assert_eq!(ra.0 as u64, ra.2, "every served row is billed exactly once");
}

/// The table builders tolerate a barely-exercised world: short runs with
/// empty journals and untouched circuits still produce scannable tables.
#[test]
fn every_table_builds_over_a_minimal_world() {
    let w = chaos::run_with_state(&ChaosParams { ticks: 5, ..ChaosParams::default() });
    let tables: Vec<Table> = vec![
        metrics_table(&w.obs.metrics.snapshot()),
        spans_table(w.obs.tracer.events()),
        supervision_table(w.server.supervisor()),
        switches_table(w.am.committed(), w.am.rolled_back(), w.am.journal()),
    ];
    for t in &tables {
        // Scanning an arbitrary table never stalls and never panics.
        let _ = scan_rows(t, None);
    }
}
