//! End-to-end integration: the three Section 4 scenarios, run through the
//! whole stack (ADL model → component runtime → environment simulator →
//! data components → query engine).

use adm_core::scenario::{inter_query, intra_query, system_adapt};

#[test]
fn scenario1_best_tracks_load_and_nearest_tracks_topology() {
    // Idle laptop: BEST picks it, exactly the paper's narration.
    let idle = inter_query::run(&inter_query::InterQueryParams::default());
    assert_eq!(idle.chosen_device, "laptop");
    assert!(idle.selector_used.contains("BEST"));

    // Loaded laptop: BEST falls to the second PDA.
    let busy = inter_query::run(&inter_query::InterQueryParams {
        laptop_load: 0.99,
        ..Default::default()
    });
    assert_eq!(busy.chosen_device, "pda2");

    // NEAREST prioritised: topology decides instead.
    let near = inter_query::run(&inter_query::InterQueryParams {
        prefer_nearest: true,
        ..Default::default()
    });
    assert!(near.selector_used.contains("NEAREST"));
}

#[test]
fn scenario2_full_switchover_with_safe_point_and_compression() {
    let r = system_adapt::run(&system_adapt::SystemAdaptParams::default());
    // The Figure 1 loop fired shortly after the undock...
    let switch = r.switch_tick.expect("switchover must happen");
    assert!(switch >= r.undock_tick && switch <= r.undock_tick + 5);
    // ...the session ended wireless...
    assert_eq!(r.final_mode, "wireless");
    // ...the stream cut at a declared safe point...
    let sp = r.safe_point_reading.expect("safe point");
    assert_eq!(sp % 100, 0);
    // ...compression traded CPU for bandwidth...
    assert!(r.bytes_sent < r.raw_bytes / 2, "{} of {}", r.bytes_sent, r.raw_bytes);
    assert!(r.codec_cpu_ticks > 0);
    // ...and beat the stubborn baseline by a wide margin.
    let stat = system_adapt::run(&system_adapt::SystemAdaptParams {
        adaptive: false,
        ..Default::default()
    });
    assert!(r.total_ticks * 2 < stat.total_ticks);
}

#[test]
fn scenario3_replans_at_safe_point_and_state_manager_holds_progress() {
    let r = intra_query::run(&intra_query::IntraQueryParams::default());
    let at = r.switched_at.expect("switch");
    assert_eq!(at % 64, 0, "switch only at safe points");
    assert_eq!(r.state_manager_progress, Some(at));
    assert!(r.speedup > 2.0);
    assert_ne!(r.initial_algo, r.final_algo);
}

#[test]
fn scenarios_are_deterministic() {
    assert_eq!(
        inter_query::run(&inter_query::InterQueryParams::default()),
        inter_query::run(&inter_query::InterQueryParams::default())
    );
    assert_eq!(
        system_adapt::run(&system_adapt::SystemAdaptParams::default()),
        system_adapt::run(&system_adapt::SystemAdaptParams::default())
    );
    assert_eq!(
        intra_query::run(&intra_query::IntraQueryParams::default()),
        intra_query::run(&intra_query::IntraQueryParams::default())
    );
}
