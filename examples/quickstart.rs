//! Quickstart: the Adaptive Data Management architecture in one file.
//!
//! Builds a tiny ubiquitous system (sensor, laptop, PDA), attaches the
//! Figure 1 adaptation loop, runs a query with a `BEST` selector, undocks
//! the laptop mid-stream and watches the architecture reconfigure itself.
//!
//! Run with: `cargo run -p adm-core --example quickstart`

use adm_core::scenario::{inter_query, intra_query, system_adapt};
use adm_core::selector::parse_selector;

fn main() {
    println!("== Adaptive Data Management: quickstart ==\n");

    // 1. The paper's constraint mini-language.
    let sel = parse_selector("<Select BEST (PDA, Laptop)>").expect("parses");
    println!("parsed constraint: {sel}");

    // 2. Scenario 1 — inter-query adaptation: where should the data come
    //    from right now?
    let r1 = inter_query::run(&inter_query::InterQueryParams::default());
    println!(
        "\n[scenario 1] PDA query served from `{}` via {} ({} bytes in {} ticks)",
        r1.chosen_device, r1.selector_used, r1.payload_bytes, r1.delivery_ticks
    );

    // 3. Scenario 2 — system adaptation: the laptop is unplugged while the
    //    sensor streams; the architecture swaps to the wireless session and
    //    a compressed stream at a safe point.
    let r2 = system_adapt::run(&system_adapt::SystemAdaptParams::default());
    println!(
        "\n[scenario 2] undock@{} -> switchover@{:?}, safe point at reading {:?}",
        r2.undock_tick, r2.switch_tick, r2.safe_point_reading
    );
    println!(
        "             sent {} of {} raw bytes ({}% saved), codec CPU {} ticks, done in {} ticks",
        r2.bytes_sent,
        r2.raw_bytes,
        100 * (r2.raw_bytes - r2.bytes_sent) / r2.raw_bytes.max(1),
        r2.codec_cpu_ticks,
        r2.total_ticks
    );

    // 4. Scenario 3 — intra-query adaptation: stale statistics pick a bad
    //    join; execution notices and re-plans at a safe point.
    let r3 = intra_query::run(&intra_query::IntraQueryParams::default());
    println!(
        "\n[scenario 3] planned {} from stale stats, switched to {} at outer row {:?}",
        r3.initial_algo, r3.final_algo, r3.switched_at
    );
    println!(
        "             work: static {} vs adaptive {} -> {:.1}x speedup",
        r3.static_work, r3.adaptive_work, r3.speedup
    );

    println!("\nAll three Section 4 scenarios ran through the same architecture.");
}
