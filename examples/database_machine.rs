//! The Database Machine assembled — the paper's closing claim:
//!
//! > "at *that instant* the system becomes effectively a Database Machine
//! > but potentially without the problems of standardisation and
//! > portability of the past."
//!
//! Query operators run as SISR-verified Go! components; every activation
//! crosses the ORB; the overhead of full isolation is measured against
//! what trap-based boundaries would cost.
//!
//! Run with: `cargo run -p adm-core --example database_machine`

use adm_core::dbm::DatabaseMachine;
use datacomp::{ColumnType, Schema, Table, Value};
use machine::CostModel;
use query::expr::Pred;

fn table(n: i64, dup: i64) -> Table {
    let schema = Schema::new(&[("k", ColumnType::Int), ("v", ColumnType::Int)]).expect("schema");
    let mut t = Table::new(schema);
    for i in 0..n {
        t.insert(vec![Value::Int(i % dup), Value::Int(i)]).expect("row fits");
    }
    t
}

fn main() {
    println!("== The Database Machine ==\n");
    let mut dbm = DatabaseMachine::boot(CostModel::pentium());
    println!(
        "booted: scan/filter/join operators + client as Go! components ({} bytes protection state)\n",
        dbm.protection_bytes()
    );
    dbm.register("orders", table(2_000, 40));
    dbm.register("customers", table(800, 40));

    let pred = Pred::lt(1, Value::Int(1_000));
    println!("query: SELECT * FROM orders JOIN customers ON k WHERE orders.v < 1000\n");
    println!(
        "  batch | rows out | activations | boundary cyc | work cyc | overhead | trap-equivalent"
    );
    println!(
        "  ------+----------+-------------+--------------+----------+----------+----------------"
    );
    for batch in [1024u64, 256, 64, 16] {
        let (_, cost) =
            dbm.run_spj("orders", "customers", &pred, batch).expect("tables registered");
        println!(
            "  {batch:>5} | {:>8} | {:>11} | {:>12} | {:>8} | {:>7.1}% | {:>14}",
            cost.rows_out,
            cost.activations,
            cost.boundary_cycles,
            cost.work_cycles,
            cost.overhead_fraction() * 100.0,
            cost.trap_equivalent_cycles
        );
    }
    println!("\nSISR-shaped boundaries cost percents of the query's own work;");
    println!("trap-shaped boundaries (rightmost column) would cost multiples of it.");
    println!("That asymmetry is the paper's whole argument in one table.");
}
