//! Regenerate Table 1: Go!'s RPC cost against BSD, Mach 2.5 and L4, plus
//! the 32-bytes-per-interface memory comparison, with the full per-
//! primitive anatomy of each kernel's RPC path.
//!
//! Run with: `cargo run -p adm-core --example go_rpc`

use gokernel::kernels::all_kernels;
use gokernel::sisr::SisrVerifier;
use gokernel::table1::{memory_comparison, render_table1, table1_rows};
use machine::isa::{Instr, Program};
use machine::CostModel;

fn main() {
    let model = CostModel::pentium();
    println!("{}", render_table1(&table1_rows(&model, 3)));

    // The cost Go! pays instead of traps: the one-off SISR verification
    // pipeline at load time, amortised across every subsequent call.
    let verifier = SisrVerifier::new(model.clone());
    let mut text = vec![Instr::MovImm(0, 0); 255];
    text.push(Instr::Halt);
    let img = verifier.verify_program(&Program::new(text)).expect("clean");
    println!("SISR load-time verification of a 256-instruction component:");
    for p in &img.report().passes {
        println!("  {:<20} {:>6} cycles", p.pass.name(), p.cycles);
    }
    for s in img.summaries() {
        println!("  {s}");
    }
    let trap_round_trip = model.trap_enter + model.trap_exit;
    println!(
        "  total {} cycles, one-off — repaid after ~{} calls that would each\n\
         \x20 have trapped ({} cycles of trap overhead per round trip)\n",
        img.scan_cycles(),
        img.scan_cycles().div_ceil(trap_round_trip),
        trap_round_trip
    );

    println!("RPC anatomy (cycles by primitive):");
    for k in &mut all_kernels(&model) {
        let bd = k.breakdown(2);
        let total: u64 = bd.iter().map(|(_, v)| v).sum();
        println!("\n  {} — {total} cycles", k.kind().name());
        let mut sorted = bd;
        sorted.sort_by_key(|e| std::cmp::Reverse(e.1));
        for (label, cycles) in sorted {
            println!("    {label:<18} {cycles:>7}  {:>5.1}%", cycles as f64 * 100.0 / total as f64);
        }
    }

    println!("\nMemory: protection state for 64 components x 4 interfaces");
    let m = memory_comparison(64, 4);
    println!("  Go! (SISR descriptors + segments): {:>9} bytes", m.go_bytes);
    println!("  page-based protection:             {:>9} bytes", m.paged_bytes);
    println!(
        "  improvement: {:.0}x — the paper claims \"around two orders of magnitude\"",
        m.improvement
    );

    println!("\nOn a deep-pipeline machine (costlier traps/misses) the gap widens:");
    let deep = table1_rows(&CostModel::deep_pipeline(), 1);
    for r in &deep {
        println!("  {:<12} {:>9} cycles", r.kind.name(), r.measured_cycles);
    }
}
