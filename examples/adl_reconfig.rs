//! The Figure 4 architecture in the Darwin-style ADL, and the Figure 5
//! docked↔wireless switchover computed, validated, executed and rolled
//! back.
//!
//! Run with: `cargo run -p adm-core --example adl_reconfig`

use adl::config::flatten;
use adl::diff::diff;
use adl::dot::configuration_to_dot;
use adl::figures::{docked_session, fig4_document, fig5_switchover, wireless_session, FIG4_SOURCE};
use compkit::adaptivity::AdaptivityManager;
use compkit::runtime::{BasicFactory, FlakyFactory, Runtime};
use compkit::state::StateManager;

fn main() {
    println!("== Figure 4: mobile CBMS in the Darwin-style ADL ==");
    println!("{FIG4_SOURCE}");

    let doc = fig4_document();
    let docked = docked_session(&doc);
    let wireless = wireless_session(&doc);
    println!("docked session:   {} instances, {} bindings", docked.len(), docked.bindings.len());
    println!(
        "wireless session: {} instances, {} bindings",
        wireless.len(),
        wireless.bindings.len()
    );
    let base = flatten(&doc, "MobileCBMS", &[]).expect("base flattens");
    println!(
        "base (no mode) is deliberately incomplete: unbound requirements = {:?}",
        base.unbound_requirements(&doc)
    );

    println!("\n== Figure 5: the switchover plan (docked -> wireless) ==");
    let plan = fig5_switchover(&doc);
    for b in &plan.unbind {
        println!("  unbind {} -- {}", b.from, b.to);
    }
    for (n, t) in &plan.stop {
        println!("  stop   {n} : {t}");
    }
    for (n, t) in &plan.start {
        println!("  start  {n} : {t}");
    }
    for b in &plan.bind {
        println!("  bind   {} -- {}", b.from, b.to);
    }

    // Execute it transactionally.
    let mut rt = Runtime::new();
    let mut am = AdaptivityManager::new();
    let mut st = StateManager::new();
    let boot = diff(&rt.configuration(), &docked);
    am.execute(&mut rt, &boot, &mut BasicFactory, &mut st, 0).expect("boot");
    let report = am.execute(&mut rt, &plan, &mut BasicFactory, &mut st, 1).expect("switch");
    println!(
        "\nexecuted transactionally: {} steps, stopped {:?}, started {:?}",
        report.steps, report.stopped, report.started
    );
    assert_eq!(rt.configuration(), wireless);

    // And the back-off path: a failing component rolls everything back.
    let back = plan.inverse();
    let mut flaky = FlakyFactory::failing(["opt"]);
    let err = am.execute(&mut rt, &back, &mut flaky, &mut st, 2).unwrap_err();
    println!("\ninjected failure on the way back: {err}");
    assert_eq!(rt.configuration(), wireless, "runtime untouched after rollback");
    println!("runtime verified bit-for-bit unchanged after rollback");

    println!("\n== DOT export of the wireless session (Darwin notation) ==");
    println!("{}", configuration_to_dot("wireless", &wireless, &doc));
}
