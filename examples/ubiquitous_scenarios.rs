//! The three Section 4 scenarios with full narration and parameter sweeps —
//! the workloads the paper's introduction motivates, end to end.
//!
//! Run with: `cargo run -p adm-core --example ubiquitous_scenarios`

use adm_core::scenario::{inter_query, intra_query, system_adapt};

fn scenario_1() {
    println!("--- Scenario 1: inter-query adaptation ---");
    println!("A PDA queries personal data replicated on a Laptop and a second PDA.");
    println!("`Select BEST (pda2, laptop)` re-evaluates as the Laptop's load grows:\n");
    println!("  laptop load | chosen device | delivery ticks");
    println!("  ------------+---------------+---------------");
    for load in [0.0, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99] {
        let r = inter_query::run(&inter_query::InterQueryParams {
            laptop_load: load,
            ..Default::default()
        });
        println!("  {load:>11.2} | {:>13} | {:>14}", r.chosen_device, r.delivery_ticks);
    }
    let near = inter_query::run(&inter_query::InterQueryParams {
        prefer_nearest: true,
        ..Default::default()
    });
    println!("\nWith NEAREST prioritised the 1-hop pda2 wins regardless: {}", near.chosen_device);
}

fn scenario_2() {
    println!("\n--- Scenario 2: system adaptation (Figure 5 switchover) ---");
    println!("The Laptop is unplugged mid-stream; the docked session's components");
    println!("are swapped for the wireless ones and the stream continues compressed");
    println!("from the next safe point.\n");
    for (label, adaptive) in [("adaptive", true), ("static  ", false)] {
        let r =
            system_adapt::run(&system_adapt::SystemAdaptParams { adaptive, ..Default::default() });
        println!(
            "  {label}: {:>7} ticks total, {:>6} bytes on air (of {}), switch@{:?}",
            r.total_ticks, r.bytes_sent, r.raw_bytes, r.switch_tick
        );
    }
    println!("\nUndock-time sweep (adaptive): later undocks save fewer bytes:");
    println!("  undock tick | bytes sent | total ticks");
    for undock in [5u64, 10, 20, 40] {
        let r = system_adapt::run(&system_adapt::SystemAdaptParams {
            undock_tick: undock,
            ..Default::default()
        });
        println!("  {undock:>11} | {:>10} | {:>11}", r.bytes_sent, r.total_ticks);
    }
}

fn scenario_3() {
    println!("\n--- Scenario 3: intra-query adaptation ---");
    println!("Stale statistics make the pre-optimiser pick nested loop for a big");
    println!("join; execution re-plans at a safe point kept by the State Manager.\n");
    println!("  stats error | initial plan              | final plan           | speedup");
    println!("  ------------+---------------------------+----------------------+--------");
    for error in [1.0, 0.02, 0.005, 0.0025] {
        let r = intra_query::run(&intra_query::IntraQueryParams {
            stats_error: error,
            ..Default::default()
        });
        println!(
            "  {error:>11.4} | {:<25} | {:<20} | {:>6.1}x",
            r.initial_algo, r.final_algo, r.speedup
        );
    }
}

fn main() {
    println!("== Section 4: Ubiquitous Computing DB Scenarios ==\n");
    scenario_1();
    scenario_2();
    scenario_3();
}
