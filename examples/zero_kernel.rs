//! The zero-kernel OS in action: SISR verification, the ORB, and kernel
//! services (scheduler, memory manager, interrupt dispatch) running as
//! ordinary protected components — "just components and hardware and some
//! 'intelligence'".
//!
//! Run with: `cargo run -p adm-core --example zero_kernel`

use gokernel::libos::{LibOs, ThreadId};
use gokernel::sisr::SisrVerifier;
use machine::isa::{Instr, Program};
use machine::seg::SegReg;
use machine::CostModel;

fn main() {
    println!("== Go! zero-kernel system ==\n");

    // 1. SISR: the load-time verification pipeline that replaces the
    //    kernel-mode split.
    let verifier = SisrVerifier::new(CostModel::pentium());
    let good = Program::new(vec![Instr::MovImm(0, 1), Instr::Add(0, 0), Instr::Halt]);
    let img = verifier.verify_program(&good).expect("clean code verifies");
    println!(
        "SISR accepted a {}-instruction component (scan cost {} cycles, one-off):",
        good.len(),
        img.scan_cycles()
    );
    for p in &img.report().passes {
        println!("  pass {:<18} {:>3} cycles  proved clean", p.pass.name(), p.cycles);
    }
    // The per-procedure summaries the passes were computed from — what the
    // ORB re-checks against its segment grants at link time.
    for s in img.summaries() {
        println!("  {s}");
    }
    let evil = Program::new(vec![Instr::Nop, Instr::LoadSegReg(SegReg::Ds, 0), Instr::Halt]);
    let err = verifier.verify_program(&evil).unwrap_err();
    println!("SISR rejected privileged code: {err}");
    // The pipeline proves more than privilege: control flow must stay inside
    // the text, calls must balance, and statically-known addresses must stay
    // inside the segment grant. All flaws are collected, not just the first.
    let sneaky = Program::new(vec![
        Instr::MovImm(0, 100_000), // constant address...
        Instr::Store(0, 0),        // ...statically escapes the data segment
        Instr::Ret,                // return with no matching call
    ]);
    let err = verifier.verify_program(&sneaky).unwrap_err();
    println!("SISR rejected unprivileged-but-hostile code: {err}");

    // 2. Boot the library OS: every kernel service is a component.
    let mut os = LibOs::boot(CostModel::pentium(), 64 * 1024);
    println!(
        "\nbooted: {} components, {} interfaces, {} bytes of protection state",
        os.orb().components(),
        os.orb().interfaces(),
        os.orb().protection_bytes()
    );

    // 3. The scheduler component.
    for t in 0..3 {
        os.sched_add(ThreadId(t)).expect("ok");
    }
    print!("round-robin: ");
    let mut cur = ThreadId(0);
    for _ in 0..6 {
        cur = os.sched_yield(cur).expect("ok").expect("threads exist");
        print!("T{} ", cur.0);
    }
    println!();

    // 4. The memory-manager component.
    let a = os.alloc(1024).expect("fits");
    let b = os.alloc(2048).expect("fits");
    println!("alloc'd regions at {a} and {b}; {} bytes free", os.free_bytes());
    os.free(a).expect("valid");
    os.free(b).expect("valid");
    println!("freed and coalesced; {} bytes free", os.free_bytes());

    // 5. Interrupt dispatch — to driver *components*, no traps anywhere.
    let eth = os.install_driver("eth-driver", 0xE7).expect("verifies");
    os.irq_register(0x21, eth).expect("ok");
    let result = os.irq_deliver(0x21).expect("handler registered");
    println!("IRQ 0x21 dispatched to eth-driver component -> {result:#x}");

    println!(
        "\ntotal service-invocation cost so far: {} simulated cycles — every\n\
         call was an ORB thread migration (~70 cycles), never a trap (~{}+).",
        os.service_cycles(),
        CostModel::pentium().trap_enter + CostModel::pentium().trap_exit
    );
    println!("\n\"at that instant the system becomes effectively a Database Machine\" — §6");
}
