//! Patia under a flash crowd (Section 5.2, Table 2, Figure 7).
//!
//! A Zipf request stream hits the paper's fleet; at tick 100 a flash crowd
//! descends on `Page1.html`. With adaptivity on, constraint 455 SWITCHes
//! and spreads the service agent over the typing-pool machines; with it
//! off, node1 drowns.
//!
//! Run with: `cargo run -p adm-core --example patia_flashcrowd`

use patia::atom::AtomId;
use patia::server::{PatiaServer, ServerConfig};
use patia::workload::{FlashCrowd, RequestGen};

fn run(adaptive: bool) -> (Vec<u64>, usize, usize) {
    let (net, atoms, constraints) = ServerConfig::paper_fleet();
    let mut server =
        PatiaServer::new(net, atoms, constraints, ServerConfig { adaptive, work_per_request: 400 });
    let crowd = FlashCrowd { from: 100, to: 500, target: AtomId(123), multiplier: 15.0 };
    let mut gen = RequestGen::new(vec![AtomId(123), AtomId(153)], 1.1, 4.0, 2026).with_crowd(crowd);
    let mut latencies = Vec::new();
    let mut switches = 0;
    for t in 1..=1500 {
        let reqs = gen.tick(t);
        let stats = server.tick(&reqs, 64.0);
        switches += stats.migrations.len();
        latencies.extend(stats.latencies);
    }
    let agents = server.agents(AtomId(123)).len();
    (latencies, switches, agents)
}

fn percentile(latencies: &mut [u64], p: f64) -> u64 {
    if latencies.is_empty() {
        return 0;
    }
    latencies.sort_unstable();
    latencies[((latencies.len() - 1) as f64 * p) as usize]
}

fn main() {
    println!("== Patia: flash crowd on Page1.html (atom 123) ==\n");
    println!("constraints in force:");
    for c in patia::constraint::paper_table2() {
        println!("  {:>4} | atom {:>3} | {}", c.id, c.atom.0, c.render());
    }
    println!();
    println!("  mode     | completions | p50 | p99  | switches | final agents");
    println!("  ---------+-------------+-----+------+----------+-------------");
    for (label, adaptive) in [("adaptive", true), ("static  ", false)] {
        let (mut lat, switches, agents) = run(adaptive);
        let n = lat.len();
        let p50 = percentile(&mut lat, 0.50);
        let p99 = percentile(&mut lat, 0.99);
        println!("  {label} | {n:>11} | {p50:>3} | {p99:>4} | {switches:>8} | {agents:>12}");
    }
    println!("\nThe adaptive server spreads the hot agent over the typing pool");
    println!("(constraint 455) and serves bandwidth-fitted video versions");
    println!("(constraint 595); the static server queues unboundedly instead.");
}
