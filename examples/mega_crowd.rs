//! The mega-crowd, live: ~10.5M requests through the event-driven
//! engine, timed on the wall clock.
//!
//! ```console
//! $ cargo run --release -p adm-core --example mega_crowd
//! ```
//!
//! Four staggered arrival-rate flows (ramps + burst windows) storm a
//! sixteen-node fleet; one server dies and revives mid-storm; the engine
//! processes only the ticks that hold events and skips the rest. The
//! report is deterministic — only the wall-clock line varies by machine.

use adm_core::scenario::megacrowd::{mega_crowd, run};
use std::time::Instant;

fn main() {
    let params = mega_crowd();
    println!("mega-crowd: {} flows over {} nodes", params.flows.len(), 16);
    let started = Instant::now();
    let r = run(&params);
    let wall = started.elapsed();
    let t = &r.totals;
    println!("offered            {:>12}", r.offered);
    println!("completed          {:>12}", t.completed);
    println!("switches           {:>12}", t.switches);
    println!("evacuations        {:>12}", t.evacuations);
    println!("ticks processed    {:>12}", t.ticks_processed);
    println!("ticks skipped      {:>12}", t.ticks_skipped);
    if let Some(mean) = t.latency_mean() {
        println!("latency mean/max   {mean:>9.2} / {} ticks", t.latency_max);
    }
    println!("conserved          {:>12}", r.conserved());
    let secs = wall.as_secs_f64();
    #[allow(clippy::cast_precision_loss)]
    let rps = t.completed as f64 / secs.max(f64::MIN_POSITIVE);
    println!("wall clock         {secs:>11.2}s  ({rps:.0} requests/s)");
    assert!(r.conserved(), "conservation must hold");
}
